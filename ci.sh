#!/bin/sh
# Pre-PR gate: formatting, lints, release build, full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -eu

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (bounded conformance smoke: 64 generated programs)"
# The differential conformance harness (tests/conformance.rs) generates
# its programs from fixed seeds, so this is deterministic; local runs
# without the variable use the fuller 256-case default.
XPLACER_CONFORMANCE_CASES=64 cargo test -q

echo "==> bench smoke + regression gate"
cargo run --release -q -p xplacer-bench --bin reproduce_all -- --smoke
cargo run --release -q -p xplacer-bench --bin bench -- compare \
    crates/bench/baselines/BENCH_smoke.json results/BENCH_smoke.json \
    --max-regress 0.10

echo "==> access-path microbench + throughput + telemetry-overhead gate"
cargo run --release -q -p xplacer-bench --bin access_path -- --smoke \
    --out results/BENCH_access_path.json
cargo run --release -q -p xplacer-bench --bin bench -- compare-access \
    crates/bench/baselines/BENCH_access_path.json results/BENCH_access_path.json \
    --max-regress 0.20

echo "==> xplacer top replay smoke + determinism"
# Record an event trace, replay the dashboard twice, and require the
# --frames/--ascii output to be byte-identical (the golden-snapshot
# contract, exercised through the real binary).
./target/release/xplacer demo lulesh --log-level quiet \
    --events-out results/top_events.json
./target/release/xplacer top --replay results/top_events.json \
    --frames 3 --ascii --log-level quiet > results/top_frames_a.txt
./target/release/xplacer top --replay results/top_events.json \
    --frames 3 --ascii --log-level quiet > results/top_frames_b.txt
cmp results/top_frames_a.txt results/top_frames_b.txt
grep -q "ping-pong" results/top_frames_a.txt

echo "ci: all checks passed"
