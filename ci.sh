#!/bin/sh
# Pre-PR gate: formatting, lints, release build, full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -eu

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (bounded conformance smoke: 64 generated programs)"
# The differential conformance harness (tests/conformance.rs) generates
# its programs from fixed seeds, so this is deterministic; local runs
# without the variable use the fuller 256-case default.
XPLACER_CONFORMANCE_CASES=64 cargo test -q

echo "==> bench smoke + regression gate"
cargo run --release -q -p xplacer-bench --bin reproduce_all -- --smoke
cargo run --release -q -p xplacer-bench --bin bench -- compare \
    crates/bench/baselines/BENCH_smoke.json results/BENCH_smoke.json \
    --max-regress 0.10

echo "==> access-path microbench + throughput + telemetry-overhead gate"
cargo run --release -q -p xplacer-bench --bin access_path -- --smoke \
    --out results/BENCH_access_path.json
cargo run --release -q -p xplacer-bench --bin bench -- compare-access \
    crates/bench/baselines/BENCH_access_path.json results/BENCH_access_path.json \
    --max-regress 0.20

echo "==> xplacer top replay smoke + determinism"
# Record an event trace, replay the dashboard twice, and require the
# --frames/--ascii output to be byte-identical (the golden-snapshot
# contract, exercised through the real binary).
./target/release/xplacer demo lulesh --log-level quiet \
    --events-out results/top_events.json
./target/release/xplacer top --replay results/top_events.json \
    --frames 3 --ascii --log-level quiet > results/top_frames_a.txt
./target/release/xplacer top --replay results/top_events.json \
    --frames 3 --ascii --log-level quiet > results/top_frames_b.txt
cmp results/top_frames_a.txt results/top_frames_b.txt
grep -q "ping-pong" results/top_frames_a.txt

echo "==> xplacer blame golden + xplacer diff gate"
# Blame the demo-recorded trace through the real binary and byte-compare
# against the committed snapshot (the same bytes tests/blame.rs
# maintains; regenerate with XPLACER_BLESS=1).
./target/release/xplacer blame --replay results/top_events.json \
    --log-level quiet > results/blame_replay.txt
cmp results/blame_replay.txt tests/golden/blame_replay_lulesh.golden
# Self-diff must report zero deltas and exit 0.
./target/release/xplacer diff results/top_events.json results/top_events.json \
    --log-level quiet > results/diff_self.txt
grep -q "no differences" results/diff_self.txt
# A genuinely slower "after" run must trip the nonzero-exit regression
# gate: diff a cheap pathfinder run against the expensive lulesh run.
./target/release/xplacer demo pathfinder --log-level quiet \
    --events-out results/pathfinder_events.json > /dev/null
if ./target/release/xplacer diff results/pathfinder_events.json \
    results/top_events.json --log-level quiet > results/diff_regressed.txt; then
    echo "ci: xplacer diff failed to flag a regression" >&2
    exit 1
fi
grep -q "verdict: regressed" results/diff_regressed.txt
# bench compare explains its gate with the same trace diff via --events.
cargo run --release -q -p xplacer-bench --bin bench -- compare \
    crates/bench/baselines/BENCH_smoke.json results/BENCH_smoke.json \
    --max-regress 0.10 --events results/top_events.json results/top_events.json \
    > results/bench_compare_events.txt
grep -q "no differences" results/bench_compare_events.txt

echo "==> xplacer optimize smoke + jobs-determinism + regression gate"
# The closed-loop optimizer must (a) find a plan strictly below the
# unhinted lulesh baseline, (b) produce byte-identical reports for any
# --jobs value (the ordered-merge pool contract, exercised through the
# real binary), and (c) match the committed golden and stay within the
# bench regression budget.
./target/release/xplacer optimize lulesh --jobs 2 --smoke --log-level quiet \
    --bench-out results/BENCH_optimize.json > results/optimize_j2.txt
./target/release/xplacer optimize lulesh --jobs 1 --smoke --log-level quiet \
    > results/optimize_j1.txt
./target/release/xplacer optimize lulesh --jobs 8 --smoke --log-level quiet \
    > results/optimize_j8.txt
cmp results/optimize_j1.txt results/optimize_j2.txt
cmp results/optimize_j1.txt results/optimize_j8.txt
cmp results/optimize_j2.txt tests/golden/optimize_lulesh.golden
grep -q "winner:" results/optimize_j2.txt
cargo run --release -q -p xplacer-bench --bin bench -- compare \
    crates/bench/baselines/BENCH_optimize.json results/BENCH_optimize.json \
    --max-regress 0.10

echo "==> xplacer check: buggy corpus gate + clean-workload gate"
# Every bug-injection program must exit 1 and reproduce its committed
# golden byte-for-byte through the real binary (table on stdout, then
# the --json document — the same layout tests/check.rs maintains;
# regenerate with XPLACER_BLESS=1).
for f in tests/corpus/buggy/*.cu; do
    name=$(basename "$f" .cu)
    # Run from inside the corpus dir so the report's target matches the
    # golden's bare "<name>.cu".
    if (cd tests/corpus/buggy && ../../../target/release/xplacer check \
        "$name.cu" --log-level quiet) > "results/check_$name.txt"; then
        echo "ci: xplacer check missed the defect in $name" >&2
        exit 1
    fi
    printf -- '---- json ----\n' >> "results/check_$name.txt"
    (cd tests/corpus/buggy && ../../../target/release/xplacer check \
        "$name.cu" --json --log-level quiet) \
        >> "results/check_$name.txt" 2>/dev/null || true
    cmp "results/check_$name.txt" "tests/corpus/buggy/$name.check.golden"
done
# A clean workload must exit 0 with an empty-findings report.
./target/release/xplacer check lulesh --log-level quiet \
    > results/check_lulesh.txt
grep -q "clean" results/check_lulesh.txt

echo "ci: all checks passed"
