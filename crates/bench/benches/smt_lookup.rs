//! SMT lookup microbenchmarks + the linear/binary crossover ablation.
//!
//! The paper fixes the strategy switch at 64 entries (§IV-D: "lookup of
//! an entry uses linear search when the number of allocations is less
//! than 64, and binary search otherwise"). This bench sweeps table sizes
//! under both strategies so the crossover can be read off directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetsim::AllocKind;
use xplacer_core::Smt;

fn build(n: usize, threshold: usize) -> (Smt, Vec<u64>) {
    let mut smt = Smt::new();
    smt.linear_threshold = threshold;
    let mut probes = Vec::new();
    for i in 0..n {
        let base = 0x10_0000 + (i as u64) * 0x2000;
        smt.insert(base, 4096, AllocKind::Managed);
        probes.push(base + (i as u64 * 97) % 4096);
    }
    (smt, probes)
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt_lookup");
    for &n in &[4usize, 16, 50, 64, 128, 512] {
        // Forced linear.
        let (smt, probes) = build(n, usize::MAX);
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(smt.lookup(black_box(probes[i])))
            });
        });
        // Forced binary.
        let (smt, probes) = build(n, 0);
        g.bench_with_input(BenchmarkId::new("binary", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(smt.lookup(black_box(probes[i])))
            });
        });
        // Paper policy (64-entry switch).
        let (smt, probes) = build(n, 64);
        g.bench_with_input(BenchmarkId::new("paper_policy", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(smt.lookup(black_box(probes[i])))
            });
        });
    }
    g.finish();
}

fn bench_streaming_hit(c: &mut Criterion) {
    // The common case: consecutive accesses to the same allocation (the
    // last-hit cache path).
    let mut smt = Smt::new();
    for i in 0..100u64 {
        smt.insert(0x10_0000 + i * 0x2000, 4096, AllocKind::Managed);
    }
    let base = 0x10_0000 + 50 * 0x2000;
    c.bench_function("smt_lookup/streaming_same_alloc", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 4) % 4096;
            black_box(smt.lookup_mut(black_box(base + off)).is_some())
        });
    });
}

fn bench_insert(c: &mut Criterion) {
    // O(N) sorted insertion, as the paper describes for allocation.
    c.bench_function("smt_insert/100_allocations", |b| {
        b.iter(|| {
            let mut smt = Smt::new();
            for i in 0..100u64 {
                smt.insert(0x10_0000 + i * 0x2000, 4096, AllocKind::Managed);
            }
            black_box(smt.len())
        });
    });
}

criterion_group!(benches, bench_lookup, bench_streaming_hit, bench_insert);
criterion_main!(benches);
