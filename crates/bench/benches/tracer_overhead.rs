//! Per-access cost of the tracer hook — the microscopic version of the
//! paper's Table III: how much does one traced heap access cost compared
//! to an untraced one, and how does shadow-word granularity matter.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hetsim::{platform, Device, Machine, MemHook};
use xplacer_core::{attach_tracer, Tracer};

fn bench_machine_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_access");

    // Untraced host store.
    let mut m = Machine::new(platform::intel_pascal());
    let p = m.alloc_managed::<f64>(1024);
    g.bench_function("plain_store", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1024;
            m.st(black_box(p), i, 1.0);
        });
    });

    // Traced host store (hook attached → SMT lookup + shadow update).
    let mut m = Machine::new(platform::intel_pascal());
    let _t = attach_tracer(&mut m);
    let p = m.alloc_managed::<f64>(1024);
    g.bench_function("traced_store", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1024;
            m.st(black_box(p), i, 1.0);
        });
    });

    g.finish();
}

fn bench_trace_calls(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer");
    // Direct tracer call costs at two table sizes.
    for &allocs in &[1usize, 100] {
        let mut t = Tracer::new();
        for i in 0..allocs as u64 {
            t.on_alloc(0x10_0000 + i * 0x10000, 0x8000, hetsim::AllocKind::Managed);
        }
        let target = 0x10_0000 + (allocs as u64 / 2) * 0x10000;
        g.bench_function(format!("trace_w/{allocs}_allocs"), |b| {
            let mut off = 0u64;
            b.iter(|| {
                off = (off + 8) % 0x8000;
                t.trace_w(Device::Cpu, black_box(target + off), 8);
            });
        });
    }
    // Missing address (ignored path).
    let mut t = Tracer::new();
    t.on_alloc(0x10_0000, 4096, hetsim::AllocKind::Managed);
    g.bench_function("trace_w/untracked_address", |b| {
        b.iter(|| t.trace_w(Device::Cpu, black_box(0xDEAD_0000), 8));
    });
    g.finish();
}

fn bench_diagnostic(c: &mut Criterion) {
    // Summarizing a LULESH-sized table (50 allocations).
    let mut t = Tracer::new();
    for i in 0..50u64 {
        t.on_alloc(
            0x10_0000 + i * 0x100000,
            64 * 1024,
            hetsim::AllocKind::Managed,
        );
        for w in 0..1000u64 {
            t.trace_w(Device::Cpu, 0x10_0000 + i * 0x100000 + w * 8, 8);
        }
    }
    c.bench_function("diagnostic/summarize_50_allocs", |b| {
        b.iter(|| black_box(xplacer_core::summarize(&t.smt, false)));
    });
    c.bench_function("diagnostic/analyze_50_allocs", |b| {
        b.iter(|| {
            black_box(xplacer_core::analyze(
                &t.smt,
                &xplacer_core::AnalysisConfig::default(),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_machine_access,
    bench_trace_calls,
    bench_diagnostic
);
criterion_main!(benches);
