//! Unified-memory driver microbenchmarks: the fast (resident) path, the
//! fault/migration path, read-duplication, and a page-size ablation —
//! the knobs behind the paper's platform differences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetsim::{platform, Machine, MemAdvise, Platform};

fn bench_access_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("um_paths");

    // Resident fast path.
    let mut m = Machine::new(platform::intel_pascal());
    let p = m.alloc_managed::<f64>(4096);
    m.st(p, 0, 1.0); // CPU-resident now
    g.bench_function("resident_host_access", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(m.ld(p, i))
        });
    });

    // Ping-pong path: every iteration faults (GPU write then CPU read of
    // the same page).
    let mut m = Machine::new(platform::intel_pascal());
    let p = m.alloc_managed::<f64>(8);
    g.bench_function("ping_pong_fault_pair", |b| {
        b.iter(|| {
            m.launch("w", 1, |_, m| m.st(p, 0, 2.0));
            black_box(m.ld(p, 0))
        });
    });

    // Read-mostly steady state: both sides hit their duplicated copies.
    let mut m = Machine::new(platform::intel_pascal());
    let p = m.alloc_managed::<f64>(8);
    m.mem_advise(p, MemAdvise::SetReadMostly);
    m.st(p, 0, 1.0);
    m.launch("warm", 1, |_, m| {
        let _ = m.ld(p, 0);
    });
    g.bench_function("read_mostly_dual_read", |b| {
        b.iter(|| {
            m.launch("r", 1, |_, m| {
                let _ = m.ld(p, 0);
            });
            black_box(m.ld(p, 0))
        });
    });

    g.finish();
}

fn bench_page_size_ablation(c: &mut Criterion) {
    // Smaller pages mean more faults for streaming access but less
    // false-sharing-like bouncing — the trade-off behind the paper's
    // object-splitting remedy.
    let mut g = c.benchmark_group("page_size_ablation");
    g.sample_size(20);
    for &page_kb in &[4u64, 16, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("stream_then_pingpong", page_kb),
            &page_kb,
            |b, &page_kb| {
                b.iter(|| {
                    let mut pf: Platform = platform::intel_pascal();
                    pf.page_size = page_kb * 1024;
                    let mut m = Machine::new(pf);
                    let data = m.alloc_managed::<f64>(64 * 1024);
                    for i in (0..64 * 1024).step_by(64) {
                        m.st(data, i, 1.0);
                    }
                    m.launch("stream", 1024, |t, m| {
                        let _ = m.ld(data, t * 64);
                    });
                    black_box(m.elapsed_ns())
                });
            },
        );
    }
    g.finish();
}

fn bench_fault_latency_sweep(c: &mut Criterion) {
    // Where does ReadMostly flip from a win to a loss? Interpolate the
    // fault cost between NVLink-like and PCIe-like values and measure
    // the alternating pattern under both policies.
    let mut g = c.benchmark_group("fault_latency_sweep");
    g.sample_size(20);
    for &fault_us in &[2u64, 6, 12, 25, 50] {
        g.bench_with_input(
            BenchmarkId::new("alternating_readmostly", fault_us),
            &fault_us,
            |b, &fault_us| {
                b.iter(|| {
                    let mut pf = platform::intel_pascal();
                    pf.fault_ns = fault_us as f64 * 1000.0;
                    let mut m = Machine::new(pf);
                    let p = m.alloc_managed::<f64>(8);
                    m.mem_advise(p, MemAdvise::SetReadMostly);
                    for _ in 0..20 {
                        m.st(p, 0, 1.0);
                        m.launch("r", 1, |_, m| {
                            let _ = m.ld(p, 0);
                        });
                    }
                    black_box(m.elapsed_ns())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_access_paths,
    bench_page_size_ablation,
    bench_fault_latency_sweep
);
criterion_main!(benches);
