//! Whole-workload benchmarks: simulator throughput on the paper's
//! applications (host wall-clock of the reproduction itself, the quantity
//! Table III's overhead factors are made of).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetsim::{platform, Machine};
use xplacer_core::attach_tracer;
use xplacer_workloads::lulesh::{run_lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::rodinia::pathfinder::{run_pathfinder, PathfinderConfig, PathfinderVariant};
use xplacer_workloads::smith_waterman::{run_sw, SwConfig, SwVariant};

fn bench_lulesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("lulesh");
    g.sample_size(10);
    for traced in [false, true] {
        let label = if traced { "traced" } else { "plain" };
        g.bench_with_input(BenchmarkId::new(label, "size8x3"), &traced, |b, &traced| {
            b.iter(|| {
                let mut m = Machine::new(platform::intel_pascal());
                if traced {
                    let _t = attach_tracer(&mut m);
                    black_box(run_lulesh(
                        &mut m,
                        LuleshConfig::new(8, 3),
                        LuleshVariant::Baseline,
                    ))
                } else {
                    black_box(run_lulesh(
                        &mut m,
                        LuleshConfig::new(8, 3),
                        LuleshVariant::Baseline,
                    ))
                }
            });
        });
    }
    g.finish();
}

fn bench_smith_waterman(c: &mut Criterion) {
    let mut g = c.benchmark_group("smith_waterman");
    g.sample_size(10);
    for variant in [SwVariant::Baseline, SwVariant::Rotated] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), "256x256"),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let mut m = Machine::new(platform::intel_pascal());
                    black_box(run_sw(&mut m, SwConfig::square(256), v))
                });
            },
        );
    }
    g.finish();
}

fn bench_pathfinder(c: &mut Criterion) {
    let mut g = c.benchmark_group("pathfinder");
    g.sample_size(10);
    for variant in [PathfinderVariant::Baseline, PathfinderVariant::Overlapped] {
        g.bench_with_input(
            BenchmarkId::new(variant.label(), "4096x101"),
            &variant,
            |b, &v| {
                b.iter(|| {
                    let mut m = Machine::new(platform::intel_pascal());
                    black_box(run_pathfinder(
                        &mut m,
                        PathfinderConfig::new(4096, 101, 20),
                        v,
                    ))
                });
            },
        );
    }
    g.finish();
}

fn bench_minicu_pipeline(c: &mut Criterion) {
    // Parse + instrument + interpret a small program: the toolchain cost.
    let src = r#"
        __global__ void k(double* p, int n) {
            int i = threadIdx.x;
            if (i < n) { p[i] = p[i] * 2.0 + 1.0; }
        }
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 256 * sizeof(double));
            for (int i = 0; i < 256; i++) { p[i] = i; }
            k<<<1, 256>>>(p, 256);
            double s = 0.0;
            for (int i = 0; i < 256; i++) { s += p[i]; }
            return (int)s;
        }
    "#;
    c.bench_function("minicu/parse_instrument", |b| {
        b.iter(|| {
            let prog = xplacer_lang::parser::parse(black_box(src)).unwrap();
            black_box(xplacer_instrument::instrument(&prog).program)
        });
    });
    let mut g = c.benchmark_group("minicu_run");
    g.sample_size(20);
    for traced in [false, true] {
        let label = if traced { "instrumented" } else { "plain" };
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    xplacer_interp::run_source(src, platform::intel_pascal(), traced)
                        .unwrap()
                        .0
                        .exit,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lulesh,
    bench_smith_waterman,
    bench_pathfinder,
    bench_minicu_pipeline
);
criterion_main!(benches);
