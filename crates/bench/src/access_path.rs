//! Contiguous-sweep access-path microbenchmark and its CI gate record.
//!
//! Measures host-side simulator throughput (accesses accounted per
//! second of *wall* time) for the same traced contiguous sweep executed
//! two ways on one machine configuration:
//!
//! * **word** — the bulk fast path disabled, so every element runs the
//!   full per-word protocol: one UM-driver resolution, one SMT lookup,
//!   and one shadow update per access;
//! * **bulk** — the fast path enabled, so the driver is resolved once
//!   per page, the hook sees one `on_access_range`, and the tracer does
//!   one SMT lookup per range.
//!
//! The machine carries 64 live managed allocations so SMT lookups pay a
//! realistic search cost, and a tracer is attached throughout (the
//! paper's instrumented-run regime). Absolute ops/sec depends on the
//! host machine, so the regression gate (`bench compare-access`) gates
//! on the dimensionless **speedup** ratio `bulk / word`, which is stable
//! across hosts, plus an absolute floor: the fast path must stay at
//! least [`MIN_SPEEDUP`]× ahead.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

use hetsim::{platform, Machine};
use xplacer_core::{attach_tracer, OnlineAnalyzer, OnlineConfig};
use xplacer_obs::{Json, Telemetry, TelemetryConfig};

/// Schema tag of `BENCH_access_path.json`.
pub const ACCESS_BENCH_SCHEMA: &str = "xplacer-access-bench/1";

/// The fast path must beat the per-word path by at least this factor;
/// `compare_access` fails the gate when the measured speedup drops below
/// it regardless of the committed baseline.
pub const MIN_SPEEDUP: f64 = 3.0;

/// Telemetry-overhead floor: the bulk sweep with the full streaming
/// telemetry stack attached (time-series bucketing plus the online
/// episode analyzer) must retain at least this fraction of plain bulk
/// throughput. The observers only see discrete events and one range
/// callback per sweep, so a breach means someone made a hot-path
/// callback do per-word work again.
pub const TELEMETRY_MIN_RATIO: f64 = 0.5;

/// Benchmark shape.
#[derive(Debug, Clone, Copy)]
pub struct AccessPathConfig {
    /// Live managed allocations on the machine (SMT size).
    pub allocs: usize,
    /// f64 elements per allocation; the sweep covers one allocation.
    pub elems: usize,
    /// Minimum measured wall time per variant.
    pub min_time: Duration,
}

impl AccessPathConfig {
    /// Full-size run for recording `results/BENCH_access_path.json`.
    pub fn full() -> Self {
        AccessPathConfig {
            allocs: 64,
            elems: 64 * 1024,
            min_time: Duration::from_millis(200),
        }
    }

    /// CI smoke shape: same structure, shorter measurement.
    pub fn smoke() -> Self {
        AccessPathConfig {
            allocs: 64,
            elems: 16 * 1024,
            min_time: Duration::from_millis(50),
        }
    }
}

/// One benchmark run's record, the unit `bench compare-access` diffs.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPathRecord {
    pub name: String,
    /// Live managed allocations during the sweep.
    pub allocs: u64,
    /// Elements per sweep pass (one write sweep + one read sweep).
    pub elems: u64,
    /// Accounted accesses per second, fast path disabled.
    pub ops_per_sec_word: f64,
    /// Accounted accesses per second, fast path enabled.
    pub ops_per_sec_bulk: f64,
    /// Fast path enabled with the streaming telemetry stack attached.
    pub ops_per_sec_telemetry: f64,
    /// `ops_per_sec_bulk / ops_per_sec_word` — the gated metric.
    pub speedup: f64,
    /// `ops_per_sec_telemetry / ops_per_sec_bulk` — gated against
    /// [`TELEMETRY_MIN_RATIO`].
    pub telemetry_ratio: f64,
}

impl AccessPathRecord {
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("schema", ACCESS_BENCH_SCHEMA.into())
            .set("name", self.name.as_str().into())
            .set("allocs", self.allocs.into())
            .set("elems", self.elems.into())
            .set("ops_per_sec_word", Json::Num(self.ops_per_sec_word))
            .set("ops_per_sec_bulk", Json::Num(self.ops_per_sec_bulk))
            .set(
                "ops_per_sec_telemetry",
                Json::Num(self.ops_per_sec_telemetry),
            )
            .set("speedup", Json::Num(self.speedup))
            .set("telemetry_ratio", Json::Num(self.telemetry_ratio));
        j
    }

    pub fn from_json(j: &Json) -> Result<AccessPathRecord, String> {
        if j.get("schema").and_then(Json::as_str) != Some(ACCESS_BENCH_SCHEMA) {
            return Err(format!("not a {ACCESS_BENCH_SCHEMA} document"));
        }
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing field {k}"))
        };
        let int = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {k}"))
        };
        Ok(AccessPathRecord {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing field name")?
                .to_string(),
            allocs: int("allocs")?,
            elems: int("elems")?,
            ops_per_sec_word: num("ops_per_sec_word")?,
            ops_per_sec_bulk: num("ops_per_sec_bulk")?,
            // Telemetry fields arrived in a later revision of the same
            // schema; baselines recorded before them read as "no
            // overhead" so the speedup gate still applies unchanged.
            ops_per_sec_telemetry: num("ops_per_sec_telemetry")
                .unwrap_or_else(|_| num("ops_per_sec_bulk").unwrap_or(0.0)),
            speedup: num("speedup")?,
            telemetry_ratio: num("telemetry_ratio").unwrap_or(1.0),
        })
    }

    pub fn parse(text: &str) -> Result<AccessPathRecord, String> {
        AccessPathRecord::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// Measure one variant: accounted accesses per wall second of traced
/// contiguous sweeping (alternating full-array write and read passes).
fn sweep_ops_per_sec(cfg: &AccessPathConfig, bulk: bool, telemetry: bool) -> f64 {
    let mut m = Machine::new(platform::intel_pascal());
    let _tracer = attach_tracer(&mut m);
    if telemetry {
        let link_bw = m.platform().link_bw;
        m.add_hook(Rc::new(RefCell::new(Telemetry::new(
            TelemetryConfig::default(),
            link_bw,
        ))));
        m.add_hook(Rc::new(RefCell::new(OnlineAnalyzer::new(
            OnlineConfig::default(),
        ))));
    }
    let ptrs: Vec<_> = (0..cfg.allocs)
        .map(|_| m.alloc_managed::<f64>(cfg.elems))
        .collect();
    let p = ptrs[cfg.allocs / 2];
    m.set_bulk_enabled(bulk);
    let n = cfg.elems as u64;
    // Warm-up pass: fault the pages in and reach the traced steady state,
    // so the timed passes measure the steady access path, not first-touch
    // migration.
    m.write_range(p.addr, 8, n).unwrap();
    m.read_range(p.addr, 8, n).unwrap();
    let start = Instant::now();
    let mut passes = 0u64;
    loop {
        m.write_range(p.addr, 8, n).unwrap();
        m.read_range(p.addr, 8, n).unwrap();
        passes += 1;
        if start.elapsed() >= cfg.min_time {
            break;
        }
    }
    (passes * 2 * n) as f64 / start.elapsed().as_secs_f64()
}

/// Run the microbenchmark and build its record.
pub fn run_access_path(cfg: &AccessPathConfig) -> AccessPathRecord {
    let word = sweep_ops_per_sec(cfg, false, false);
    let bulk = sweep_ops_per_sec(cfg, true, false);
    let telemetry = sweep_ops_per_sec(cfg, true, true);
    AccessPathRecord {
        name: "access_path".to_string(),
        allocs: cfg.allocs as u64,
        elems: cfg.elems as u64,
        ops_per_sec_word: word,
        ops_per_sec_bulk: bulk,
        ops_per_sec_telemetry: telemetry,
        speedup: bulk / word,
        telemetry_ratio: telemetry / bulk,
    }
}

/// Gate verdict of one access-path comparison.
#[derive(Debug, Clone)]
pub struct AccessDelta {
    pub baseline_speedup: f64,
    pub current_speedup: f64,
    /// Relative speedup change, `(current - baseline) / baseline`.
    pub ratio: f64,
    /// Speedup fell more than the allowed regression below baseline.
    pub regressed: bool,
    /// Speedup fell below the absolute [`MIN_SPEEDUP`] floor.
    pub below_floor: bool,
    pub baseline_telemetry_ratio: f64,
    pub current_telemetry_ratio: f64,
    /// Telemetry-attached throughput fell below
    /// [`TELEMETRY_MIN_RATIO`] of plain bulk.
    pub telemetry_below_floor: bool,
}

impl AccessDelta {
    pub fn failed(&self) -> bool {
        self.regressed || self.below_floor || self.telemetry_below_floor
    }
}

/// Compare `current` against `baseline`: the speedup ratio may shrink at
/// most `max_regress` (relative) and must stay above [`MIN_SPEEDUP`].
/// Absolute ops/sec is reported informationally only — it depends on the
/// host, the ratio does not. The committed baseline is deliberately
/// conservative (below every observed healthy run) so timing noise never
/// trips the gate while a disabled or broken fast path (speedup ≈ 1x)
/// still fails it decisively.
pub fn compare_access(
    baseline: &AccessPathRecord,
    current: &AccessPathRecord,
    max_regress: f64,
) -> AccessDelta {
    let ratio = if baseline.speedup > 0.0 {
        (current.speedup - baseline.speedup) / baseline.speedup
    } else {
        0.0
    };
    AccessDelta {
        baseline_speedup: baseline.speedup,
        current_speedup: current.speedup,
        ratio,
        regressed: ratio < -max_regress,
        below_floor: current.speedup < MIN_SPEEDUP,
        baseline_telemetry_ratio: baseline.telemetry_ratio,
        current_telemetry_ratio: current.telemetry_ratio,
        telemetry_below_floor: current.telemetry_ratio < TELEMETRY_MIN_RATIO,
    }
}

/// Render the comparison for the CI log.
pub fn render_access_compare(
    baseline: &AccessPathRecord,
    current: &AccessPathRecord,
    delta: &AccessDelta,
    max_regress: f64,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "bench compare-access: {} vs {} (max allowed speedup regression {:.0}%, floor {MIN_SPEEDUP}x)",
        baseline.name,
        current.name,
        max_regress * 100.0
    );
    let _ = writeln!(
        s,
        "  ops/sec word {:>14.0} -> {:>14.0}  (informational)",
        baseline.ops_per_sec_word, current.ops_per_sec_word
    );
    let _ = writeln!(
        s,
        "  ops/sec bulk {:>14.0} -> {:>14.0}  (informational)",
        baseline.ops_per_sec_bulk, current.ops_per_sec_bulk
    );
    let verdict = if delta.below_floor {
        "BELOW FLOOR"
    } else if delta.regressed {
        "REGRESSED"
    } else {
        "ok"
    };
    let _ = writeln!(
        s,
        "  speedup      {:>13.1}x -> {:>13.1}x  {:>+8.2}%  {verdict}",
        delta.baseline_speedup,
        delta.current_speedup,
        delta.ratio * 100.0
    );
    let _ = writeln!(
        s,
        "  telemetry    {:>12.2}x -> {:>12.2}x of bulk (floor {TELEMETRY_MIN_RATIO}x)  {}",
        delta.baseline_telemetry_ratio,
        delta.current_telemetry_ratio,
        if delta.telemetry_below_floor {
            "BELOW FLOOR"
        } else {
            "ok"
        }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(speedup: f64) -> AccessPathRecord {
        AccessPathRecord {
            name: "access_path".into(),
            allocs: 64,
            elems: 65536,
            ops_per_sec_word: 1e6,
            ops_per_sec_bulk: 1e6 * speedup,
            ops_per_sec_telemetry: 0.9e6 * speedup,
            speedup,
            telemetry_ratio: 0.9,
        }
    }

    #[test]
    fn record_roundtrips_through_json_text() {
        let r = record(12.5);
        let back = AccessPathRecord::parse(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(AccessPathRecord::parse("{\"schema\": \"other/1\"}").is_err());
    }

    #[test]
    fn pre_telemetry_baselines_read_as_no_overhead() {
        let mut j = record(10.0).to_json();
        j.set("ops_per_sec_telemetry", Json::Null)
            .set("telemetry_ratio", Json::Null);
        let back = AccessPathRecord::parse(&j.to_string_pretty()).unwrap();
        assert_eq!(back.ops_per_sec_telemetry, back.ops_per_sec_bulk);
        assert_eq!(back.telemetry_ratio, 1.0);
    }

    #[test]
    fn telemetry_overhead_gates_on_absolute_floor() {
        let base = record(10.0);
        let mut slow = record(10.0);
        slow.telemetry_ratio = TELEMETRY_MIN_RATIO / 2.0;
        let d = compare_access(&base, &slow, 0.20);
        assert!(d.telemetry_below_floor && d.failed());
        assert!(
            !d.regressed && !d.below_floor,
            "only the telemetry floor trips"
        );
    }

    #[test]
    fn compare_passes_within_threshold_and_on_improvement() {
        let base = record(10.0);
        assert!(!compare_access(&base, &record(9.0), 0.20).failed());
        assert!(!compare_access(&base, &record(15.0), 0.20).failed());
    }

    #[test]
    fn compare_fails_beyond_threshold() {
        let base = record(10.0);
        let d = compare_access(&base, &record(6.0), 0.20);
        assert!(d.regressed && d.failed());
    }

    #[test]
    fn compare_fails_below_absolute_floor() {
        // Even a "baseline" that was itself slow cannot excuse dropping
        // under the floor.
        let base = record(3.2);
        let d = compare_access(&base, &record(2.8), 0.20);
        assert!(d.below_floor && d.failed());
        assert!(!d.regressed, "within 20%% of baseline, only floor fails");
    }

    #[test]
    fn measured_fast_path_beats_per_word() {
        // A tiny run: the ratio must comfortably exceed 1 even unoptimized
        // and on a loaded machine; release CI gates the full 3x floor.
        let cfg = AccessPathConfig {
            allocs: 64,
            elems: 4096,
            min_time: Duration::from_millis(20),
        };
        let r = run_access_path(&cfg);
        assert!(
            r.speedup > 1.5,
            "bulk path not faster: {:.2}x (word {:.0}/s, bulk {:.0}/s)",
            r.speedup,
            r.ops_per_sec_word,
            r.ops_per_sec_bulk
        );
    }
}
