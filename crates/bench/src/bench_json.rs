//! `BENCH_<name>.json` records and the regression-compare logic behind
//! the `bench compare` binary.
//!
//! A bench record is the performance fingerprint of one deterministic
//! experiment run: simulated time plus the driver counters that dominate
//! it. Everything except `wall_ms` is simulator state and therefore
//! exactly reproducible — `bench compare` gates on the deterministic
//! fields and reports wall time informationally only, so the gate never
//! flakes on a loaded CI machine.

use hetsim::Stats;
use xplacer_obs::Json;

/// Schema tag written into every record.
pub const BENCH_SCHEMA: &str = "xplacer-bench/1";

/// One experiment's performance record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment name (`fig06_lulesh_speedup`, `smoke`, ...).
    pub name: String,
    /// Simulated run time (deterministic).
    pub simulated_ns: f64,
    /// Total page faults (deterministic).
    pub faults: u64,
    /// Total page migrations (deterministic).
    pub migrations: u64,
    /// Bytes moved across the bus: migrations + explicit memcpy
    /// (deterministic).
    pub bytes_moved: u64,
    /// Host wall-clock time of the harness run (informational only).
    pub wall_ms: f64,
}

impl BenchRecord {
    /// Build a record from a finished run's counters.
    pub fn from_run(name: &str, simulated_ns: f64, stats: &Stats, wall_ms: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            simulated_ns,
            faults: stats.faults(),
            migrations: stats.migrations(),
            bytes_moved: stats.bytes_migrated + stats.memcpy_bytes,
            wall_ms,
        }
    }

    /// Sum several records into an aggregate (used for `BENCH_smoke.json`).
    pub fn aggregate(name: &str, parts: &[BenchRecord]) -> BenchRecord {
        let mut r = BenchRecord {
            name: name.to_string(),
            simulated_ns: 0.0,
            faults: 0,
            migrations: 0,
            bytes_moved: 0,
            wall_ms: 0.0,
        };
        for p in parts {
            r.simulated_ns += p.simulated_ns;
            r.faults += p.faults;
            r.migrations += p.migrations;
            r.bytes_moved += p.bytes_moved;
            r.wall_ms += p.wall_ms;
        }
        r
    }

    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("schema", BENCH_SCHEMA.into())
            .set("name", self.name.as_str().into())
            .set("simulated_ns", Json::Num(self.simulated_ns))
            .set("faults", self.faults.into())
            .set("migrations", self.migrations.into())
            .set("bytes_moved", self.bytes_moved.into())
            .set("wall_ms", Json::Num(self.wall_ms));
        j
    }

    /// Parse a record back out of [`BenchRecord::to_json`] text.
    pub fn from_json(j: &Json) -> Result<BenchRecord, String> {
        if j.get("schema").and_then(Json::as_str) != Some(BENCH_SCHEMA) {
            return Err(format!("not a {BENCH_SCHEMA} document"));
        }
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing field {k}"))
        };
        let int = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing field {k}"))
        };
        Ok(BenchRecord {
            name: j
                .get("name")
                .and_then(Json::as_str)
                .ok_or("missing field name")?
                .to_string(),
            simulated_ns: num("simulated_ns")?,
            faults: int("faults")?,
            migrations: int("migrations")?,
            bytes_moved: int("bytes_moved")?,
            wall_ms: num("wall_ms")?,
        })
    }

    /// Parse a record from JSON text (one document per BENCH file).
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        BenchRecord::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }
}

/// One gated metric's comparison outcome.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub metric: &'static str,
    pub baseline: f64,
    pub current: f64,
    /// Relative change, `(current - baseline) / baseline` (0 when the
    /// baseline is 0 and the value did not grow).
    pub ratio: f64,
    /// True when the change exceeds the allowed regression threshold.
    pub regressed: bool,
}

/// Compare `current` against `baseline`: every deterministic metric may
/// grow at most `max_regress` (relative). Improvements and wall-clock
/// changes never fail. Returns one delta per gated metric.
pub fn compare(
    baseline: &BenchRecord,
    current: &BenchRecord,
    max_regress: f64,
) -> Vec<MetricDelta> {
    let gated: [(&'static str, f64, f64); 4] = [
        ("simulated_ns", baseline.simulated_ns, current.simulated_ns),
        ("faults", baseline.faults as f64, current.faults as f64),
        (
            "migrations",
            baseline.migrations as f64,
            current.migrations as f64,
        ),
        (
            "bytes_moved",
            baseline.bytes_moved as f64,
            current.bytes_moved as f64,
        ),
    ];
    gated
        .into_iter()
        .map(|(metric, b, c)| {
            let ratio = if b > 0.0 {
                (c - b) / b
            } else if c > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            MetricDelta {
                metric,
                baseline: b,
                current: c,
                ratio,
                regressed: ratio > max_regress,
            }
        })
        .collect()
}

/// Render the comparison as an aligned report; `max_regress` is echoed so
/// the CI log states the gate it applied.
pub fn render_compare(
    baseline: &BenchRecord,
    current: &BenchRecord,
    deltas: &[MetricDelta],
    max_regress: f64,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "bench compare: {} vs {} (max allowed regression {:.0}%)",
        baseline.name,
        current.name,
        max_regress * 100.0
    );
    for d in deltas {
        let _ = writeln!(
            s,
            "  {:<13} {:>16.0} -> {:>16.0}  {:>+8.2}%  {}",
            d.metric,
            d.baseline,
            d.current,
            d.ratio * 100.0,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    let wall_ratio = if baseline.wall_ms > 0.0 {
        (current.wall_ms - baseline.wall_ms) / baseline.wall_ms * 100.0
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "  {:<13} {:>16.1} -> {:>16.1}  {:>+8.2}%  (informational)",
        "wall_ms", baseline.wall_ms, current.wall_ms, wall_ratio
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sim: f64, bytes: u64) -> BenchRecord {
        BenchRecord {
            name: "smoke".into(),
            simulated_ns: sim,
            faults: 100,
            migrations: 50,
            bytes_moved: bytes,
            wall_ms: 12.5,
        }
    }

    #[test]
    fn record_roundtrips_through_json_text() {
        let r = record(1.5e9, 1 << 20);
        let back = BenchRecord::parse(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compare_passes_within_threshold_and_on_improvement() {
        let base = record(1e9, 1000);
        let current = record(1.05e9, 900); // +5% time, fewer bytes
        assert!(compare(&base, &current, 0.10).iter().all(|d| !d.regressed));
    }

    #[test]
    fn compare_fails_beyond_threshold() {
        let base = record(1e9, 1000);
        let current = record(1.2e9, 1000); // +20% simulated time
        let deltas = compare(&base, &current, 0.10);
        let bad: Vec<_> = deltas.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "simulated_ns");
    }

    #[test]
    fn growth_from_zero_baseline_regresses() {
        let mut base = record(1e9, 1000);
        base.faults = 0;
        let current = record(1e9, 1000); // faults 0 -> 100
        let deltas = compare(&base, &current, 0.10);
        assert!(deltas.iter().any(|d| d.metric == "faults" && d.regressed));
    }

    #[test]
    fn wall_clock_never_gates() {
        let base = record(1e9, 1000);
        let mut current = base.clone();
        current.wall_ms = base.wall_ms * 100.0;
        assert!(compare(&base, &current, 0.10).iter().all(|d| !d.regressed));
    }

    #[test]
    fn aggregate_sums_all_fields() {
        let a = record(1e9, 1000);
        let b = record(2e9, 500);
        let s = BenchRecord::aggregate("smoke", &[a, b]);
        assert_eq!(s.simulated_ns, 3e9);
        assert_eq!(s.faults, 200);
        assert_eq!(s.migrations, 100);
        assert_eq!(s.bytes_moved, 1500);
        assert_eq!(s.wall_ms, 25.0);
    }
}
