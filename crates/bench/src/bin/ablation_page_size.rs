//! Page-size ablation: false-sharing-like bouncing vs streaming faults.
fn main() {
    print!("{}", xplacer_bench::figs::ablation_page_size::report());
}
