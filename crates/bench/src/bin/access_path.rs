//! `access_path` — the contiguous-sweep access-path microbenchmark.
//!
//! ```text
//! access_path [--smoke] [--out <path>]
//! ```
//!
//! Measures traced simulator throughput with the bulk fast path off and
//! on, prints the summary, and writes `BENCH_access_path.json` (default
//! `results/BENCH_access_path.json`) for `bench compare-access`.

use std::process::ExitCode;

use xplacer_bench::access_path::{run_access_path, AccessPathConfig};

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = "results/BENCH_access_path.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out = args.get(i + 1).ok_or("--out needs a path")?.clone();
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    let cfg = if smoke {
        AccessPathConfig::smoke()
    } else {
        AccessPathConfig::full()
    };
    let rec = run_access_path(&cfg);
    println!(
        "access_path ({} allocs, {} elems{}):",
        rec.allocs,
        rec.elems,
        if smoke { ", smoke" } else { "" }
    );
    println!("  per-word  {:>14.0} ops/sec", rec.ops_per_sec_word);
    println!("  bulk      {:>14.0} ops/sec", rec.ops_per_sec_bulk);
    println!("  telemetry {:>14.0} ops/sec", rec.ops_per_sec_telemetry);
    println!("  speedup   {:>13.1}x", rec.speedup);
    println!("  telemetry {:>13.2}x of bulk", rec.telemetry_ratio);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    }
    std::fs::write(&out, format!("{}\n", rec.to_json().to_string_pretty()))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("  wrote {out}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("access_path: {msg}");
            ExitCode::from(2)
        }
    }
}
