//! `bench` — BENCH-file tooling; currently the CI regression gates.
//!
//! ```text
//! bench compare <baseline.json> <current.json> [--max-regress 0.10]
//!               [--events <a_events.json> <b_events.json>]
//! bench compare-access <baseline.json> <current.json> [--max-regress 0.20]
//! ```
//!
//! `compare` diffs two `BENCH_<name>.json` documents written by
//! `reproduce_all`: the deterministic metrics (simulated_ns, faults,
//! migrations, bytes_moved) may each grow at most `--max-regress`
//! (relative, default 10%); wall-clock time is reported but never gates.
//! With `--events`, two attributed event traces (`--events-out`
//! artifacts) are additionally diffed per kernel/allocation so a tripped
//! gate comes with an explanation of *what* moved — the trace diff is
//! informational only and never changes the exit code.
//!
//! `compare-access` diffs two `BENCH_access_path.json` documents written
//! by the `access_path` microbenchmark: the bulk-vs-per-word speedup
//! ratio may shrink at most `--max-regress` (default 20%) and must stay
//! above the absolute floor; absolute ops/sec is informational.
//!
//! Exits 1 when a gate fails, 2 on usage/IO errors.

use std::process::ExitCode;

use xplacer_bench::access_path::{compare_access, render_access_compare, AccessPathRecord};
use xplacer_bench::bench_json::{compare, render_compare, BenchRecord};
use xplacer_obs::diff::{diff, RunDigest, DEFAULT_THRESHOLD};
use xplacer_obs::Json;

fn usage() -> &'static str {
    "usage: bench compare <baseline.json> <current.json> [--max-regress 0.10] \
     [--events <a_events.json> <b_events.json>]\n\
    \x20      bench compare-access <baseline.json> <current.json> [--max-regress 0.20]"
}

fn read_text(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

struct CompareArgs {
    baseline: String,
    current: String,
    max_regress: f64,
    /// Optional pair of `--events-out` traces to diff alongside.
    events: Option<(String, String)>,
}

fn parse_args(args: &[String], default_regress: f64) -> Result<CompareArgs, String> {
    let mut paths = Vec::new();
    let mut max_regress = default_regress;
    let mut events = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                let v = args.get(i + 1).ok_or("--max-regress needs a value")?;
                max_regress = v
                    .parse::<f64>()
                    .map_err(|_| format!("--max-regress expects a number, got `{v}`"))?;
                if !(0.0..=10.0).contains(&max_regress) {
                    return Err(format!("--max-regress {max_regress} out of range [0, 10]"));
                }
                i += 1;
            }
            "--events" => {
                let (Some(a), Some(b)) = (args.get(i + 1), args.get(i + 2)) else {
                    return Err("--events needs two trace files: --events <a.json> <b.json>".into());
                };
                events = Some((a.clone(), b.clone()));
                i += 2;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(usage().to_string());
    };
    Ok(CompareArgs {
        baseline: baseline.clone(),
        current: current.clone(),
        max_regress,
        events,
    })
}

/// Diff two attributed event traces and print the per-kernel /
/// per-allocation breakdown. Informational: failures here are reported as
/// errors (exit 2), but the diff verdict itself never gates.
fn explain_with_events(a_path: &str, b_path: &str) -> Result<(), String> {
    let load = |path: &str| -> Result<RunDigest, String> {
        let doc = Json::parse(&read_text(path)?).map_err(|e| format!("{path}: {e}"))?;
        RunDigest::from_json(&doc, path).map_err(|e| format!("{path}: {e}"))
    };
    let d = diff(load(a_path)?, load(b_path)?, DEFAULT_THRESHOLD)?;
    print!("\n{}", d.render(10));
    Ok(())
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => {
            let cmp = parse_args(&args[1..], 0.10)?;
            let baseline = BenchRecord::parse(&read_text(&cmp.baseline)?)
                .map_err(|e| format!("{}: {e}", cmp.baseline))?;
            let current = BenchRecord::parse(&read_text(&cmp.current)?)
                .map_err(|e| format!("{}: {e}", cmp.current))?;
            let deltas = compare(&baseline, &current, cmp.max_regress);
            print!(
                "{}",
                render_compare(&baseline, &current, &deltas, cmp.max_regress)
            );
            if let Some((a, b)) = &cmp.events {
                explain_with_events(a, b)?;
            }
            Ok(deltas.iter().any(|d| d.regressed))
        }
        Some("compare-access") => {
            let cmp = parse_args(&args[1..], 0.20)?;
            if cmp.events.is_some() {
                return Err("--events applies to `compare`, not `compare-access`".into());
            }
            let baseline = AccessPathRecord::parse(&read_text(&cmp.baseline)?)
                .map_err(|e| format!("{}: {e}", cmp.baseline))?;
            let current = AccessPathRecord::parse(&read_text(&cmp.current)?)
                .map_err(|e| format!("{}: {e}", cmp.current))?;
            let delta = compare_access(&baseline, &current, cmp.max_regress);
            print!(
                "{}",
                render_access_compare(&baseline, &current, &delta, cmp.max_regress)
            );
            Ok(delta.failed())
        }
        _ => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench: performance regression detected");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench: {msg}");
            ExitCode::from(2)
        }
    }
}
