//! `bench` — BENCH-file tooling; currently the CI regression gates.
//!
//! ```text
//! bench compare <baseline.json> <current.json> [--max-regress 0.10]
//! bench compare-access <baseline.json> <current.json> [--max-regress 0.20]
//! ```
//!
//! `compare` diffs two `BENCH_<name>.json` documents written by
//! `reproduce_all`: the deterministic metrics (simulated_ns, faults,
//! migrations, bytes_moved) may each grow at most `--max-regress`
//! (relative, default 10%); wall-clock time is reported but never gates.
//!
//! `compare-access` diffs two `BENCH_access_path.json` documents written
//! by the `access_path` microbenchmark: the bulk-vs-per-word speedup
//! ratio may shrink at most `--max-regress` (default 20%) and must stay
//! above the absolute floor; absolute ops/sec is informational.
//!
//! Exits 1 when a gate fails, 2 on usage/IO errors.

use std::process::ExitCode;

use xplacer_bench::access_path::{compare_access, render_access_compare, AccessPathRecord};
use xplacer_bench::bench_json::{compare, render_compare, BenchRecord};

fn usage() -> &'static str {
    "usage: bench compare <baseline.json> <current.json> [--max-regress 0.10]\n\
    \x20      bench compare-access <baseline.json> <current.json> [--max-regress 0.20]"
}

fn read_text(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse_args(args: &[String], default_regress: f64) -> Result<(String, String, f64), String> {
    let mut paths = Vec::new();
    let mut max_regress = default_regress;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                let v = args.get(i + 1).ok_or("--max-regress needs a value")?;
                max_regress = v
                    .parse::<f64>()
                    .map_err(|_| format!("--max-regress expects a number, got `{v}`"))?;
                if !(0.0..=10.0).contains(&max_regress) {
                    return Err(format!("--max-regress {max_regress} out of range [0, 10]"));
                }
                i += 1;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    let [baseline, current] = paths.as_slice() else {
        return Err(usage().to_string());
    };
    Ok((baseline.clone(), current.clone(), max_regress))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => {
            let (bp, cp, max_regress) = parse_args(&args[1..], 0.10)?;
            let baseline =
                BenchRecord::parse(&read_text(&bp)?).map_err(|e| format!("{bp}: {e}"))?;
            let current = BenchRecord::parse(&read_text(&cp)?).map_err(|e| format!("{cp}: {e}"))?;
            let deltas = compare(&baseline, &current, max_regress);
            print!(
                "{}",
                render_compare(&baseline, &current, &deltas, max_regress)
            );
            Ok(deltas.iter().any(|d| d.regressed))
        }
        Some("compare-access") => {
            let (bp, cp, max_regress) = parse_args(&args[1..], 0.20)?;
            let baseline =
                AccessPathRecord::parse(&read_text(&bp)?).map_err(|e| format!("{bp}: {e}"))?;
            let current =
                AccessPathRecord::parse(&read_text(&cp)?).map_err(|e| format!("{cp}: {e}"))?;
            let delta = compare_access(&baseline, &current, max_regress);
            print!(
                "{}",
                render_access_compare(&baseline, &current, &delta, max_regress)
            );
            Ok(delta.failed())
        }
        _ => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench: performance regression detected");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench: {msg}");
            ExitCode::from(2)
        }
    }
}
