//! `bench` — BENCH-file tooling; currently the CI regression gate.
//!
//! ```text
//! bench compare <baseline.json> <current.json> [--max-regress 0.10]
//! ```
//!
//! Both files are `BENCH_<name>.json` documents written by
//! `reproduce_all`. The deterministic metrics (simulated_ns, faults,
//! migrations, bytes_moved) may each grow at most `--max-regress`
//! (relative, default 10%); wall-clock time is reported but never gates.
//! Exits 1 when any metric regressed, 2 on usage/IO errors.

use std::process::ExitCode;

use xplacer_bench::bench_json::{compare, render_compare, BenchRecord};

fn usage() -> &'static str {
    "usage: bench compare <baseline.json> <current.json> [--max-regress 0.10]"
}

fn read_record(path: &str) -> Result<BenchRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchRecord::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("compare") {
        return Err(usage().to_string());
    }
    let mut paths = Vec::new();
    let mut max_regress = 0.10;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                let v = args.get(i + 1).ok_or("--max-regress needs a value")?;
                max_regress = v
                    .parse::<f64>()
                    .map_err(|_| format!("--max-regress expects a number, got `{v}`"))?;
                if !(0.0..=10.0).contains(&max_regress) {
                    return Err(format!("--max-regress {max_regress} out of range [0, 10]"));
                }
                i += 1;
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err(usage().to_string());
    };
    let baseline = read_record(baseline_path)?;
    let current = read_record(current_path)?;
    let deltas = compare(&baseline, &current, max_regress);
    print!(
        "{}",
        render_compare(&baseline, &current, &deltas, max_regress)
    );
    Ok(deltas.iter().any(|d| d.regressed))
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench compare: performance regression detected");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench: {msg}");
            ExitCode::from(2)
        }
    }
}
