//! Regenerates Fig. 4: LULESH diagnostic output after iteration 2.
fn main() {
    let full = std::env::args().any(|a| a == "--full");
    if full {
        print!(
            "{}",
            xplacer_bench::figs::fig04_lulesh_diagnostic::full_report()
        );
    } else {
        print!("{}", xplacer_bench::figs::fig04_lulesh_diagnostic::report());
    }
}
