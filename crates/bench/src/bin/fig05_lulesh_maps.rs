//! Regenerates Fig. 5: access maps of the LULESH domain object.
fn main() {
    print!("{}", xplacer_bench::figs::fig05_lulesh_maps::report());
}
