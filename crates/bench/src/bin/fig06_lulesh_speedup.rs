//! Regenerates Fig. 6 of the paper. Pass `--quick` for a reduced sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        xplacer_bench::figs::fig06_lulesh_speedup::report(quick)
    );
}
