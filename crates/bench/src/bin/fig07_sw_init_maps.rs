//! Regenerates Fig. 7: Smith-Waterman H-matrix initialization maps.
fn main() {
    print!("{}", xplacer_bench::figs::fig07_sw_init_maps::report());
}
