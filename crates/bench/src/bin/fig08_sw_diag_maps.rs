//! Regenerates Fig. 8: Smith-Waterman GPU access maps at iteration 8.
fn main() {
    print!("{}", xplacer_bench::figs::fig08_sw_diag_maps::report());
}
