//! Regenerates Fig. 9: Smith-Waterman rotated-matrix speedups.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", xplacer_bench::figs::fig09_sw_speedup::report(quick));
}
