//! Regenerates Fig. 10: Pathfinder gpuWall access maps per iteration.
fn main() {
    print!("{}", xplacer_bench::figs::fig10_pathfinder_maps::report());
}
