//! Regenerates Fig. 11: Pathfinder overlapped-transfer speedups.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!(
        "{}",
        xplacer_bench::figs::fig11_pathfinder_speedup::report(quick)
    );
}
