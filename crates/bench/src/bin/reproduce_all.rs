//! Runs every table/figure harness and writes the collected reports to
//! `results/` (one file per experiment) plus everything to stdout.
//! Pass `--quick` for reduced sweeps.

use std::fs;
use std::time::Instant;

use xplacer_bench::figs;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let outdir = std::path::Path::new("results");
    let _ = fs::create_dir_all(outdir);

    type Experiment = (&'static str, Box<dyn Fn() -> String>);
    let experiments: Vec<Experiment> = vec![
        ("table1_api", Box::new(figs::table1_api::report)),
        (
            "fig04_lulesh_diagnostic",
            Box::new(figs::fig04_lulesh_diagnostic::report),
        ),
        (
            "fig05_lulesh_maps",
            Box::new(figs::fig05_lulesh_maps::report),
        ),
        (
            "fig06_lulesh_speedup",
            Box::new(move || figs::fig06_lulesh_speedup::report(quick)),
        ),
        (
            "fig07_sw_init_maps",
            Box::new(figs::fig07_sw_init_maps::report),
        ),
        (
            "fig08_sw_diag_maps",
            Box::new(figs::fig08_sw_diag_maps::report),
        ),
        (
            "fig09_sw_speedup",
            Box::new(move || figs::fig09_sw_speedup::report(quick)),
        ),
        (
            "fig10_pathfinder_maps",
            Box::new(figs::fig10_pathfinder_maps::report),
        ),
        (
            "fig11_pathfinder_speedup",
            Box::new(move || figs::fig11_pathfinder_speedup::report(quick)),
        ),
        (
            "table2_rodinia_findings",
            Box::new(figs::table2_rodinia::report),
        ),
        (
            "table3_overhead",
            Box::new(move || figs::table3_overhead::report(quick)),
        ),
        (
            "ablation_page_size",
            Box::new(figs::ablation_page_size::report),
        ),
    ];

    for (name, f) in experiments {
        let t0 = Instant::now();
        let report = f();
        let dt = t0.elapsed().as_secs_f64();
        println!("{report}");
        eprintln!("[{name}: {dt:.1}s]");
        let _ = fs::write(outdir.join(format!("{name}.txt")), &report);
        // Machine-readable companion: counters, allocation summaries,
        // findings, and event digest of the experiment's canonical run.
        if let Some(doc) = xplacer_bench::metrics_dump::experiment_metrics(name) {
            let _ = fs::write(
                outdir.join(format!("{name}.metrics.json")),
                format!("{}\n", doc.to_string_pretty()),
            );
        }
    }

    // Image (PBM) versions of the access-map figures, like the paper's
    // graphical maps. Convert with e.g. `magick fig05_cpu_writes.pbm x.png`.
    use xplacer_bench::figs::{fig05_lulesh_maps, fig07_sw_init_maps, fig10_pathfinder_maps};
    use xplacer_core::accessmap::to_pbm;
    {
        let (first, second) = fig05_lulesh_maps::measure();
        for (label, bits) in [
            ("fig05_iter1_cpu_writes", &first.cpu_writes),
            ("fig05_iter1_gpu_reads", &first.gpu_reads),
            ("fig05_iter2_cpu_writes", &second.cpu_writes),
            ("fig05_iter2_overlap", &second.overlap),
        ] {
            let _ = fs::write(outdir.join(format!("{label}.pbm")), to_pbm(bits, 64));
        }
        let (writes, consumed, cfg) = fig07_sw_init_maps::measure();
        let _ = fs::write(
            outdir.join("fig07_cpu_writes.pbm"),
            to_pbm(&writes, cfg.m + 1),
        );
        let _ = fs::write(
            outdir.join("fig07_consumed.pbm"),
            to_pbm(&consumed, cfg.m + 1),
        );
        let maps = fig10_pathfinder_maps::measure();
        for (i, bits) in maps.gpu_reads_per_iter.iter().enumerate() {
            let _ = fs::write(
                outdir.join(format!("fig10_iter{}_gpu_reads.pbm", i + 1)),
                to_pbm(bits, 200),
            );
        }
    }
    eprintln!("reports + map images written to {}", outdir.display());
}
