//! Runs every table/figure harness and writes the collected reports to
//! `results/` (one file per experiment) plus everything to stdout.
//!
//! Modes:
//! * default — full sweeps;
//! * `--quick` — reduced sweeps for the slow figures;
//! * `--smoke` — skip the figure sweeps entirely and only run each
//!   experiment's canonical observed run, writing `BENCH_<name>.json`
//!   per experiment plus the aggregate `BENCH_smoke.json` that
//!   `bench compare` gates CI against.
//!
//! The experiment list is a fixed `Vec`, so execution order, stdout
//! order, and the contents of `results/` are deterministic; the output
//! directory is created idempotently (re-running over an existing
//! `results/` just overwrites the same files).

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use xplacer_bench::bench_json::BenchRecord;
use xplacer_bench::smoke::{self, experiment_names};
use xplacer_bench::{figs, metrics_dump};

fn report_for(name: &str, quick: bool) -> String {
    match name {
        "table1_api" => figs::table1_api::report(),
        "fig04_lulesh_diagnostic" => figs::fig04_lulesh_diagnostic::report(),
        "fig05_lulesh_maps" => figs::fig05_lulesh_maps::report(),
        "fig06_lulesh_speedup" => figs::fig06_lulesh_speedup::report(quick),
        "fig07_sw_init_maps" => figs::fig07_sw_init_maps::report(),
        "fig08_sw_diag_maps" => figs::fig08_sw_diag_maps::report(),
        "fig09_sw_speedup" => figs::fig09_sw_speedup::report(quick),
        "fig10_pathfinder_maps" => figs::fig10_pathfinder_maps::report(),
        "fig11_pathfinder_speedup" => figs::fig11_pathfinder_speedup::report(quick),
        "table2_rodinia_findings" => figs::table2_rodinia::report(),
        "table3_overhead" => figs::table3_overhead::report(quick),
        "ablation_page_size" => figs::ablation_page_size::report(),
        other => unreachable!("unknown experiment {other}"),
    }
}

fn write_or_warn(path: &std::path::Path, contents: &str) {
    if let Err(e) = fs::write(path, contents) {
        eprintln!("reproduce_all: cannot write {}: {e}", path.display());
    }
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let outdir = std::path::Path::new("results");
    if let Err(e) = fs::create_dir_all(outdir) {
        eprintln!("reproduce_all: cannot create {}: {e}", outdir.display());
        return ExitCode::FAILURE;
    }

    if smoke {
        // Byte-stable fingerprint files (wall time zeroed); the CI
        // regression gate diffs the aggregate BENCH_smoke.json.
        match smoke::run_smoke(outdir) {
            Ok(records) => {
                for r in &records {
                    eprintln!(
                        "[smoke {}: simulated {:.3} ms, {} faults, {} migrations]",
                        r.name,
                        r.simulated_ns / 1e6,
                        r.faults,
                        r.migrations
                    );
                }
                eprintln!(
                    "smoke bench records written to {} (aggregate BENCH_smoke.json)",
                    outdir.display()
                );
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("reproduce_all: smoke run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut bench_records: Vec<BenchRecord> = Vec::new();
    for name in experiment_names() {
        let t0 = Instant::now();
        let report = report_for(name, quick);
        let dt = t0.elapsed().as_secs_f64();
        println!("{report}");
        eprintln!("[{name}: {dt:.1}s]");
        write_or_warn(&outdir.join(format!("{name}.txt")), &report);
        // Machine-readable companions: counters, allocation summaries,
        // findings, event digest, and the BENCH performance fingerprint
        // of the experiment's canonical run.
        if let Some(run) = metrics_dump::experiment_run(name) {
            write_or_warn(
                &outdir.join(format!("{name}.metrics.json")),
                &format!("{}\n", run.metrics.to_string_pretty()),
            );
            write_or_warn(
                &outdir.join(format!("BENCH_{name}.json")),
                &format!("{}\n", run.bench.to_json().to_string_pretty()),
            );
            bench_records.push(run.bench);
        }
    }

    // Aggregate fingerprint: the CI regression gate diffs this one file.
    let smoke_record = BenchRecord::aggregate("smoke", &bench_records);
    write_or_warn(
        &outdir.join("BENCH_smoke.json"),
        &format!("{}\n", smoke_record.to_json().to_string_pretty()),
    );

    // Image (PBM) versions of the access-map figures, like the paper's
    // graphical maps. Convert with e.g. `magick fig05_cpu_writes.pbm x.png`.
    use xplacer_bench::figs::{fig05_lulesh_maps, fig07_sw_init_maps, fig10_pathfinder_maps};
    use xplacer_core::accessmap::to_pbm;
    {
        let (first, second) = fig05_lulesh_maps::measure();
        for (label, bits) in [
            ("fig05_iter1_cpu_writes", &first.cpu_writes),
            ("fig05_iter1_gpu_reads", &first.gpu_reads),
            ("fig05_iter2_cpu_writes", &second.cpu_writes),
            ("fig05_iter2_overlap", &second.overlap),
        ] {
            write_or_warn(&outdir.join(format!("{label}.pbm")), &to_pbm(bits, 64));
        }
        let (writes, consumed, cfg) = fig07_sw_init_maps::measure();
        write_or_warn(
            &outdir.join("fig07_cpu_writes.pbm"),
            &to_pbm(&writes, cfg.m + 1),
        );
        write_or_warn(
            &outdir.join("fig07_consumed.pbm"),
            &to_pbm(&consumed, cfg.m + 1),
        );
        let maps = fig10_pathfinder_maps::measure();
        for (i, bits) in maps.gpu_reads_per_iter.iter().enumerate() {
            write_or_warn(
                &outdir.join(format!("fig10_iter{}_gpu_reads.pbm", i + 1)),
                &to_pbm(bits, 200),
            );
        }
    }
    eprintln!("reports + map images written to {}", outdir.display());
    ExitCode::SUCCESS
}
