//! Demonstrates Table I: the instrumentation API on the paper's examples.
fn main() {
    print!("{}", xplacer_bench::figs::table1_api::report());
}
