//! Regenerates Table II: findings in the Rodinia benchmark subset.
fn main() {
    print!("{}", xplacer_bench::figs::table2_rodinia::report());
}
