//! Regenerates Table III: instrumentation runtime overhead.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    print!("{}", xplacer_bench::figs::table3_overhead::report(quick));
}
