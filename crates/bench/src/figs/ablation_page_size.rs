//! Ablation: UM page size vs the false-sharing-like effect.
//!
//! The paper's remedy discussion (§III-A) notes that alternating accesses
//! to *disjoint* data within one page behave like false sharing, and that
//! splitting the object helps. The knob behind that effect is the
//! migration granularity: smaller pages bounce less state per fault but
//! fault more often on streaming data. This harness sweeps the page size
//! for the two access styles and reports simulated times and fault
//! counts.

use hetsim::{platform, Machine};

use crate::{fmt_time, header, Grid};

/// Page sizes to sweep (bytes).
pub const PAGE_SIZES: [u64; 4] = [4 << 10, 16 << 10, 64 << 10, 256 << 10];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub page_size: u64,
    /// LULESH-style shared-object bouncing (false-sharing-like).
    pub pingpong_ns: f64,
    pub pingpong_faults: u64,
    /// Streaming first-touch of a large array.
    pub stream_ns: f64,
    pub stream_faults: u64,
}

/// Shared-page ping-pong: CPU and GPU touch *disjoint* halves of one
/// small object; with large pages every touch bounces the whole page.
fn pingpong(page_size: u64) -> (f64, u64) {
    let mut pf = platform::intel_pascal();
    pf.page_size = page_size;
    let mut m = Machine::new(pf);
    let obj = m.alloc_managed::<u64>(512); // 4 KiB object
    for i in 0..512 {
        m.st(obj, i, 0);
    }
    m.reset_metrics();
    for _ in 0..50 {
        // CPU updates the front half...
        for i in 0..4 {
            m.rmw(obj, i, |v: u64| v + 1);
        }
        // ...the GPU reads the back half.
        m.launch("read_back_half", 16, |t, m| {
            let _ = m.ld(obj, 256 + t);
        });
    }
    (m.elapsed_ns(), m.stats.faults())
}

/// Streaming: the GPU touches a 16 MiB array once.
fn stream(page_size: u64) -> (f64, u64) {
    let mut pf = platform::intel_pascal();
    pf.page_size = page_size;
    let mut m = Machine::new(pf);
    let n = 2 * 1024 * 1024; // 16 MiB of f64
    let data = m.alloc_managed::<f64>(n);
    // CPU first-touch via strided writes (one per page is enough).
    let per_page = (page_size / 8) as usize;
    for i in (0..n).step_by(per_page) {
        m.st(data, i, 1.0);
    }
    m.reset_metrics();
    m.launch("stream", n / 64, |t, m| {
        let _ = m.ld(data, t * 64);
    });
    (m.elapsed_ns(), m.stats.faults())
}

/// Measure the sweep.
pub fn measure() -> Vec<Row> {
    PAGE_SIZES
        .iter()
        .map(|&ps| {
            let (pn, pfaults) = pingpong(ps);
            let (sn, sfaults) = stream(ps);
            Row {
                page_size: ps,
                pingpong_ns: pn,
                pingpong_faults: pfaults,
                stream_ns: sn,
                stream_faults: sfaults,
            }
        })
        .collect()
}

/// Render the ablation.
pub fn report() -> String {
    let rows = measure();
    let mut out = header(
        "Ablation",
        "UM page size: shared-object ping-pong vs streaming first-touch",
    );
    let mut g = Grid::new(
        "Intel+Pascal".to_string(),
        &[
            "ping-pong time",
            "ping-pong faults",
            "stream time",
            "stream faults",
        ],
    );
    for r in &rows {
        g.row(
            format!("{} KiB pages", r.page_size >> 10),
            vec![
                fmt_time(r.pingpong_ns),
                r.pingpong_faults.to_string(),
                fmt_time(r.stream_ns),
                r.stream_faults.to_string(),
            ],
        );
    }
    out.push_str(&g.render());
    out.push_str(
        "\nSmaller pages keep the false-sharing-like bouncing cheap (less data per\n\
         bounce) but multiply streaming faults; large pages do the opposite. The\n\
         paper's object-splitting remedy removes the ping-pong without paying the\n\
         small-page streaming penalty.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_faults_scale_inversely_with_page_size() {
        let rows = measure();
        for w in rows.windows(2) {
            assert!(
                w[0].stream_faults > w[1].stream_faults,
                "larger pages must fault less while streaming: {:?}",
                rows.iter().map(|r| r.stream_faults).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn pingpong_cost_grows_with_page_size() {
        let rows = measure();
        // The bounce count is page-size independent (same touches), but
        // each bounce moves a whole page: time grows with page size.
        assert!(
            rows.last().unwrap().pingpong_ns > rows.first().unwrap().pingpong_ns,
            "{rows:?}"
        );
    }
}
