//! Fig. 4: partial XPlacer diagnostic output for LULESH 2 after the
//! second iteration — write counts, write>read counts, access density,
//! and the alternating-access element count for the domain object and one
//! array reachable through it.

use hetsim::{platform, Machine};
use xplacer_core::{format_fig4, trace_collect, AllocSummary};
use xplacer_workloads::lulesh::{Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::register_names;

use crate::header;

/// Run two LULESH timesteps traced (diagnostics after each timestep, as
/// the paper describes) and return the summaries of the second iteration.
pub fn measure() -> Vec<AllocSummary> {
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let mut l = Lulesh::setup(&mut m, LuleshConfig::new(8, 2), LuleshVariant::Baseline);
    register_names(&tracer, &l.names());

    let mut second = Vec::new();
    l.run(&mut m, 2, |step, _| {
        // "#pragma xpl diagnostic" at the end of every timestep.
        let summaries = trace_collect(&mut tracer.borrow_mut(), true);
        if step == 1 {
            second = summaries;
        }
    });
    second
}

/// Render the figure: the `dom` entry, the `(dom)->m_p` entry, and the
/// omission note, exactly like the paper's excerpt.
pub fn report() -> String {
    let all = measure();
    let mut out = header(
        "Fig. 4",
        "LULESH 2: partial XPlacer output after the second iteration",
    );
    let shown: Vec<AllocSummary> = all
        .iter()
        .filter(|s| s.name == "dom" || s.name == "(dom)->m_p")
        .cloned()
        .collect();
    out.push_str(&format!("*** checking {} named allocations\n\n", all.len()));
    // format_fig4 prints its own header line; strip it to keep the count
    // of the full run.
    let body = format_fig4(&shown);
    let body = body.split_once('\n').map_or("", |x| x.1);
    out.push_str(body);
    out.push_str(&format!(
        "[{} more entries omitted]\n",
        all.len() - shown.len()
    ));
    out
}

/// The full (unabridged) diagnostic of iteration 2, for the curious.
pub fn full_report() -> String {
    let all = measure();
    format_fig4(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_iteration_has_paper_shape() {
        let all = measure();
        // ~47 named allocations (dom + 45 arrays + dt_red), like the
        // paper's 50.
        assert!(all.len() >= 45, "only {} allocations", all.len());

        let dom = all.iter().find(|s| s.name == "dom").unwrap();
        // The domain is CPU-written and CPU-read, with a few GPU reads of
        // CPU-written fields, and a nonzero alternating count.
        assert!(dom.writes_c > 0, "dom should have CPU writes");
        assert_eq!(dom.writes_g, 0, "the GPU never writes the domain");
        assert!(dom.r_cc > 0, "dom is read by the CPU each step");
        assert!(dom.r_cg > 0, "the GPU reads CPU-written domain fields");
        assert!(dom.alternating > 0, "dom alternates (the paper's red flag)");
        // Low access density: only a fraction of the 934 words move.
        assert!(dom.density_pct < 50.0, "density {}", dom.density_pct);

        // m_p: GPU-exclusive, fully dense, no alternating accesses.
        let mp = all.iter().find(|s| s.name == "(dom)->m_p").unwrap();
        assert_eq!(mp.writes_c, 0);
        assert!(mp.writes_g > 0);
        assert_eq!(mp.alternating, 0);
        assert!(mp.density_pct > 99.0);
    }

    #[test]
    fn report_mentions_key_lines() {
        let r = report();
        assert!(r.contains("dom"));
        assert!(r.contains("(dom)->m_p"));
        assert!(r.contains("write counts"));
        assert!(r.contains("access density"));
        assert!(r.contains("elements with alternating accesses"));
        assert!(r.contains("more entries omitted"));
    }

    #[test]
    fn summaries_differ_between_first_and_second_iteration() {
        // Iteration 1 includes initialization (huge CPU write counts);
        // iteration 2 is steady-state.
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut l = Lulesh::setup(&mut m, LuleshConfig::new(4, 2), LuleshVariant::Baseline);
        register_names(&tracer, &l.names());
        // Note: setup writes happened before this first epoch ends.
        let mut per_iter = Vec::new();
        l.run(&mut m, 2, |_, _| {
            per_iter.push(xplacer_core::summarize(&tracer.borrow().smt, true));
            tracer.borrow_mut().end_epoch();
        });
        let e = |v: &Vec<AllocSummary>| v.iter().find(|s| s.name == "(dom)->m_e").unwrap().writes_c;
        // m_e was CPU-initialized before iteration 1, never CPU-written
        // in iteration 2.
        assert!(e(&per_iter[0]) > 0);
        assert_eq!(e(&per_iter[1]), 0);
    }
}
