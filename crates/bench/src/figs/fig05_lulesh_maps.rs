//! Fig. 5: access maps of the LULESH domain object (3736 bytes).
//!
//! Three maps for initialization + first iteration, three for the second
//! and later iterations: CPU writes, CPU reads, GPU reads — plus the
//! overlap of GPU reads with CPU writes (the page-fault source). GPU
//! write maps are omitted, as in the paper, because they are empty.

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, fill_ratio, render_ascii, MapKind};
use xplacer_workloads::lulesh::{Lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::register_names;

use crate::header;

/// Extracted maps for one epoch of the domain object.
#[derive(Debug, Clone)]
pub struct DomMaps {
    pub cpu_writes: Vec<bool>,
    pub cpu_reads: Vec<bool>,
    pub gpu_reads: Vec<bool>,
    pub gpu_writes: Vec<bool>,
    pub overlap: Vec<bool>,
}

/// Collect the domain maps for (init + iteration 1) and (iteration 2).
pub fn measure() -> (DomMaps, DomMaps) {
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let mut l = Lulesh::setup(&mut m, LuleshConfig::new(8, 2), LuleshVariant::Baseline);
    register_names(&tracer, &l.names());
    let dom_addr = l.dom.addr;

    let mut epochs = Vec::new();
    l.run(&mut m, 2, |_, _| {
        let mut t = tracer.borrow_mut();
        let e = t.smt.lookup(dom_addr).expect("dom tracked");
        let cpu_writes = extract(e, MapKind::CpuWrite);
        let cpu_reads = extract(e, MapKind::CpuRead);
        let gpu_reads = extract(e, MapKind::GpuRead);
        let gpu_writes = extract(e, MapKind::GpuWrite);
        let overlap = extract(e, MapKind::GpuReadsCpuWrites);
        epochs.push(DomMaps {
            cpu_writes,
            cpu_reads,
            gpu_reads,
            gpu_writes,
            overlap,
        });
        t.end_epoch();
    });
    let second = epochs.pop().expect("two epochs");
    let first = epochs.pop().expect("two epochs");
    (first, second)
}

fn section(out: &mut String, caption: &str, bits: &[bool]) {
    out.push_str(&format!(
        "{caption} ({} of {} words, {:.0}%):\n",
        bits.iter().filter(|&&b| b).count(),
        bits.len(),
        fill_ratio(bits) * 100.0
    ));
    out.push_str(&render_ascii(bits, 80));
    out.push('\n');
}

/// Render both epochs' maps.
pub fn report() -> String {
    let (first, second) = measure();
    let mut out = header(
        "Fig. 5",
        "LULESH 2: access maps of the domain object (3736 bytes, '#' = accessed word)",
    );
    out.push_str("-- initialization + iteration 1 --\n\n");
    section(&mut out, "(a) CPU writes", &first.cpu_writes);
    section(&mut out, "(b) CPU reads", &first.cpu_reads);
    section(&mut out, "(c) GPU reads", &first.gpu_reads);
    out.push_str("-- iteration 2 (steady state) --\n\n");
    section(&mut out, "(d) CPU writes", &second.cpu_writes);
    section(&mut out, "(e) CPU reads", &second.cpu_reads);
    section(
        &mut out,
        "(f) GPU reads overlapping CPU writes",
        &second.overlap,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_never_writes_the_domain() {
        let (first, second) = measure();
        assert!(first.gpu_writes.iter().all(|&b| !b));
        assert!(second.gpu_writes.iter().all(|&b| !b));
    }

    #[test]
    fn initialization_writes_much_more_than_steady_state() {
        let (first, second) = measure();
        let w1 = first.cpu_writes.iter().filter(|&&b| b).count();
        let w2 = second.cpu_writes.iter().filter(|&&b| b).count();
        // Iteration 1 includes the full domain initialization; iteration
        // 2 only touches temp pointers and time scalars.
        assert!(
            w1 > 5 * w2,
            "init epoch wrote {w1} words, steady epoch {w2}"
        );
        assert!(w2 > 0, "steady state still writes the shared page");
    }

    #[test]
    fn steady_state_overlap_is_small_but_nonzero() {
        let (_, second) = measure();
        let o = second.overlap.iter().filter(|&&b| b).count();
        assert!(o > 0, "the red-flag overlap must exist");
        assert!(
            o < second.overlap.len() / 10,
            "overlap should be a handful of words, got {o}"
        );
    }

    #[test]
    fn report_has_six_panels() {
        let r = report();
        for p in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"] {
            assert!(r.contains(p), "missing panel {p}");
        }
        assert!(r.contains('#'));
    }
}
