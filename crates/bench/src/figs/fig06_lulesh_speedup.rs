//! Fig. 6: LULESH 2 speedup over the managed-memory baseline, for the
//! four remedies on the three CPU/GPU platforms over four problem sizes.
//!
//! Paper reference points: ReadMostly reaches 2.75x (Intel+Pascal) and
//! 3.1x (Intel+Volta) at large sizes; domain duplication 3.1x/3.7x; on
//! IBM+Volta duplication is marginal (1.03x) and ReadMostly is a
//! *slowdown* (0.8x).

use hetsim::{platform, Machine, Platform};
use xplacer_workloads::lulesh::{run_lulesh, LuleshConfig, LuleshVariant};

use crate::{fmt_speedup, fmt_time, header, Grid};

/// Problem sizes of the paper's sweep.
pub const SIZES: [usize; 4] = [8, 16, 32, 48];
/// Timesteps per measurement (speedups are per-step ratios, so the count
/// only needs to amortize startup).
pub const STEPS: usize = 10;

/// One measured cell of the figure.
#[derive(Debug, Clone)]
pub struct Cell {
    pub platform: &'static str,
    pub size: usize,
    pub variant: LuleshVariant,
    pub baseline_ns: f64,
    pub variant_ns: f64,
}

impl Cell {
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.variant_ns
    }
}

/// Run the full sweep (or a reduced one when `quick`).
pub fn measure(quick: bool) -> Vec<Cell> {
    let sizes: &[usize] = if quick { &SIZES[..2] } else { &SIZES };
    let steps = if quick { 4 } else { STEPS };
    let mut cells = Vec::new();
    for pf in platform::all_platforms() {
        for &size in sizes {
            let cfg = LuleshConfig::new(size, steps);
            let base = run_one(&pf, cfg, LuleshVariant::Baseline);
            for v in [
                LuleshVariant::ReadMostly,
                LuleshVariant::PreferredCpu,
                LuleshVariant::AccessedBy,
                LuleshVariant::DupDomain,
            ] {
                let t = run_one(&pf, cfg, v);
                cells.push(Cell {
                    platform: pf.name,
                    size,
                    variant: v,
                    baseline_ns: base,
                    variant_ns: t,
                });
            }
        }
    }
    cells
}

fn run_one(pf: &Platform, cfg: LuleshConfig, v: LuleshVariant) -> f64 {
    let mut m = Machine::new(pf.clone());
    run_lulesh(&mut m, cfg, v).elapsed_ns
}

/// Render the figure as one grid per platform.
pub fn report(quick: bool) -> String {
    let cells = measure(quick);
    let mut out = header(
        "Fig. 6",
        "LULESH 2 speedup over baseline (4 remedies x 3 platforms x sizes)",
    );
    out.push_str(
        "paper: Intel ReadMostly 2.75-3.1x, duplication 3.1-3.7x at large sizes;\n\
         IBM+Volta duplication ~1.03x, ReadMostly ~0.8x (slower)\n\n",
    );
    for pf in platform::all_platforms() {
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = cells
                .iter()
                .filter(|c| c.platform == pf.name)
                .map(|c| c.size)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let col_names: Vec<String> = sizes.iter().map(|s| format!("size {s}")).collect();
        let col_refs: Vec<&str> = col_names.iter().map(|s| s.as_str()).collect();
        let mut g = Grid::new(format!("{} (speedup over baseline)", pf.name), &col_refs);
        for v in [
            LuleshVariant::ReadMostly,
            LuleshVariant::PreferredCpu,
            LuleshVariant::AccessedBy,
            LuleshVariant::DupDomain,
        ] {
            let row: Vec<String> = sizes
                .iter()
                .map(|&s| {
                    cells
                        .iter()
                        .find(|c| c.platform == pf.name && c.size == s && c.variant == v)
                        .map(|c| fmt_speedup(c.speedup()))
                        .unwrap_or_default()
                })
                .collect();
            g.row(v.label(), row);
        }
        // Baseline absolute times, like the figure caption.
        let base_row: Vec<String> = sizes
            .iter()
            .map(|&s| {
                cells
                    .iter()
                    .find(|c| c.platform == pf.name && c.size == s)
                    .map(|c| fmt_time(c.baseline_ns))
                    .unwrap_or_default()
            })
            .collect();
        g.row("baseline (sim)", base_row);
        out.push_str(&g.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let cells = measure(true);
        // 3 platforms x 2 sizes x 4 variants.
        assert_eq!(cells.len(), 24);
        // Intel platforms: every remedy is a win at every size.
        for c in cells.iter().filter(|c| c.platform != "IBM+Volta") {
            assert!(
                c.speedup() > 1.3,
                "{} size {} {:?}: speedup {:.2}",
                c.platform,
                c.size,
                c.variant,
                c.speedup()
            );
        }
        // IBM: everything is marginal; ReadMostly does not win.
        for c in cells.iter().filter(|c| c.platform == "IBM+Volta") {
            assert!(
                c.speedup() < 1.5,
                "IBM {:?} speedup {:.2} unexpectedly large",
                c.variant,
                c.speedup()
            );
        }
        let rm = cells
            .iter()
            .find(|c| c.platform == "IBM+Volta" && c.variant == LuleshVariant::ReadMostly)
            .unwrap();
        assert!(rm.speedup() < 1.05);
    }
}
