//! Fig. 7: Smith-Waterman, input 20x10. The CPU initializes the entire
//! H matrix (7a), but only the boundary zeroes are ever consumed (7b).

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, render_matrix, MapKind};
use xplacer_workloads::register_names;
use xplacer_workloads::smith_waterman::{SmithWaterman, SwConfig, SwVariant};

use crate::header;

/// Collect the two maps of the figure: CPU writes to H, and GPU reads of
/// CPU-written H values, both over the whole run.
pub fn measure() -> (Vec<bool>, Vec<bool>, SwConfig) {
    let cfg = SwConfig::new(20, 10);
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let mut sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Baseline);
    register_names(&tracer, &sw.names());
    sw.run(&mut m, |_, _| {});
    let t = tracer.borrow();
    let e = t.smt.lookup(sw.h.addr).expect("H tracked");
    (
        extract(e, MapKind::CpuWrite),
        extract(e, MapKind::GpuReadsCpuWrites),
        cfg,
    )
}

/// Render the two panels as (n+1)x(m+1) matrices.
pub fn report() -> String {
    let (writes, consumed, cfg) = measure();
    let mut out = header(
        "Fig. 7",
        "Smith-Waterman 20x10: CPU initializes all of H, only boundary zeroes are read",
    );
    out.push_str("(a) values written by the CPU (zero-initialization):\n");
    out.push_str(&render_matrix(&writes, cfg.n + 1, cfg.m + 1, 1));
    out.push_str("\n(b) CPU-written values actually read by the GPU:\n");
    out.push_str(&render_matrix(&consumed, cfg.n + 1, cfg.m + 1, 1));
    out.push_str(
        "\nremedy applied by the paper: initialize the boundary on the fly \
         (the rotated variant does).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_initializes_everything() {
        let (writes, _, _) = measure();
        assert!(writes.iter().all(|&b| b), "7a must be completely filled");
    }

    #[test]
    fn only_boundary_values_consumed() {
        let (_, consumed, cfg) = measure();
        let (n, mm) = (cfg.n, cfg.m);
        for i in 0..=n {
            for j in 0..=mm {
                let bit = consumed[i * (mm + 1) + j];
                // The kernel reads H[i-1][j-1], H[i-1][j], H[i][j-1] for
                // interior cells, so the consumed CPU zeroes are exactly
                // row 0 and column 0 (minus the far corner, which no
                // interior cell touches diagonally... it is read by cell
                // (1,1)'s column/row neighbours only if in range).
                let boundary = i == 0 || j == 0;
                if !boundary {
                    assert!(!bit, "interior zero at ({i},{j}) reported consumed");
                }
            }
        }
        // Most of the boundary is consumed.
        let consumed_boundary = (0..=n)
            .flat_map(|i| (0..=mm).map(move |j| (i, j)))
            .filter(|&(i, j)| (i == 0 || j == 0) && consumed[i * (mm + 1) + j])
            .count();
        assert!(
            consumed_boundary >= n + mm,
            "boundary barely consumed: {consumed_boundary}"
        );
    }

    #[test]
    fn report_shows_two_panels() {
        let r = report();
        assert!(r.contains("(a)"));
        assert!(r.contains("(b)"));
        // 7a row: all '#'.
        assert!(r.contains(&"#".repeat(11)));
    }
}
