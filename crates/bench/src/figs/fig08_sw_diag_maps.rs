//! Fig. 8: Smith-Waterman, input 20x10 — GPU accesses to the H matrix in
//! iteration 8: the values the GPU writes (the diagonal) and the values
//! it reads that were produced by the GPU in the previous two iterations.

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, render_matrix, MapKind};
use xplacer_workloads::smith_waterman::{SmithWaterman, SwConfig, SwVariant};

use crate::header;

/// Target diagonal ("iteration 8" of the paper).
pub const ITERATION: usize = 8;

/// Collect GPU-write and GPU-read-of-GPU-write maps of H during exactly
/// iteration `ITERATION` (per-iteration epochs, as in the paper's second
/// analysis).
pub fn measure() -> (Vec<bool>, Vec<bool>, SwConfig) {
    let cfg = SwConfig::new(20, 10);
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let mut sw = SmithWaterman::setup(&mut m, cfg, SwVariant::Baseline);
    let h_addr = sw.h.addr;
    let mut writes = Vec::new();
    let mut reads_gg = Vec::new();
    sw.run(&mut m, |d, _| {
        let mut t = tracer.borrow_mut();
        if d == ITERATION {
            let e = t.smt.lookup(h_addr).expect("H tracked");
            writes = extract(e, MapKind::GpuWrite);
            reads_gg = extract_gg(e);
        }
        t.end_epoch(); // per-iteration analysis
    });
    (writes, reads_gg, cfg)
}

fn extract_gg(e: &xplacer_core::SmtEntry) -> Vec<bool> {
    // G>G reads: GPU reads of GPU-produced values.
    e.shadow
        .iter()
        .map(|w| w.get(xplacer_core::AccessFlags::R_GG))
        .collect()
}

/// Map a baseline (row-major) bitmap onto the matrix and render.
pub fn report() -> String {
    let (writes, reads, cfg) = measure();
    let mut out = header(
        "Fig. 8",
        "Smith-Waterman 20x10: GPU accesses to H in iteration 8",
    );
    out.push_str("(a) values written by the GPU (the current anti-diagonal):\n");
    out.push_str(&render_matrix(&writes, cfg.n + 1, cfg.m + 1, 1));
    out.push_str(
        "\n(b) GPU-produced values read in this iteration \
         (the previous two anti-diagonals):\n",
    );
    out.push_str(&render_matrix(&reads, cfg.n + 1, cfg.m + 1, 1));
    out.push_str(
        "\nIn row-major layout these cells are a full row apart: for large \
         inputs every iteration touches a page per row, which page-faults \
         once the resident set exceeds GPU memory.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn written_cells_are_exactly_the_diagonal() {
        let (writes, _, cfg) = measure();
        let mm = cfg.m;
        for i in 0..=cfg.n {
            for j in 0..=mm {
                let on_diag = i + j == ITERATION && i >= 1 && j >= 1;
                assert_eq!(
                    writes[i * (mm + 1) + j],
                    on_diag,
                    "write map wrong at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn reads_come_from_previous_two_diagonals() {
        let (_, reads, cfg) = measure();
        let mm = cfg.m;
        for i in 0..=cfg.n {
            for j in 0..=mm {
                if reads[i * (mm + 1) + j] {
                    let d = i + j;
                    assert!(
                        d == ITERATION - 1 || d == ITERATION - 2,
                        "G>G read at ({i},{j}) on diagonal {d}"
                    );
                }
            }
        }
        assert!(reads.iter().any(|&b| b), "some G>G reads must exist");
    }

    #[test]
    fn report_renders_both_maps() {
        let r = report();
        assert!(r.contains("(a)"));
        assert!(r.contains("(b)"));
        assert!(r.matches('#').count() > 5);
    }
}
