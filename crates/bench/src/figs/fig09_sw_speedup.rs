//! Fig. 9: Smith-Waterman speedup of the rotated-matrix version over the
//! baseline, for input lengths spanning the GPU-memory boundary.
//!
//! Paper: lengths 5000/25000/45000 fit in GPU memory, 46000 exceeds it;
//! the rotated version wins modestly in-memory and massively once the
//! baseline starts thrashing (baseline 24.9s vs ~2.3s at 46000 on
//! Pascal). We run at 1/10 linear scale with GPU memory scaled by the
//! same factor squared, which preserves the fits/thrashes boundary.

use hetsim::Device;
use hetsim::{platform, Machine, MemAdvise, Platform};
use xplacer_workloads::smith_waterman::{run_sw, SwConfig, SwVariant};

use crate::{fmt_speedup, fmt_time, header, Grid};

/// 1/10 of the paper's input lengths.
pub const LENGTHS: [usize; 4] = [500, 2500, 4500, 4600];

/// Scaled GPU memory: at 1/10 linear scale, H + P for length 4500 span
/// ~2478 pages of 64 KiB and length 4600 spans ~2588; 158 MiB (2528
/// pages) puts the capacity boundary between them — the same
/// fits/thrashes split as 45000 vs 46000 against 16 GiB in the paper.
pub const GPU_MEM_BYTES: u64 = 158 * 1024 * 1024;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub platform: &'static str,
    pub len: usize,
    pub baseline_ns: f64,
    pub rotated_ns: f64,
    pub baseline_evictions: u64,
    pub rotated_evictions: u64,
}

impl Cell {
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.rotated_ns
    }
}

fn run_one(pf: &Platform, len: usize, variant: SwVariant) -> (f64, u64) {
    let mut m = Machine::new(pf.clone());
    m.set_gpu_mem_bytes(GPU_MEM_BYTES);
    let cfg = SwConfig::square(len);
    // Paper setup: setPreferredLocation(GPU) on the Intel+Pascal system
    // for all unified allocations; not set on IBM+Volta (it degraded the
    // largest input there).
    if pf.name == "Intel+Pascal" {
        let r = {
            let mut sw =
                xplacer_workloads::smith_waterman::SmithWaterman::setup(&mut m, cfg, variant);
            for (addr, _) in sw.names() {
                let a = m.find_alloc(addr).expect("allocated").size;
                let _ = m.try_mem_advise(addr, a, MemAdvise::SetPreferredLocation(Device::GPU0));
            }
            m.reset_metrics();
            sw.run(&mut m, |_, _| {});
            let _ = sw.score(&mut m);
            m.elapsed_ns()
        };
        (r, m.stats.evictions)
    } else {
        let r = run_sw(&mut m, cfg, variant);
        (r.elapsed_ns, r.stats.evictions)
    }
}

/// Run the sweep on the two platforms of the figure.
pub fn measure(quick: bool) -> Vec<Cell> {
    let lengths: &[usize] = if quick { &LENGTHS[..2] } else { &LENGTHS };
    let platforms = [platform::intel_pascal(), platform::power9_volta()];
    let mut cells = Vec::new();
    for pf in &platforms {
        for &len in lengths {
            let (b, be) = run_one(pf, len, SwVariant::Baseline);
            let (r, re) = run_one(pf, len, SwVariant::Rotated);
            cells.push(Cell {
                platform: pf.name,
                len,
                baseline_ns: b,
                rotated_ns: r,
                baseline_evictions: be,
                rotated_evictions: re,
            });
        }
    }
    cells
}

/// Render the figure.
pub fn report(quick: bool) -> String {
    let cells = measure(quick);
    let mut out = header(
        "Fig. 9",
        "Smith-Waterman: rotated-matrix speedup over baseline (1/10 linear scale)",
    );
    out.push_str(&format!(
        "inputs (scaled /10): {:?}; GPU memory scaled to {} MiB so the largest\n\
         input exceeds device memory exactly as 46000 exceeds 16 GiB in the paper\n\n",
        LENGTHS,
        GPU_MEM_BYTES >> 20
    ));
    for pname in ["Intel+Pascal", "IBM+Volta"] {
        let rows: Vec<&Cell> = cells.iter().filter(|c| c.platform == pname).collect();
        if rows.is_empty() {
            continue;
        }
        let mut g = Grid::new(
            format!("{pname} (speedup over baseline)"),
            &["speedup", "baseline", "rotated", "evictions base/rot"],
        );
        for c in rows {
            g.row(
                format!("len {}", c.len),
                vec![
                    fmt_speedup(c.speedup()),
                    fmt_time(c.baseline_ns),
                    fmt_time(c.rotated_ns),
                    format!("{}/{}", c.baseline_evictions, c.rotated_evictions),
                ],
            );
        }
        out.push_str(&g.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversubscribed_input_thrashes_baseline_only() {
        // Run just the largest input on Pascal.
        let pf = platform::intel_pascal();
        let (b, be) = run_one(&pf, LENGTHS[3], SwVariant::Baseline);
        let (r, re) = run_one(&pf, LENGTHS[3], SwVariant::Rotated);
        assert!(
            b / r > 2.0,
            "expected large speedup at the oversubscribed size, got {:.2} ({} vs {})",
            b / r,
            b,
            r
        );
        assert!(be > 10 * re.max(1), "evictions {be} vs {re}");
    }

    #[test]
    fn in_memory_input_speedup_is_modest() {
        let pf = platform::intel_pascal();
        let (b, _) = run_one(&pf, 500, SwVariant::Baseline);
        let (r, _) = run_one(&pf, 500, SwVariant::Rotated);
        let s = b / r;
        assert!((0.7..2.5).contains(&s), "in-memory speedup {s:.2}");
    }
}
