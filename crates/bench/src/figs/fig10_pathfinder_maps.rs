//! Fig. 10: Pathfinder access maps of `gpuWall`: initialized by the CPU
//! and copied to the GPU in one piece (a), then each kernel iteration
//! reads one fifth of it (b: iteration 1, c: iteration 2, d: iteration 5).

use hetsim::{platform, Machine};
use xplacer_core::accessmap::{extract, fill_ratio, render_ascii, MapKind};
use xplacer_workloads::register_names;
use xplacer_workloads::rodinia::pathfinder::{Pathfinder, PathfinderConfig, PathfinderVariant};

use crate::header;

/// Scaled configuration: 5 iterations so each reads 20 % of the wall,
/// like the paper's figure.
pub fn config() -> PathfinderConfig {
    PathfinderConfig::new(2000, 101, 20)
}

/// Collected maps: the initial CPU-write coverage and the GPU read map
/// after iterations 1, 2, and 5 (per-iteration epochs).
pub struct Maps {
    pub cpu_writes_initial: Vec<bool>,
    pub gpu_reads_per_iter: Vec<Vec<bool>>,
}

pub fn measure() -> Maps {
    let cfg = config();
    let mut m = Machine::new(platform::intel_pascal());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let mut p = Pathfinder::setup(&mut m, cfg, PathfinderVariant::Baseline);
    register_names(&tracer, &p.names());
    let wall_addr = p.gpu_wall.addr;

    // Map (a): what the bulk H2D copy wrote (recorded as CPU writes).
    let cpu_writes_initial = {
        let t = tracer.borrow();
        let e = t.smt.lookup(wall_addr).expect("gpuWall tracked");
        extract(e, MapKind::CpuWrite)
    };
    tracer.borrow_mut().end_epoch();

    let mut gpu_reads_per_iter = Vec::new();
    p.run(&mut m, |_, _| {
        let mut t = tracer.borrow_mut();
        let e = t.smt.lookup(wall_addr).expect("gpuWall tracked");
        gpu_reads_per_iter.push(extract(e, MapKind::GpuRead));
        t.end_epoch();
    });
    Maps {
        cpu_writes_initial,
        gpu_reads_per_iter,
    }
}

fn panel(out: &mut String, caption: &str, bits: &[bool]) {
    out.push_str(&format!(
        "{caption} — {:.0}% of gpuWall:\n",
        fill_ratio(bits) * 100.0
    ));
    // Compress: one character per 1/80th of the array.
    let chunk = (bits.len() / 80).max(1);
    let condensed: Vec<bool> = bits.chunks(chunk).map(|c| c.iter().any(|&b| b)).collect();
    out.push_str(&render_ascii(&condensed, 80));
    out.push('\n');
}

/// Render the four panels.
pub fn report() -> String {
    let maps = measure();
    let mut out = header(
        "Fig. 10",
        "Pathfinder: gpuWall access maps (5 iterations, 1/5 slice each)",
    );
    panel(
        &mut out,
        "(a) CPU writes (bulk H2D copy)",
        &maps.cpu_writes_initial,
    );
    for (label, idx) in [
        ("(b) GPU reads, iteration 1", 0),
        ("(c) GPU reads, iteration 2", 1),
        ("(d) GPU reads, iteration 5", 4),
    ] {
        if let Some(bits) = maps.gpu_reads_per_iter.get(idx) {
            panel(&mut out, label, bits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_copy_covers_everything() {
        let maps = measure();
        assert!(maps.cpu_writes_initial.iter().all(|&b| b));
    }

    #[test]
    fn each_iteration_reads_one_fifth() {
        let maps = measure();
        assert_eq!(maps.gpu_reads_per_iter.len(), 5);
        for (i, bits) in maps.gpu_reads_per_iter.iter().enumerate() {
            let ratio = fill_ratio(bits);
            assert!(
                (0.15..0.25).contains(&ratio),
                "iteration {i} read {:.0}%",
                ratio * 100.0
            );
        }
    }

    #[test]
    fn iterations_read_disjoint_consecutive_slices() {
        let maps = measure();
        let first_set = |bits: &[bool]| bits.iter().position(|&b| b).unwrap();
        let starts: Vec<usize> = maps
            .gpu_reads_per_iter
            .iter()
            .map(|b| first_set(b))
            .collect();
        for w in starts.windows(2) {
            assert!(w[1] > w[0], "slices should advance: {starts:?}");
        }
        // Disjoint: iteration 1 and 2 share no words.
        let overlap = maps.gpu_reads_per_iter[0]
            .iter()
            .zip(&maps.gpu_reads_per_iter[1])
            .filter(|(&a, &b)| a && b)
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn report_has_four_panels() {
        let r = report();
        for p in ["(a)", "(b)", "(c)", "(d)"] {
            assert!(r.contains(p));
        }
    }
}
