//! Fig. 11: Pathfinder speedup of overlapped (chunked, double-streamed)
//! transfers over the bulk-copy baseline.
//!
//! Paper: cols = 1M, rows in {200, 600, 1000}, pyramid height 20. The
//! revised version runs up to 1.13x faster on Intel+Pascal and remains
//! *slower* on IBM+Volta. We run at 1/10 column scale (the per-iteration
//! copy/compute ratio is preserved since both scale with cols).

use hetsim::{platform, Machine, Platform};
use xplacer_workloads::rodinia::pathfinder::{run_pathfinder, PathfinderConfig, PathfinderVariant};

use crate::{fmt_speedup, fmt_time, header, Grid};

/// 1/10 of the paper's 1M columns.
pub const COLS: usize = 100_000;
/// The paper's row sweep.
pub const ROWS: [usize; 3] = [200, 600, 1000];
/// The paper's pyramid height.
pub const PYRAMID: usize = 20;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    pub platform: &'static str,
    pub rows: usize,
    pub baseline_ns: f64,
    pub overlapped_ns: f64,
}

impl Cell {
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.overlapped_ns
    }
}

fn run_one(pf: &Platform, rows: usize, v: PathfinderVariant) -> f64 {
    let mut m = Machine::new(pf.clone());
    let cfg = PathfinderConfig::new(COLS, rows + 1, PYRAMID);
    run_pathfinder(&mut m, cfg, v).elapsed_ns
}

/// Run the sweep on the two platforms of the figure.
pub fn measure(quick: bool) -> Vec<Cell> {
    let rows: &[usize] = if quick { &ROWS[..1] } else { &ROWS };
    let platforms = [platform::intel_pascal(), platform::power9_volta()];
    let mut cells = Vec::new();
    for pf in &platforms {
        for &r in rows {
            let b = run_one(pf, r, PathfinderVariant::Baseline);
            let o = run_one(pf, r, PathfinderVariant::Overlapped);
            cells.push(Cell {
                platform: pf.name,
                rows: r,
                baseline_ns: b,
                overlapped_ns: o,
            });
        }
    }
    cells
}

/// Render the figure.
pub fn report(quick: bool) -> String {
    let cells = measure(quick);
    let mut out = header(
        "Fig. 11",
        "Pathfinder: overlapped-transfer speedup over baseline",
    );
    out.push_str(&format!(
        "cols = {COLS} (paper: 1M, 1/10 scale), pyramid = {PYRAMID}\n\
         paper: up to 1.13x faster on Intel+Pascal, slower on IBM+Volta\n\n"
    ));
    for pname in ["Intel+Pascal", "IBM+Volta"] {
        let rows: Vec<&Cell> = cells.iter().filter(|c| c.platform == pname).collect();
        if rows.is_empty() {
            continue;
        }
        let mut g = Grid::new(
            format!("{pname} (speedup over baseline)"),
            &["speedup", "baseline", "overlapped"],
        );
        for c in rows {
            g.row(
                format!("rows {}", c.rows),
                vec![
                    fmt_speedup(c.speedup()),
                    fmt_time(c.baseline_ns),
                    fmt_time(c.overlapped_ns),
                ],
            );
        }
        out.push_str(&g.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_wins_on_pascal_loses_on_ibm() {
        // Single row size keeps the test fast; the direction is what the
        // paper claims.
        let pascal = {
            let pf = platform::intel_pascal();
            let b = run_one(&pf, 200, PathfinderVariant::Baseline);
            let o = run_one(&pf, 200, PathfinderVariant::Overlapped);
            b / o
        };
        assert!(
            pascal > 1.0 && pascal < 1.4,
            "Pascal speedup {pascal:.3} out of the paper's band"
        );
        let ibm = {
            let pf = platform::power9_volta();
            let b = run_one(&pf, 200, PathfinderVariant::Baseline);
            let o = run_one(&pf, 200, PathfinderVariant::Overlapped);
            b / o
        };
        assert!(ibm < 1.0, "IBM speedup {ibm:.3} should be a slowdown");
    }
}
