//! One module per table/figure of the paper's evaluation. Each exposes a
//! `report()` function returning the regenerated content as text.

pub mod ablation_page_size;
pub mod fig04_lulesh_diagnostic;
pub mod fig05_lulesh_maps;
pub mod fig06_lulesh_speedup;
pub mod fig07_sw_init_maps;
pub mod fig08_sw_diag_maps;
pub mod fig09_sw_speedup;
pub mod fig10_pathfinder_maps;
pub mod fig11_pathfinder_speedup;
pub mod table1_api;
pub mod table2_rodinia;
pub mod table3_overhead;
