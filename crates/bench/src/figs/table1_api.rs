//! Table I: the instrumentation API — demonstrated live. Takes the
//! paper's example fragments through the real pass: memory access
//! tracing (`traceR`/`traceW`/`traceRW`), function-call replacement
//! (`#pragma xpl replace`), kernel-launch wrapping, and diagnostic
//! output insertion (`#pragma xpl diagnostic`).

use xplacer_instrument::instrument;
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;

use crate::header;

/// The demonstration source: the paper's Fig. 2 examples plus one of
/// each pragma.
pub const DEMO_SOURCE: &str = r#"struct Pair { int* first; int* second; };

#pragma xpl replace cudaMallocManaged
int trcMallocManaged(void** p, size_t sz);

#pragma xpl replace kernel-launch
void traceKernelLaunch(int grd, int blk, char* kernel);

__global__ void touch(int* p, int n) {
    int i = threadIdx.x;
    if (i < n) {
        p[i] = p[i] + 1;
    }
}

int main() {
    int* p = new int(2);
    int x = *p;
    *p = 3;
    (*p)++;
    Pair* a;
    int* z;
    cudaMallocManaged((void**)&a, sizeof(Pair));
    cudaMallocManaged((void**)&z, sizeof(int));
    touch<<<1, 8>>>(z, 1);
#pragma xpl diagnostic tracePrint(out; a, z)
    return x;
}
"#;

/// Instrument the demo and return `(original, instrumented)` text.
pub fn measure() -> (String, String) {
    let prog = parse(DEMO_SOURCE).expect("demo parses");
    let inst = instrument(&prog);
    (DEMO_SOURCE.to_string(), unparse(&inst.program))
}

/// Render the side-by-side demonstration.
pub fn report() -> String {
    let (original, instrumented) = measure();
    let mut out = header(
        "Table I",
        "XPlacer instrumentation API, demonstrated on the paper's examples",
    );
    out.push_str("--- original source ---\n");
    out.push_str(&original);
    out.push_str("\n--- after the XPlacer pass ---\n");
    out.push_str(&instrumented);
    out.push_str(
        "\nAPI elements exercised: traceR / traceW / traceRW wrapping of heap\n\
         l-values; #pragma xpl replace (cudaMallocManaged -> trcMallocManaged,\n\
         kernel-launch -> traceKernelLaunch); #pragma xpl diagnostic with\n\
         recursive XplAllocData expansion of `a` (a, a->first, a->second) and `z`.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_exercises_every_table1_row() {
        let (_, inst) = measure();
        // Memory access tracing.
        assert!(inst.contains("int x = traceR(*p);"), "{inst}");
        assert!(inst.contains("traceW(*p) = 3;"), "{inst}");
        assert!(inst.contains("traceRW(*p)++;"), "{inst}");
        // Function replacement.
        assert!(inst.contains("trcMallocManaged((void**)(&a)"), "{inst}");
        // Kernel-launch replacement.
        assert!(
            inst.contains("traceKernelLaunch(1, 8, \"touch\", z, 1)"),
            "{inst}"
        );
        // Diagnostic expansion.
        assert!(inst.contains("XplAllocData(a, \"a\""), "{inst}");
        assert!(
            inst.contains("XplAllocData(a->first, \"a->first\""),
            "{inst}"
        );
        assert!(inst.contains("XplAllocData(z, \"z\""), "{inst}");
    }

    #[test]
    fn instrumented_demo_runs_and_diagnoses() {
        let (out, interp) =
            xplacer_interp::run_source(DEMO_SOURCE, hetsim::platform::intel_pascal(), true)
                .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(out.exit, 2);
        assert!(out.stdout.contains("named allocations"), "{}", out.stdout);
        assert!(out.stdout.contains("z"), "{}", out.stdout);
        // z alternates: CPU allocates/initializes, GPU RMWs it.
        let _ = interp;
    }
}
