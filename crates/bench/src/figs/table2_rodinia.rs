//! Table II: findings in the Rodinia benchmark subset — each benchmark
//! run traced, its shadow memory analyzed, and the detector output
//! compared against the paper's reported findings.

use hetsim::{platform, Machine};
use xplacer_core::antipattern::{analyze, AnalysisConfig};
use xplacer_core::Report;
use xplacer_workloads::register_names;
use xplacer_workloads::rodinia::{backprop, cfd, gaussian, lud, nn, pathfinder};

use crate::header;

/// The analysis outcome of one benchmark.
pub struct BenchFindings {
    pub name: &'static str,
    /// Whole-run detector report.
    pub report: Report,
    /// Paper's wording for this benchmark, for side-by-side rendering.
    pub paper: &'static str,
    /// Per-iteration gpuWall access densities (Pathfinder only).
    pub per_iter_density: Vec<f64>,
}

fn cfg() -> AnalysisConfig {
    AnalysisConfig {
        min_transfer_run_words: 16,
        ..AnalysisConfig::default()
    }
}

/// Run all six benchmarks traced and analyze them.
pub fn measure() -> Vec<BenchFindings> {
    let mut out = Vec::new();

    // --- Backprop ---
    {
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut b = backprop::Backprop::setup(&mut m, backprop::BackpropConfig::new(4096));
        register_names(&tracer, &b.names());
        b.run(&mut m);
        out.push(BenchFindings {
            name: "Backprop",
            report: analyze(&tracer.borrow().smt, &cfg()),
            paper: "output_hidden_cuda allocated but never used; input_cuda copied \
                    to GPU and back although not modified by the GPU",
            per_iter_density: Vec::new(),
        });
    }

    // --- CFD ---
    {
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut c = cfd::Cfd::setup(&mut m, cfd::CfdConfig::new(4096, 10));
        register_names(&tracer, &c.names());
        c.run(&mut m);
        out.push(BenchFindings {
            name: "CFD",
            report: analyze(&tracer.borrow().smt, &cfg()),
            paper: "no possible improvements identified",
            per_iter_density: Vec::new(),
        });
    }

    // --- Gaussian ---
    {
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut g = gaussian::Gaussian::setup(&mut m, gaussian::GaussianConfig::new(64));
        register_names(&tracer, &g.names());
        g.run(&mut m);
        out.push(BenchFindings {
            name: "Gaussian",
            report: analyze(&tracer.borrow().smt, &cfg()),
            paper: "m_cuda transferred to the GPU, but the GPU overwrites all \
                    transferred values before use — the initial transfer can be \
                    eliminated",
            per_iter_density: Vec::new(),
        });
    }

    // --- LUD ---
    {
        // Whole-run trace for the transfer finding.
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut l = lud::Lud::setup(&mut m, lud::LudConfig::new(96));
        register_names(&tracer, &l.names());
        l.run(&mut m, |_, _| {});
        let report = analyze(&tracer.borrow().smt, &cfg());

        // Second, per-iteration trace for the shrinking access set (the
        // paper's analysis "after each iteration"): sample every 12th
        // elimination step.
        let mut m2 = Machine::new(platform::intel_pascal());
        let tracer2 = xplacer_core::attach_tracer(&mut m2);
        let mut l2 = lud::Lud::setup(&mut m2, lud::LudConfig::new(96));
        register_names(&tracer2, &l2.names());
        let md = l2.m_d.addr;
        tracer2.borrow_mut().end_epoch();
        let mut densities = Vec::new();
        l2.run(&mut m2, |k, _| {
            let mut t = tracer2.borrow_mut();
            if k % 12 == 0 {
                let e = t.smt.lookup(md).expect("m_d");
                densities.push(xplacer_core::antipattern::density::density(e));
            }
            t.end_epoch();
        });
        out.push(BenchFindings {
            name: "LUD",
            report,
            paper: "first row of m_d never updated yet transferred back; GPU \
                    accesses fewer and fewer locations as computation progresses",
            per_iter_density: densities,
        });
    }

    // --- NN ---
    {
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut n = nn::Nn::setup(&mut m, nn::NnConfig::new(8192));
        register_names(&tracer, &n.names());
        n.run(&mut m);
        out.push(BenchFindings {
            name: "NN",
            report: analyze(&tracer.borrow().smt, &cfg()),
            paper: "no possible improvements identified",
            per_iter_density: Vec::new(),
        });
    }

    // --- Pathfinder ---
    {
        // Whole-run trace (no epoch resets) for the transfer analysis.
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = xplacer_core::attach_tracer(&mut m);
        let mut p = pathfinder::Pathfinder::setup(
            &mut m,
            pathfinder::PathfinderConfig::new(2000, 101, 20),
            pathfinder::PathfinderVariant::Baseline,
        );
        register_names(&tracer, &p.names());
        p.run(&mut m, |_, _| {});
        let whole_run = analyze(&tracer.borrow().smt, &cfg());

        // Per-iteration epochs for the 100/N % density observation.
        let mut m2 = Machine::new(platform::intel_pascal());
        let tracer2 = xplacer_core::attach_tracer(&mut m2);
        let mut p2 = pathfinder::Pathfinder::setup(
            &mut m2,
            pathfinder::PathfinderConfig::new(2000, 101, 20),
            pathfinder::PathfinderVariant::Baseline,
        );
        register_names(&tracer2, &p2.names());
        let wall = p2.gpu_wall.addr;
        tracer2.borrow_mut().end_epoch(); // drop the bulk-copy epoch
        let mut densities = Vec::new();
        p2.run(&mut m2, |_, _| {
            let mut t = tracer2.borrow_mut();
            let e = t.smt.lookup(wall).expect("gpuWall");
            densities.push(xplacer_core::antipattern::density::density(e));
            t.end_epoch();
        });
        out.push(BenchFindings {
            name: "Pathfinder",
            report: whole_run,
            paper: "gpuWall produced on the CPU and fully transferred before the \
                    computation; with N iterations only 100/N % is accessed per \
                    iteration",
            per_iter_density: densities,
        });
    }

    out
}

/// Render the table.
pub fn report() -> String {
    let rows = measure();
    let mut out = header("Table II", "Findings in a subset of the Rodinia benchmarks");
    for r in &rows {
        out.push_str(&format!("## {}\n", r.name));
        out.push_str(&format!("paper: {}\n", r.paper));
        out.push_str("measured:\n");
        let rendered = r.report.render();
        for line in rendered.lines() {
            out.push_str(&format!("  {line}\n"));
        }
        if !r.per_iter_density.is_empty() {
            let pct: Vec<String> = r
                .per_iter_density
                .iter()
                .map(|d| format!("{:.0}%", d * 100.0))
                .collect();
            out.push_str(&format!(
                "  per-iteration access density: {}\n",
                pct.join(", ")
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(rows: &'a [BenchFindings], name: &str) -> &'a BenchFindings {
        rows.iter().find(|r| r.name == name).unwrap()
    }

    #[test]
    fn table2_findings_match_paper() {
        use xplacer_core::FindingKind;
        let rows = measure();

        // Backprop: unused allocation + round trip.
        let bp = find(&rows, "Backprop");
        assert!(bp
            .report
            .for_alloc("output_hidden_cuda")
            .any(|f| f.kind() == FindingKind::UnusedAllocation));
        assert!(bp
            .report
            .for_alloc("input_cuda")
            .any(|f| matches!(f, xplacer_core::Finding::RoundTripUnmodified { .. })));

        // CFD and NN: clean.
        assert!(
            find(&rows, "CFD").report.is_empty(),
            "CFD: {}",
            find(&rows, "CFD").report
        );
        assert!(
            find(&rows, "NN").report.is_empty(),
            "NN: {}",
            find(&rows, "NN").report
        );

        // Gaussian: m_cuda overwritten before read.
        assert!(find(&rows, "Gaussian")
            .report
            .for_alloc("m_cuda")
            .any(|f| matches!(f, xplacer_core::Finding::TransferredOverwritten { .. })));

        // LUD: first row transferred back unmodified.
        assert!(find(&rows, "LUD").report.for_alloc("m_d").any(|f| matches!(
            f,
            xplacer_core::Finding::TransferredOutUnmodified { off_words: 0, .. }
        )));

        // Pathfinder: ~20% density per iteration (N = 5).
        let pf = find(&rows, "Pathfinder");
        assert_eq!(pf.per_iter_density.len(), 5);
        for d in &pf.per_iter_density {
            assert!((0.15..0.25).contains(d), "density {d}");
        }
    }
}
