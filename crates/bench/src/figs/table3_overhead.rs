//! Table III: runtime overhead of XPlacer's instrumentation.
//!
//! The paper measures wall-clock slowdown of instrumented binaries
//! (5x–20x, ~15x average). Here the analogue is *host* wall-clock time of
//! the simulator with the tracer hook attached vs detached — the hook
//! performs exactly the paper's per-access work (SMT lookup + shadow
//! update), so the overhead factor reflects the same mechanism. Input
//! sizes are scaled where the originals would make the suite take
//! minutes; the configuration column records the scaling.

use std::time::Instant;

use hetsim::{platform, Machine};
use xplacer_workloads::lulesh::{run_lulesh, LuleshConfig, LuleshVariant};
use xplacer_workloads::rodinia::{backprop, gaussian};
use xplacer_workloads::smith_waterman::{run_sw, SwConfig, SwVariant};

use crate::{header, Grid};

/// One overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    pub benchmark: &'static str,
    pub configuration: String,
    /// Paper's measured overhead for the corresponding row, if any.
    pub paper: Option<f64>,
    pub plain_s: f64,
    pub traced_s: f64,
}

impl OverheadRow {
    pub fn overhead(&self) -> f64 {
        self.traced_s / self.plain_s
    }
}

fn time_pair(mut run: impl FnMut(bool)) -> (f64, f64) {
    // Warm up allocator caches once.
    run(false);
    let t0 = Instant::now();
    run(false);
    let plain = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    run(true);
    let traced = t1.elapsed().as_secs_f64();
    (plain, traced)
}

/// Measure all rows (LULESH, Smith-Waterman, Backprop, Gaussian).
pub fn measure(quick: bool) -> Vec<OverheadRow> {
    let mut rows = Vec::new();

    let lulesh_sizes: &[(usize, &str)] = if quick {
        &[(8, "size = 8, iterations = 16")]
    } else {
        &[
            (8, "size = 8, iterations = 16"),
            (24, "size = 24 (paper: 48, scaled), iterations = 16"),
            (48, "size = 48 (paper: 96, scaled), iterations = 16"),
        ]
    };
    let lulesh_paper = [14.0, 15.0, 18.0];
    for (i, &(size, label)) in lulesh_sizes.iter().enumerate() {
        let (plain, traced) = time_pair(|traced| {
            let mut m = Machine::new(platform::intel_pascal());
            if traced {
                let _t = xplacer_core::attach_tracer(&mut m);
                let _ = run_lulesh(&mut m, LuleshConfig::new(size, 16), LuleshVariant::Baseline);
            } else {
                let _ = run_lulesh(&mut m, LuleshConfig::new(size, 16), LuleshVariant::Baseline);
            }
        });
        rows.push(OverheadRow {
            benchmark: "LULESH 2",
            configuration: label.to_string(),
            paper: Some(lulesh_paper[i]),
            plain_s: plain,
            traced_s: traced,
        });
    }

    let sw_sizes: &[(usize, &str)] = if quick {
        &[(200, "size = 200x200 (paper: 1000x1000, scaled)")]
    } else {
        &[
            (200, "size = 200x200 (paper: 1000x1000, scaled)"),
            (1000, "size = 1000x1000 (paper: 10000x10000, scaled)"),
            (2000, "size = 2000x2000 (paper: 20000x20000, scaled)"),
        ]
    };
    let sw_paper = [20.0, 13.0, 8.0];
    for (i, &(len, label)) in sw_sizes.iter().enumerate() {
        let (plain, traced) = time_pair(|traced| {
            let mut m = Machine::new(platform::intel_pascal());
            if traced {
                let _t = xplacer_core::attach_tracer(&mut m);
                let _ = run_sw(&mut m, SwConfig::square(len), SwVariant::Baseline);
            } else {
                let _ = run_sw(&mut m, SwConfig::square(len), SwVariant::Baseline);
            }
        });
        rows.push(OverheadRow {
            benchmark: "Smith-Waterman",
            configuration: label.to_string(),
            paper: Some(sw_paper[i]),
            plain_s: plain,
            traced_s: traced,
        });
    }

    // Backprop (paper: 640K, 5x).
    {
        let (plain, traced) = time_pair(|traced| {
            let mut m = Machine::new(platform::intel_pascal());
            if traced {
                let _t = xplacer_core::attach_tracer(&mut m);
                let _ = backprop::run_backprop(&mut m, backprop::BackpropConfig::new(65536));
            } else {
                let _ = backprop::run_backprop(&mut m, backprop::BackpropConfig::new(65536));
            }
        });
        rows.push(OverheadRow {
            benchmark: "Backprop",
            configuration: "size = 64K (paper: 640K, scaled)".to_string(),
            paper: Some(5.0),
            plain_s: plain,
            traced_s: traced,
        });
    }

    // Gaussian (paper: 100 and 1000; 14x and 12x kernel-time overhead).
    let gauss_sizes: &[(usize, &str, f64)] = if quick {
        &[(100, "size = 100", 14.0)]
    } else {
        &[
            (100, "size = 100", 14.0),
            (300, "size = 300 (paper: 1000, scaled)", 12.0),
        ]
    };
    for &(n, label, paper) in gauss_sizes {
        let (plain, traced) = time_pair(|traced| {
            let mut m = Machine::new(platform::intel_pascal());
            if traced {
                let _t = xplacer_core::attach_tracer(&mut m);
                let _ = gaussian::run_gaussian(&mut m, gaussian::GaussianConfig::new(n));
            } else {
                let _ = gaussian::run_gaussian(&mut m, gaussian::GaussianConfig::new(n));
            }
        });
        rows.push(OverheadRow {
            benchmark: "Gaussian",
            configuration: label.to_string(),
            paper: Some(paper),
            plain_s: plain,
            traced_s: traced,
        });
    }

    rows
}

/// Render the table.
pub fn report(quick: bool) -> String {
    let rows = measure(quick);
    let mut out = header(
        "Table III",
        "Runtime overhead of instrumentation (host wall-clock, tracer on vs off)",
    );
    out.push_str("paper: 5x-20x, about 15x on average\n\n");
    let mut g = Grid::new(
        "overhead (traced / plain)".to_string(),
        &["plain", "traced", "overhead", "paper"],
    );
    let mut sum = 0.0;
    for r in &rows {
        g.row(
            format!("{} [{}]", r.benchmark, r.configuration),
            vec![
                format!("{:.3}s", r.plain_s),
                format!("{:.3}s", r.traced_s),
                format!("{:.1}x", r.overhead()),
                r.paper.map(|p| format!("{p:.0}x")).unwrap_or_default(),
            ],
        );
        sum += r.overhead();
    }
    out.push_str(&g.render());
    out.push_str(&format!(
        "\naverage measured overhead: {:.1}x (paper average: ~15x)\n\
         note: overheads are host wall-clock of the simulator; the hook does the\n\
         paper's per-access work (SMT search + shadow update), but the baseline\n\
         here also pays simulation costs, so factors are lower than on hardware.\n",
        sum / rows.len() as f64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumentation_slows_every_benchmark() {
        // Wall-clock ratios wobble when the rest of the suite saturates the
        // machine; retry a couple of times before declaring the tracer free.
        let mut last = Vec::new();
        for _ in 0..3 {
            last = measure(true);
            if last.iter().all(|r| r.overhead() > 1.1) {
                return;
            }
        }
        for r in &last {
            assert!(
                r.overhead() > 1.1,
                "{} [{}]: overhead {:.2}x",
                r.benchmark,
                r.configuration,
                r.overhead()
            );
        }
    }
}
