//! # xplacer-bench — harnesses regenerating the paper's tables & figures
//!
//! Each experiment of the paper's evaluation (§IV) lives in one module
//! under [`figs`] and returns a textual report; the `src/bin/*` binaries
//! are thin wrappers, and `reproduce_all` runs everything and collects
//! the paper-vs-measured comparison for `EXPERIMENTS.md`.
//!
//! Scale note: the simulator runs the paper's *workload structure* at
//! reduced input sizes where the originals are testbed-scale (1M-column
//! grids, 45000-character strings). Every report states its scaling; the
//! claims being reproduced are shapes — who wins, by what factor, where
//! crossovers fall — not absolute times.

pub mod access_path;
pub mod bench_json;
pub mod figs;
pub mod metrics_dump;
pub mod smoke;

use std::fmt::Write as _;

/// A labelled measurement grid: rows × columns of values, rendered as an
/// aligned text table.
pub struct Grid {
    pub title: String,
    pub col_names: Vec<String>,
    pub rows: Vec<(String, Vec<String>)>,
}

impl Grid {
    pub fn new(title: impl Into<String>, col_names: &[&str]) -> Self {
        Grid {
            title: title.into(),
            col_names: col_names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells.
    pub fn row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.col_names.iter().map(|c| c.len()).collect();
        let mut label_w = 0usize;
        for (label, cells) in &self.rows {
            label_w = label_w.max(label.len());
            for (i, c) in cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "  {:label_w$}", "");
        for (i, c) in self.col_names.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", c, w = widths[i]);
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            let _ = write!(out, "  {label:label_w$}");
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "  {:>w$}", c, w = widths[i]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Section header used by every report.
pub fn header(id: &str, caption: &str) -> String {
    format!(
        "================================================================\n\
         {id}: {caption}\n\
         ================================================================\n"
    )
}

/// Format a speedup with two decimals and an `x` suffix.
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.2}x")
}

/// Format simulated nanoseconds as adaptive ms/s text.
pub fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.0}us", ns / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_renders_aligned() {
        let mut g = Grid::new("demo", &["a", "bbbb"]);
        g.row("row1", vec!["1".into(), "2".into()]);
        g.row("longer-row", vec!["10".into(), "20".into()]);
        let r = g.render();
        assert!(r.contains("demo"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: both data lines have the same length.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(3.21987), "3.22x");
        assert_eq!(fmt_time(1_500_000.0), "1.5ms");
        assert_eq!(fmt_time(2.5e9), "2.50s");
        assert_eq!(fmt_time(900.0), "1us");
    }
}
