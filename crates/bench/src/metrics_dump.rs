//! Per-experiment metrics JSON for `reproduce_all`.
//!
//! Every figure/table harness returns a *textual* report; this module runs
//! each experiment's canonical configuration once more with the tracer and
//! an event log attached and serializes the simulator counters, allocation
//! summaries, findings, and event digest through `xplacer-obs`, so the
//! `results/` directory carries machine-readable companions next to the
//! text reports. The runs are deterministic, so these files are stable
//! across invocations and diffable between code revisions.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use hetsim::{platform, EventLog, Machine};
use xplacer_core::antipattern::{analyze, AnalysisConfig};
use xplacer_obs::{metrics_report, Json};
use xplacer_workloads as w;

use crate::bench_json::BenchRecord;

/// One experiment's canonical observed run: the full metrics document
/// plus the compact performance fingerprint `bench compare` gates on.
pub struct ExperimentRun {
    pub metrics: Json,
    pub bench: BenchRecord,
}

/// Run `work` on a pascal machine with tracer + event log attached and
/// assemble the metrics document and bench record.
fn observed_run(workload: &str, work: impl FnOnce(&mut Machine)) -> ExperimentRun {
    let pf = platform::intel_pascal();
    let mut m = Machine::new(pf.clone());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::new()));
    m.add_hook(log.clone());
    let t0 = Instant::now();
    work(&mut m);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let elapsed = m.elapsed_ns();
    let allocs = xplacer_core::summarize(&tracer.borrow().smt, false);
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    let log = log.borrow();
    let metrics = metrics_report(
        workload,
        pf.name,
        elapsed,
        &m.stats,
        &allocs,
        Some(&report),
        Some(&log),
    );
    ExperimentRun {
        metrics,
        bench: BenchRecord::from_run(workload, elapsed, &m.stats, wall_ms),
    }
}

/// The canonical observed run backing experiment `name`, or `None` for
/// experiments with no single representative workload (e.g. the API demo
/// or the wall-clock overhead table).
pub fn experiment_metrics(name: &str) -> Option<Json> {
    experiment_run(name).map(|r| r.metrics)
}

/// Like [`experiment_metrics`], but also returns the bench record. The
/// record's `name` is rewritten to the experiment name so per-experiment
/// `BENCH_<name>.json` files are self-identifying.
pub fn experiment_run(name: &str) -> Option<ExperimentRun> {
    let mut run = experiment_workload_run(name)?;
    run.bench.name = name.to_string();
    Some(run)
}

fn experiment_workload_run(name: &str) -> Option<ExperimentRun> {
    match name {
        "fig04_lulesh_diagnostic" | "fig05_lulesh_maps" | "fig06_lulesh_speedup" => {
            Some(observed_run("lulesh", |m| {
                let _ = w::lulesh::run_lulesh(
                    m,
                    w::lulesh::LuleshConfig::new(8, 8),
                    w::lulesh::LuleshVariant::Baseline,
                );
            }))
        }
        "fig07_sw_init_maps" | "fig08_sw_diag_maps" | "fig09_sw_speedup" => {
            Some(observed_run("smith-waterman", |m| {
                let _ = w::smith_waterman::run_sw(
                    m,
                    w::smith_waterman::SwConfig::square(128),
                    w::smith_waterman::SwVariant::Baseline,
                );
            }))
        }
        "fig10_pathfinder_maps" | "fig11_pathfinder_speedup" => {
            Some(observed_run("pathfinder", |m| {
                let _ = w::rodinia::pathfinder::run_pathfinder(
                    m,
                    w::rodinia::pathfinder::PathfinderConfig::new(512, 101, 20),
                    w::rodinia::pathfinder::PathfinderVariant::Baseline,
                );
            }))
        }
        "table2_rodinia_findings" => Some(observed_run("backprop", |m| {
            let _ = w::rodinia::backprop::run_backprop(
                m,
                w::rodinia::backprop::BackpropConfig::new(1024),
            );
        })),
        "ablation_page_size" => Some(observed_run("gaussian", |m| {
            let _ = w::rodinia::gaussian::run_gaussian(
                m,
                w::rodinia::gaussian::GaussianConfig::new(48),
            );
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_metrics_document_is_complete_and_deterministic() {
        let a = experiment_metrics("fig04_lulesh_diagnostic").unwrap();
        let b = experiment_metrics("fig04_lulesh_diagnostic").unwrap();
        assert_eq!(a.to_string_pretty(), b.to_string_pretty());
        assert!(
            a.get("stats")
                .unwrap()
                .get("kernel_launches")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
        assert!(a.get("events").is_some());
        assert!(a.get("report").is_some());
    }

    #[test]
    fn experiments_without_a_canonical_run_yield_none() {
        assert!(experiment_metrics("table1_api").is_none());
        assert!(experiment_metrics("table3_overhead").is_none());
    }
}
