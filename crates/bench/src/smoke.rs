//! The `--smoke` bench fingerprint as a library routine, so tests can run
//! it into scratch directories and assert byte-stability.
//!
//! Smoke mode writes, per experiment, the canonical observed run's
//! `<name>.metrics.json` and `BENCH_<name>.json`, plus the aggregate
//! `BENCH_smoke.json` the CI regression gate diffs. Wall-clock time is
//! zeroed in these records: the smoke fingerprint is purely simulated, so
//! every file is byte-identical across runs and machines (`bench compare`
//! treats wall time as informational only and never gates on it).

use std::fs;
use std::path::Path;

use crate::bench_json::BenchRecord;
use crate::metrics_dump;

/// Experiments in canonical order. Keep this the single source of the
/// ordering: full and smoke modes iterate the same list, so both agree on
/// names and sequence.
pub fn experiment_names() -> Vec<&'static str> {
    vec![
        "table1_api",
        "fig04_lulesh_diagnostic",
        "fig05_lulesh_maps",
        "fig06_lulesh_speedup",
        "fig07_sw_init_maps",
        "fig08_sw_diag_maps",
        "fig09_sw_speedup",
        "fig10_pathfinder_maps",
        "fig11_pathfinder_speedup",
        "table2_rodinia_findings",
        "table3_overhead",
        "ablation_page_size",
    ]
}

/// Run every experiment's canonical observed run and write the smoke
/// fingerprint files into `outdir` (created if needed). Returns the
/// per-experiment records in canonical order.
pub fn run_smoke(outdir: &Path) -> std::io::Result<Vec<BenchRecord>> {
    fs::create_dir_all(outdir)?;
    let mut records = Vec::new();
    for name in experiment_names() {
        if let Some(mut run) = metrics_dump::experiment_run(name) {
            run.bench.wall_ms = 0.0;
            fs::write(
                outdir.join(format!("{name}.metrics.json")),
                format!("{}\n", run.metrics.to_string_pretty()),
            )?;
            fs::write(
                outdir.join(format!("BENCH_{name}.json")),
                format!("{}\n", run.bench.to_json().to_string_pretty()),
            )?;
            records.push(run.bench);
        }
    }
    let agg = BenchRecord::aggregate("smoke", &records);
    fs::write(
        outdir.join("BENCH_smoke.json"),
        format!("{}\n", agg.to_json().to_string_pretty()),
    )?;
    Ok(records)
}
