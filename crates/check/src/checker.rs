//! The sanitizer hook: a [`MemHook`] that maintains per-byte shadow
//! state and happens-before vector clocks as the machine runs.
//!
//! The machine validates every access *before* invoking hooks, so the
//! per-access work here is what the machine cannot decide on its own:
//! uninitialized-read detection, initialization tracking, and race
//! bookkeeping. Hard faults (out-of-bounds, use-after-free, ...) abort
//! the run as [`hetsim::SimError`]s and are classified by the driver in
//! `lib.rs`, which reads this hook's context (current site, current
//! kernel, shadow heap) to attribute them.

use std::collections::{BTreeSet, HashMap};

use hetsim::{AccessKind, Addr, AllocKind, CopyKind, Device, MemHook, StreamId};

use crate::race::{AccessInfo, LocState, VectorClocks, HOST};
use crate::report::{AllocInfo, CheckReport, DefectClass, Diagnostic};
use crate::shadow::{AllocRecord, ShadowHeap, Site};

/// Race-tracking granularity for managed memory: the UM driver moves
/// pages, so unordered accesses anywhere in one page are a transfer-level
/// hazard. Unmanaged memory is tracked at exact element offsets —
/// neighboring slices of one `cudaMalloc` buffer are routinely touched by
/// overlapped copies and kernels (pathfinder's chunked transfer), and
/// page granularity would flag those as false shares.
const PAGE: u64 = 4096;

/// The kernel the machine is currently executing, from the launch hook.
#[derive(Debug, Clone)]
struct KernelCtx {
    name: String,
    seq: u64,
    stream: usize,
}

/// The checking [`MemHook`]. Attach to a machine, run, then harvest
/// findings with [`take_findings`](CheckHook::take_findings).
#[derive(Default)]
pub struct CheckHook {
    shadow: ShadowHeap,
    vc: VectorClocks,
    /// Per-(allocation, bucket) access history.
    locs: HashMap<(u64, u64), LocState>,
    findings: Vec<Diagnostic>,
    cur_site: Option<Site>,
    kernel: Option<KernelCtx>,
    /// Dedup: (serial, prior actor, current actor, prior is write,
    /// current is write) — one diagnostic per conflicting pair.
    seen_races: BTreeSet<(u64, usize, usize, bool, bool)>,
    /// Dedup: (serial, site, kernel) — one diagnostic per read site.
    seen_uninit: BTreeSet<(u64, Option<Site>, Option<String>)>,
}

fn alloc_info(r: &AllocRecord) -> AllocInfo {
    AllocInfo {
        name: r.name(),
        base: r.base,
        size: r.size,
        kind: r.kind_str(),
    }
}

fn verb(write: bool) -> &'static str {
    if write {
        "write"
    } else {
        "read"
    }
}

/// Human description of a remembered access, for race messages.
fn who(a: &AccessInfo) -> String {
    let mut s = match (a.epoch.actor, &a.kernel) {
        (HOST, _) => "the host".to_string(),
        (n, Some(k)) => format!("kernel `{k}` on stream {}", n - 1),
        (n, None) => format!("stream {}", n - 1),
    };
    if let Some((l, c)) = a.site {
        s.push_str(&format!(" at {l}:{c}"));
    }
    s
}

impl CheckHook {
    pub fn new() -> Self {
        Self::default()
    }

    /// The source position of the statement being executed, if known.
    pub fn cur_site(&self) -> Option<Site> {
        self.cur_site
    }

    /// `(name, launch seq, stream)` of the kernel being executed.
    pub fn kernel_ctx(&self) -> Option<(String, u64, usize)> {
        self.kernel
            .as_ref()
            .map(|k| (k.name.clone(), k.seq, k.stream))
    }

    pub fn shadow(&self) -> &ShadowHeap {
        &self.shadow
    }

    /// Deterministic digest of the full shadow state (the bulk-vs-per-word
    /// parity oracle).
    pub fn shadow_digest(&self) -> u64 {
        self.shadow.digest()
    }

    pub fn take_findings(&mut self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.findings)
    }

    /// Append a finding produced outside the hook (the driver's fatal
    /// classification).
    pub fn push_finding(&mut self, d: Diagnostic) {
        self.findings.push(d);
    }

    /// Move the findings into a report for `target`.
    pub fn into_report(&mut self, target: &str) -> CheckReport {
        let mut r = CheckReport::new(target);
        r.findings = self.take_findings();
        r
    }

    /// The actor performing plain accesses right now.
    fn actor(&self) -> usize {
        match &self.kernel {
            Some(k) => 1 + k.stream,
            None => HOST,
        }
    }

    fn diag(&self, class: DefectClass, message: String, alloc: Option<AllocInfo>) -> Diagnostic {
        Diagnostic {
            class,
            message,
            site: self.cur_site,
            kernel: self.kernel.as_ref().map(|k| k.name.clone()),
            launch_seq: self.kernel.as_ref().map(|k| k.seq),
            stream: self.kernel.as_ref().map(|k| k.stream),
            alloc,
            fatal: false,
        }
    }

    fn report_uninit(&mut self, serial: u64, alloc: &AllocInfo, off: u64, size: u64, first: u64) {
        let key = (
            serial,
            self.cur_site,
            self.kernel.as_ref().map(|k| k.name.clone()),
        );
        if !self.seen_uninit.insert(key) {
            return;
        }
        let d = self.diag(
            DefectClass::UninitRead,
            format!(
                "read of {size} bytes at {}+{off} touches uninitialized data \
                 (byte offset {first} was never written)",
                alloc.name
            ),
            Some(alloc.clone()),
        );
        self.findings.push(d);
    }

    /// The bucket an access at `off` belongs to for race tracking.
    fn bucket(kind: AllocKind, off: u64) -> u64 {
        match kind {
            AllocKind::Managed => off / PAGE * PAGE,
            _ => off,
        }
    }

    /// Record an access at (`serial`, `bucket`) by `actor` and report the
    /// first conflict with an unordered prior access.
    fn race_at(&mut self, serial: u64, bucket: u64, write: bool, actor: usize, alloc: &AllocInfo) {
        let info = AccessInfo {
            epoch: self.vc.epoch(actor),
            write,
            kernel: self.kernel.as_ref().map(|k| k.name.clone()),
            site: self.cur_site,
        };
        let conflict = self
            .locs
            .entry((serial, bucket))
            .or_default()
            .access(&mut self.vc, info);
        let Some(prev) = conflict else { return };
        let key = (serial, prev.epoch.actor, actor, prev.write, write);
        if !self.seen_races.insert(key) {
            return;
        }
        let mut d = self.diag(
            DefectClass::Race,
            format!(
                "unordered {} to {}+{bucket} conflicts with a {} by {}",
                verb(write),
                alloc.name,
                verb(prev.write),
                who(&prev)
            ),
            Some(alloc.clone()),
        );
        // A host-side access still races on behalf of no kernel; keep the
        // WHERE column honest when the racing access is the host's.
        if actor == HOST {
            d.kernel = None;
            d.launch_seq = None;
            d.stream = None;
        }
        self.findings.push(d);
    }

    /// One validated scalar access: uninit check, init marking, race
    /// bookkeeping. The machine has already ruled out hard faults.
    fn handle_access(&mut self, addr: Addr, size: u64, kind: AccessKind) {
        let Some(rec) = self.shadow.find_mut(addr) else {
            return; // defensive: never panic inside the hook
        };
        let serial = rec.serial;
        let akind = rec.kind;
        let off = addr - rec.base;
        let uninit = if kind.reads() {
            rec.first_uninit(off, size)
        } else {
            None
        };
        if kind.writes() {
            rec.mark_init(off, size);
        }
        let alloc = alloc_info(rec);
        if let Some(u) = uninit {
            self.report_uninit(serial, &alloc, off, size, u);
        }
        let actor = self.actor();
        if kind.reads() {
            self.race_at(serial, Self::bucket(akind, off), false, actor, &alloc);
        }
        if kind.writes() {
            self.race_at(serial, Self::bucket(akind, off), true, actor, &alloc);
        }
    }

    /// Leak pass for program exit: every still-live allocation is a
    /// finding. Workload harnesses skip this (their drivers free nothing
    /// by design); MiniCU programs own their heap.
    pub fn finish_leaks(&mut self) {
        let mut live: Vec<&AllocRecord> = self.shadow.live().collect();
        live.sort_by_key(|r| r.serial);
        let diags: Vec<Diagnostic> = live
            .iter()
            .map(|r| Diagnostic {
                class: DefectClass::Leak,
                message: format!(
                    "{} bytes allocated{} and never freed",
                    r.size,
                    match r.alloc_site {
                        Some((l, c)) => format!(" at {l}:{c}"),
                        None => String::new(),
                    }
                ),
                site: r.alloc_site,
                kernel: None,
                launch_seq: None,
                stream: None,
                alloc: Some(alloc_info(r)),
                fatal: false,
            })
            .collect();
        self.findings.extend(diags);
    }
}

impl MemHook for CheckHook {
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind) {
        self.shadow.on_alloc(base, size, kind, self.cur_site);
    }

    fn on_free(&mut self, base: Addr) {
        self.shadow.on_free(base, self.cur_site);
    }

    fn on_alloc_label(&mut self, base: Addr, label: &str) {
        self.shadow.set_label(base, label);
    }

    fn on_site(&mut self, line: u32, col: u32) {
        self.cur_site = Some((line, col));
    }

    fn on_read(&mut self, _dev: Device, addr: Addr, size: u32) {
        self.handle_access(addr, size as u64, AccessKind::Read);
    }

    fn on_write(&mut self, _dev: Device, addr: Addr, size: u32) {
        self.handle_access(addr, size as u64, AccessKind::Write);
    }

    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        // Mirror the trait's default decomposition so the per-word and
        // bulk paths agree on the read-then-write order.
        self.on_read(dev, addr, size);
        self.on_write(dev, addr, size);
    }

    /// The bulk fast path: one vectorized shadow scan over the whole
    /// range, bit-identical in findings and final shadow state to the
    /// per-word decomposition (`tests/check.rs` proves it byte-for-byte).
    fn on_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        if count == 0 {
            return;
        }
        let es = elem_size as u64;
        let len = es * count;
        let covered = self
            .shadow
            .find(addr)
            .is_some_and(|r| addr + len <= r.end());
        if !covered {
            // A range the shadow heap cannot see whole (the machine would
            // have faulted first; defensive): per-element fallback.
            for i in 0..count {
                self.handle_access(addr + i * es, es, kind);
            }
            return;
        }
        let rec = self.shadow.find_mut(addr).expect("covered range");
        let serial = rec.serial;
        let akind = rec.kind;
        let off = addr - rec.base;
        // Vectorized uninit scan: one pass over the shadow slice instead
        // of `count` element probes. The first dirty byte identifies the
        // same element the per-word walk would have flagged first.
        let uninit = if kind.reads() {
            rec.first_uninit(off, len)
        } else {
            None
        };
        if kind.writes() {
            rec.mark_init(off, len);
        }
        let alloc = alloc_info(rec);
        if let Some(u) = uninit {
            let eoff = off + (u - off) / es * es;
            self.report_uninit(serial, &alloc, eoff, es, u);
        }
        // Race updates, reads before writes (the per-element order for an
        // RMW range), visiting buckets ascending exactly as the per-word
        // walk does. Repeated same-epoch updates to one bucket are
        // idempotent, so once per bucket suffices.
        let actor = self.actor();
        for write in [false, true] {
            if (write && !kind.writes()) || (!write && !kind.reads()) {
                continue;
            }
            match akind {
                AllocKind::Managed => {
                    for p in (off / PAGE)..=((off + len - 1) / PAGE) {
                        self.race_at(serial, p * PAGE, write, actor, &alloc);
                    }
                }
                _ => {
                    for i in 0..count {
                        self.race_at(serial, off + i * es, write, actor, &alloc);
                    }
                }
            }
        }
        let _ = dev;
    }

    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) {
        self.on_memcpy_ctx(dst, src, bytes, kind, StreamId(0), true);
    }

    fn on_memcpy_ctx(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        _kind: CopyKind,
        stream: StreamId,
        blocking: bool,
    ) {
        if bytes == 0 {
            return;
        }
        let actor = if blocking { HOST } else { 1 + stream.0 };
        if !blocking {
            // An async copy is ordered after everything the host did —
            // the same release edge a kernel launch creates.
            self.vc.edge(HOST, actor);
        }
        // Initialization propagates byte-for-byte from source to
        // destination; an unknown source conservatively initializes.
        let src_shadow: Option<(u64, AllocKind, AllocInfo, Vec<u8>)> =
            self.shadow.find(src).map(|r| {
                let o = src - r.base;
                let hi = (o + bytes).min(r.size);
                (
                    o,
                    r.kind,
                    alloc_info(r),
                    r.shadow[o as usize..hi as usize].to_vec(),
                )
            });
        let src_serial = self.shadow.find(src).map(|r| r.serial);
        if let Some(d) = self.shadow.find_mut(dst) {
            let o = (dst - d.base) as usize;
            match &src_shadow {
                Some((_, _, _, sv)) => {
                    for (i, b) in sv.iter().enumerate() {
                        if o + i < d.shadow.len() {
                            d.shadow[o + i] = *b;
                        }
                    }
                }
                None => d.mark_init(o as u64, bytes),
            }
        }
        // Race bookkeeping: the copy reads its source and writes its
        // destination. Unmanaged buckets step by 4 bytes — the finest
        // element alignment MiniCU and the workloads use — so copy ranges
        // land on the same keys as the element accesses they race with.
        let sweep = |this: &mut Self, serial, akind, off0, info: &AllocInfo, write| match akind {
            AllocKind::Managed => {
                for p in (off0 / PAGE)..=((off0 + bytes - 1) / PAGE) {
                    this.race_at(serial, p * PAGE, write, actor, info);
                }
            }
            _ => {
                let mut o = off0;
                while o < off0 + bytes {
                    this.race_at(serial, o, write, actor, info);
                    o += 4;
                }
            }
        };
        if let (Some(serial), Some((off0, akind, info, _))) = (src_serial, &src_shadow) {
            sweep(self, serial, *akind, *off0, info, false);
        }
        let dst_rec = self
            .shadow
            .find(dst)
            .map(|r| (r.serial, r.kind, dst - r.base, alloc_info(r)));
        if let Some((serial, akind, off0, info)) = dst_rec {
            sweep(self, serial, akind, off0, &info, true);
        }
    }

    fn on_kernel_launch(&mut self, name: &str) {
        self.on_kernel_launch_ctx(name, StreamId(0), 0);
    }

    fn on_kernel_launch_ctx(&mut self, name: &str, stream: StreamId, seq: u64) {
        self.vc.edge(HOST, 1 + stream.0);
        self.kernel = Some(KernelCtx {
            name: name.to_string(),
            seq,
            stream: stream.0,
        });
    }

    fn on_kernel_end_ctx(&mut self, _name: &str, stream: StreamId, blocking: bool) {
        if blocking {
            self.vc.edge(1 + stream.0, HOST);
        }
        self.kernel = None;
    }

    fn on_stream_sync(&mut self, stream: StreamId) {
        self.vc.edge(1 + stream.0, HOST);
    }

    fn on_device_sync(&mut self) {
        for a in 1..self.vc.actors() {
            self.vc.edge(a, HOST);
        }
    }

    /// Harness pokes are input setup: they initialize but never race.
    fn on_debug_write(&mut self, addr: Addr, bytes: u64) {
        if let Some(r) = self.shadow.find_mut(addr) {
            let off = addr - r.base;
            r.mark_init(off, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn managed_alloc(h: &mut CheckHook, base: Addr, size: u64, name: &str) {
        h.on_alloc(base, size, AllocKind::Managed);
        h.on_alloc_label(base, name);
    }

    #[test]
    fn uninit_read_is_reported_once_per_site() {
        let mut h = CheckHook::new();
        h.on_alloc(0x1000, 64, AllocKind::Host);
        h.on_site(4, 3);
        h.on_write(Device::Cpu, 0x1000, 8);
        h.on_read(Device::Cpu, 0x1000, 8); // initialized: clean
        h.on_site(5, 3);
        h.on_read(Device::Cpu, 0x1008, 8); // uninitialized
        h.on_read(Device::Cpu, 0x1010, 8); // same site: deduped
        let f = h.take_findings();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].class, DefectClass::UninitRead);
        assert_eq!(f[0].site, Some((5, 3)));
        assert!(f[0].message.contains("byte offset 8"), "{}", f[0].message);
    }

    #[test]
    fn unordered_stream_writes_race() {
        let mut h = CheckHook::new();
        managed_alloc(&mut h, 0x4000, 4096, "arr");
        h.on_debug_write(0x4000, 4096);
        h.on_kernel_launch_ctx("k1", StreamId(1), 1);
        h.on_write(Device::GPU0, 0x4000, 8);
        h.on_kernel_end_ctx("k1", StreamId(1), false);
        h.on_kernel_launch_ctx("k2", StreamId(2), 2);
        h.on_write(Device::GPU0, 0x4010, 8); // same page, unordered
        h.on_kernel_end_ctx("k2", StreamId(2), false);
        let f = h.take_findings();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].class, DefectClass::Race);
        assert_eq!(f[0].kernel.as_deref(), Some("k2"));
        assert!(
            f[0].message.contains("kernel `k1` on stream 1"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn stream_sync_suppresses_the_race() {
        let mut h = CheckHook::new();
        managed_alloc(&mut h, 0x4000, 4096, "arr");
        h.on_debug_write(0x4000, 4096);
        h.on_kernel_launch_ctx("k1", StreamId(1), 1);
        h.on_write(Device::GPU0, 0x4000, 8);
        h.on_kernel_end_ctx("k1", StreamId(1), false);
        h.on_stream_sync(StreamId(1));
        h.on_kernel_launch_ctx("k2", StreamId(2), 2);
        h.on_write(Device::GPU0, 0x4010, 8);
        h.on_kernel_end_ctx("k2", StreamId(2), false);
        assert!(h.take_findings().is_empty());
    }

    #[test]
    fn host_read_races_with_pending_kernel_write() {
        let mut h = CheckHook::new();
        managed_alloc(&mut h, 0x4000, 4096, "arr");
        h.on_debug_write(0x4000, 4096);
        h.on_kernel_launch_ctx("k", StreamId(1), 1);
        h.on_write(Device::GPU0, 0x4000, 8);
        h.on_kernel_end_ctx("k", StreamId(1), false);
        h.on_read(Device::Cpu, 0x4000, 8); // no sync: racy
        let f = h.take_findings();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].class, DefectClass::Race);
        assert!(f[0].kernel.is_none(), "host access: {f:?}");
    }

    #[test]
    fn device_sync_orders_everything() {
        let mut h = CheckHook::new();
        managed_alloc(&mut h, 0x4000, 4096, "arr");
        h.on_debug_write(0x4000, 4096);
        h.on_kernel_launch_ctx("k", StreamId(1), 1);
        h.on_write(Device::GPU0, 0x4000, 8);
        h.on_kernel_end_ctx("k", StreamId(1), false);
        h.on_device_sync();
        h.on_read(Device::Cpu, 0x4000, 8);
        assert!(h.take_findings().is_empty());
    }

    #[test]
    fn unmanaged_neighbors_do_not_false_share() {
        // Async copy into one slice while a kernel reads another slice of
        // the same cudaMalloc buffer: the pathfinder overlap pattern.
        let mut h = CheckHook::new();
        h.on_alloc(0x8000, 8192, AllocKind::Device(0));
        h.on_debug_write(0x8000, 8192);
        h.on_kernel_launch_ctx("k", StreamId(2), 1);
        h.on_read(Device::GPU0, 0x8000, 4);
        h.on_kernel_end_ctx("k", StreamId(2), false);
        h.on_memcpy_ctx(
            0x8000 + 4096,
            0x8000,
            0,
            CopyKind::HostToDevice,
            StreamId(1),
            false,
        );
        // Disjoint offsets, exact-offset buckets: no race.
        h.on_memcpy_ctx(
            0x9000,
            0x8000 + 2048,
            16,
            CopyKind::DeviceToDevice,
            StreamId(1),
            false,
        );
        let f = h.take_findings();
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn memcpy_propagates_initialization() {
        let mut h = CheckHook::new();
        h.on_alloc(0x1000, 64, AllocKind::Host);
        h.on_alloc(0x4000, 64, AllocKind::Device(0));
        h.on_write(Device::Cpu, 0x1000, 32); // init first half of src
        h.on_memcpy_ctx(
            0x4000,
            0x1000,
            64,
            CopyKind::HostToDevice,
            StreamId(0),
            true,
        );
        h.on_kernel_launch_ctx("k", StreamId(0), 1);
        h.on_read(Device::GPU0, 0x4000, 32); // copied-from-initialized: clean
        h.on_read(Device::GPU0, 0x4020, 8); // copied-from-uninitialized
        h.on_kernel_end_ctx("k", StreamId(0), true);
        let f = h.take_findings();
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].class, DefectClass::UninitRead);
    }

    #[test]
    fn leaks_surface_in_serial_order() {
        let mut h = CheckHook::new();
        h.on_site(2, 1);
        h.on_alloc(0x4000, 128, AllocKind::Managed);
        h.on_alloc_label(0x4000, "b");
        h.on_site(3, 1);
        h.on_alloc(0x1000, 64, AllocKind::Host);
        h.on_alloc_label(0x1000, "a");
        h.finish_leaks();
        let f = h.take_findings();
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].alloc.as_ref().unwrap().name, "b");
        assert_eq!(f[0].site, Some((2, 1)));
        assert_eq!(f[1].alloc.as_ref().unwrap().name, "a");
    }

    #[test]
    fn bulk_range_matches_per_word_byte_for_byte() {
        let run = |bulk: bool| -> (Vec<Diagnostic>, u64) {
            let mut h = CheckHook::new();
            managed_alloc(&mut h, 0x4000, 8192, "arr");
            h.on_site(7, 2);
            // Partially initialize, then a read range over the seam.
            h.on_access_range(Device::Cpu, 0x4000, 8, 100, AccessKind::Write);
            let read = |h: &mut CheckHook| {
                if bulk {
                    h.on_access_range(Device::Cpu, 0x4000, 8, 120, AccessKind::Read);
                    h.on_access_range(Device::GPU0, 0x4100, 4, 32, AccessKind::ReadWrite);
                } else {
                    for i in 0..120 {
                        h.on_read(Device::Cpu, 0x4000 + i * 8, 8);
                    }
                    for i in 0..32 {
                        h.on_read_write(Device::GPU0, 0x4100 + i * 4, 4);
                    }
                }
            };
            read(&mut h);
            (h.take_findings(), h.shadow_digest())
        };
        let (fb, db) = run(true);
        let (fw, dw) = run(false);
        assert_eq!(fb, fw);
        assert_eq!(db, dw);
        assert_eq!(fb.len(), 1, "{fb:?}");
        assert_eq!(fb[0].class, DefectClass::UninitRead);
    }
}
