//! `xplacer check`: a memory sanitizer and cross-stream race detector
//! for MiniCU programs and the built-in workloads.
//!
//! The checker is a [`MemHook`](hetsim::MemHook) riding the same seam the
//! XPlacer tracer uses (`crates/hetsim/src/hook.rs`): every allocation,
//! access, copy, launch, and synchronization the machine performs also
//! drives a per-byte shadow heap ([`shadow`]) and a happens-before vector
//! clock model ([`race`]). Defects surface two ways:
//!
//! - **Non-fatal findings** (uninitialized reads, unordered cross-stream
//!   conflicts, leaks at exit) accumulate while the program runs.
//! - **Fatal faults** (out-of-bounds, use-after-free, double free, bad
//!   copy directions, ...) abort the run inside the machine; the driver
//!   classifies the structured [`SimError`] and attributes it with the
//!   hook's last-seen source site, kernel context, and nearest-allocation
//!   lookup — at most one fatal diagnostic per run, always last.
//!
//! Reports render as a table or as the `xplacer-check/1` JSON document;
//! both are byte-deterministic for a given input.

pub mod checker;
pub mod race;
pub mod report;
pub mod shadow;

use std::cell::RefCell;
use std::rc::Rc;

use hetsim::{Machine, Platform, SimError};

pub use checker::CheckHook;
pub use report::{AllocInfo, CheckReport, DefectClass, Diagnostic, SCHEMA};

/// Knobs for one `check` run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Use the machine's bulk range fast path (`false` forces the
    /// per-word fallback; findings must be identical either way).
    pub bulk: bool,
    /// Keep at most this many findings (0 = all).
    pub max_errors: usize,
    pub platform: Platform,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            bulk: true,
            max_errors: 0,
            platform: hetsim::platform::intel_pascal(),
        }
    }
}

/// Everything one check run produced.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    pub report: CheckReport,
    /// The checked program's own stdout (empty when it trapped).
    pub stdout: String,
    /// The program's exit value, when it ran to completion.
    pub program_exit: Option<i64>,
    /// Parity oracle: digest of the final shadow state.
    pub shadow_digest: u64,
}

/// Check a MiniCU source. Leaked allocations at exit are findings here
/// (the program owns its heap); workload harnesses use
/// [`check_workload`], which skips the leak pass.
pub fn check_source(target: &str, src: &str, opts: &CheckOptions) -> Result<CheckOutcome, String> {
    let mut machine = Machine::new(opts.platform.clone());
    machine.set_bulk_enabled(opts.bulk);
    let hook = Rc::new(RefCell::new(CheckHook::new()));
    machine.attach_hook(hook.clone());
    let run = xplacer_interp::run_source_on(src, machine, false);
    let mut h = hook.borrow_mut();
    let (stdout, program_exit) = match run {
        Ok((outcome, _interp)) => {
            h.finish_leaks();
            (outcome.stdout, Some(outcome.exit))
        }
        Err(e) => match &e.sim {
            Some(sim) => {
                let d = classify_fatal(sim, &h);
                h.push_finding(d);
                (String::new(), None)
            }
            // Not a program defect (parse error, unsupported construct):
            // a usage-level failure, not a finding.
            None => return Err(e.message),
        },
    };
    let mut report = h.into_report(target);
    report.truncate(opts.max_errors);
    Ok(CheckOutcome {
        report,
        stdout,
        program_exit,
        shadow_digest: h.shadow_digest(),
    })
}

/// Check a built-in workload by name. The workload's allocation-name
/// table labels the shadow records, so findings carry `gpuWall`-style
/// names instead of `alloc#N`.
pub fn check_workload(target: &str, opts: &CheckOptions) -> Result<CheckOutcome, String> {
    let mut machine = Machine::new(opts.platform.clone());
    machine.set_bulk_enabled(opts.bulk);
    let hook = Rc::new(RefCell::new(CheckHook::new()));
    machine.attach_hook(hook.clone());
    let (check, _names) =
        xplacer_workloads::driver::run_workload(&mut machine, target, |m, names| {
            let names: Vec<(hetsim::Addr, String)> = names.to_vec();
            for (addr, name) in &names {
                m.note_alloc_label(*addr, name);
            }
        })?;
    let mut h = hook.borrow_mut();
    let mut report = h.into_report(target);
    report.truncate(opts.max_errors);
    Ok(CheckOutcome {
        report,
        stdout: format!("check value: {check}\n"),
        program_exit: Some(0),
        shadow_digest: h.shadow_digest(),
    })
}

/// Map a machine trap to its defect class, attributed with the hook's
/// execution context and shadow heap.
fn classify_fatal(sim: &SimError, h: &CheckHook) -> Diagnostic {
    let shadow = h.shadow();
    let info = |addr| {
        shadow.attribute(addr).map(|r| AllocInfo {
            name: r.name(),
            base: r.base,
            size: r.size,
            kind: r.kind_str(),
        })
    };
    let site_str = |s: Option<shadow::Site>| match s {
        Some((l, c)) => format!(" at {l}:{c}"),
        None => String::new(),
    };
    let (class, message, alloc) = match sim {
        SimError::Unallocated { addr } => {
            let alloc = shadow.attribute(*addr);
            let msg = match alloc {
                Some(r) if *addr >= r.end() => format!(
                    "access at 0x{addr:x} lands {} bytes past the end of {} ({} bytes)",
                    addr - r.end() + 1,
                    r.name(),
                    r.size
                ),
                Some(r) if *addr < r.base => format!(
                    "access at 0x{addr:x} lands {} bytes before the start of {}",
                    r.base - addr,
                    r.name()
                ),
                _ => format!("access to unallocated address 0x{addr:x}"),
            };
            (DefectClass::OutOfBounds, msg, info(*addr))
        }
        SimError::OutOfBounds { addr, size } => {
            let msg = match shadow.attribute(*addr) {
                Some(r) => format!(
                    "access of {size} bytes at {}+{} runs past the end of the \
                     {}-byte allocation",
                    r.name(),
                    addr.saturating_sub(r.base),
                    r.size
                ),
                None => format!("access of {size} bytes at 0x{addr:x} runs out of bounds"),
            };
            (DefectClass::OutOfBounds, msg, info(*addr))
        }
        SimError::UseAfterFree { addr } => {
            let msg = match shadow.find_dead(*addr) {
                Some(r) => format!(
                    "use of {}+{} after free{}",
                    r.name(),
                    addr - r.base,
                    site_str(r.free_site)
                ),
                None => format!("use after free at 0x{addr:x}"),
            };
            (DefectClass::UseAfterFree, msg, info(*addr))
        }
        SimError::DoubleFree { base } => {
            let msg = match shadow.find_dead_base(*base) {
                Some(r) => format!(
                    "double free of {} (first freed{})",
                    r.name(),
                    site_str(r.free_site)
                ),
                None => format!("double free of 0x{base:x}"),
            };
            (DefectClass::DoubleFree, msg, info(*base))
        }
        SimError::BadFree { addr } => {
            let msg = match shadow.attribute(*addr) {
                Some(r) if r.contains(*addr) => format!(
                    "free of {}+{}, which is not the allocation base",
                    r.name(),
                    addr - r.base
                ),
                _ => format!("free of 0x{addr:x}, which is not an allocation base"),
            };
            (DefectClass::BadFree, msg, info(*addr))
        }
        SimError::BadCopyDirection { dst, src } => {
            let name = |a| {
                shadow
                    .attribute(a)
                    .map(|r| format!("{} ({})", r.name(), r.kind_str()))
                    .unwrap_or_else(|| format!("0x{a:x}"))
            };
            (
                DefectClass::BadCopyDirection,
                format!(
                    "memcpy direction does not match its operands: dst {}, src {}",
                    name(*dst),
                    name(*src)
                ),
                info(*dst),
            )
        }
        SimError::IllegalAccess { device, addr } => (
            DefectClass::Other,
            format!("{device} has no access path to 0x{addr:x}"),
            info(*addr),
        ),
        SimError::AdviseOnUnmanaged { addr } => (
            DefectClass::Other,
            format!("cudaMemAdvise on non-managed memory at 0x{addr:x}"),
            info(*addr),
        ),
        SimError::OutOfMemory { requested } => (
            DefectClass::Other,
            format!("simulated address space exhausted ({requested} bytes requested)"),
            None,
        ),
    };
    let kernel = h.kernel_ctx();
    Diagnostic {
        class,
        message,
        site: h.cur_site(),
        kernel: kernel.as_ref().map(|(n, _, _)| n.clone()),
        launch_seq: kernel.as_ref().map(|(_, s, _)| *s),
        stream: kernel.as_ref().map(|(_, _, s)| *s),
        alloc,
        fatal: true,
    }
}
