//! Happens-before race detection with vector clocks.
//!
//! Actors are the host (actor 0) and each stream (actor `1 + s`). Edges
//! come from the operations that order work in CUDA's model:
//!
//! - a kernel launch (or async memcpy) *releases* the host clock to its
//!   stream — everything the host did before the launch happens-before
//!   the kernel's accesses;
//! - a blocking completion (synchronous launch, `cudaStreamSynchronize`,
//!   `cudaDeviceSynchronize`, blocking memcpy) joins the stream's clock
//!   back into the host.
//!
//! Accesses are stamped with their actor's current epoch; two accesses
//! to the same location race when neither epoch happens-before the
//! other and at least one is a write (the FastTrack formulation, with a
//! full read set instead of the read-epoch optimization — clarity over
//! constant factors at simulation scale).

use crate::shadow::Site;

/// The host actor index. Stream `s` is actor `1 + s`.
pub const HOST: usize = 0;

/// A scalar timestamp: `clk`-th epoch of `actor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    pub actor: usize,
    pub clk: u32,
}

/// Per-actor vector clocks.
#[derive(Debug, Default)]
pub struct VectorClocks {
    clocks: Vec<Vec<u32>>,
}

impl VectorClocks {
    pub fn new() -> Self {
        VectorClocks {
            clocks: vec![vec![1]],
        }
    }

    fn ensure(&mut self, actor: usize) {
        let n = (actor + 1).max(self.clocks.len());
        for c in &mut self.clocks {
            if c.len() < n {
                c.resize(n, 0);
            }
        }
        while self.clocks.len() < n {
            // Epochs are 1-based: component `i` of everyone else's clock
            // starts at 0 ("never heard from actor i"), strictly below
            // actor i's first epoch.
            let i = self.clocks.len();
            let mut c = vec![0; n];
            c[i] = 1;
            self.clocks.push(c);
        }
    }

    pub fn actors(&self) -> usize {
        self.clocks.len()
    }

    /// The current epoch of `actor` (what its next access is stamped with).
    pub fn epoch(&mut self, actor: usize) -> Epoch {
        self.ensure(actor);
        Epoch {
            actor,
            clk: self.clocks[actor][actor],
        }
    }

    /// Release/acquire edge: everything `from` did so far happens-before
    /// everything `to` does next. `from` then enters a new epoch, so its
    /// *later* work stays unordered with `to`.
    pub fn edge(&mut self, from: usize, to: usize) {
        self.ensure(from.max(to));
        let msg = self.clocks[from].clone();
        for (d, s) in self.clocks[to].iter_mut().zip(msg.iter()) {
            *d = (*d).max(*s);
        }
        self.clocks[from][from] += 1;
    }

    /// Does the access stamped `e` happen before the present of `actor`?
    pub fn hb(&mut self, e: Epoch, actor: usize) -> bool {
        if e.actor == actor {
            return true; // program order
        }
        self.ensure(actor.max(e.actor));
        e.clk <= self.clocks[actor][e.actor]
    }
}

/// One remembered access to a location, with reporting breadcrumbs.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    pub epoch: Epoch,
    pub write: bool,
    pub kernel: Option<String>,
    pub site: Option<Site>,
}

/// FastTrack-style per-location state: the last write plus the read set
/// since that write.
#[derive(Debug, Default, Clone)]
pub struct LocState {
    pub last_write: Option<AccessInfo>,
    pub reads: Vec<AccessInfo>,
}

impl LocState {
    /// Record an access and return the first conflicting prior access,
    /// if any (the caller dedups and reports).
    pub fn access(&mut self, vc: &mut VectorClocks, info: AccessInfo) -> Option<AccessInfo> {
        let mut conflict = None;
        if let Some(w) = &self.last_write {
            if !vc.hb(w.epoch, info.epoch.actor) {
                conflict = Some(w.clone());
            }
        }
        if info.write {
            if conflict.is_none() {
                conflict = self
                    .reads
                    .iter()
                    .find(|r| !vc.hb(r.epoch, info.epoch.actor))
                    .cloned();
            }
            self.last_write = Some(info);
            self.reads.clear();
        } else {
            match self
                .reads
                .iter_mut()
                .find(|r| r.epoch.actor == info.epoch.actor)
            {
                Some(slot) => *slot = info,
                None => self.reads.push(info),
            }
        }
        conflict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(epoch: Epoch, write: bool) -> AccessInfo {
        AccessInfo {
            epoch,
            write,
            kernel: None,
            site: None,
        }
    }

    #[test]
    fn launch_edge_orders_host_before_kernel() {
        let mut vc = VectorClocks::new();
        let mut loc = LocState::default();
        // Host writes, then launches on stream 1 (actor 2).
        let e0 = vc.epoch(HOST);
        assert!(loc.access(&mut vc, acc(e0, true)).is_none());
        vc.edge(HOST, 2);
        let e1 = vc.epoch(2);
        assert!(loc.access(&mut vc, acc(e1, true)).is_none(), "ordered");
    }

    #[test]
    fn two_unordered_streams_race() {
        let mut vc = VectorClocks::new();
        let mut loc = LocState::default();
        vc.edge(HOST, 1);
        let e1 = vc.epoch(1);
        assert!(loc.access(&mut vc, acc(e1, true)).is_none());
        // Second launch acquires the host clock, which never learned of
        // actor 1's write — unordered.
        vc.edge(HOST, 2);
        let e2 = vc.epoch(2);
        assert!(loc.access(&mut vc, acc(e2, true)).is_some(), "racy");
    }

    #[test]
    fn stream_sync_restores_order() {
        let mut vc = VectorClocks::new();
        let mut loc = LocState::default();
        vc.edge(HOST, 1);
        let e1 = vc.epoch(1);
        assert!(loc.access(&mut vc, acc(e1, true)).is_none());
        vc.edge(1, HOST); // cudaStreamSynchronize
        vc.edge(HOST, 2);
        let e2 = vc.epoch(2);
        assert!(loc.access(&mut vc, acc(e2, true)).is_none(), "synced");
    }

    #[test]
    fn host_read_races_with_async_write() {
        let mut vc = VectorClocks::new();
        let mut loc = LocState::default();
        vc.edge(HOST, 1);
        let e1 = vc.epoch(1);
        assert!(loc.access(&mut vc, acc(e1, true)).is_none());
        // Host reads before joining with the stream.
        let eh = vc.epoch(HOST);
        let c = loc.access(&mut vc, acc(eh, false));
        assert!(c.is_some_and(|c| c.write));
    }

    #[test]
    fn read_read_never_races() {
        let mut vc = VectorClocks::new();
        let mut loc = LocState::default();
        vc.edge(HOST, 1);
        let e1 = vc.epoch(1);
        assert!(loc.access(&mut vc, acc(e1, false)).is_none());
        let eh = vc.epoch(HOST);
        assert!(loc.access(&mut vc, acc(eh, false)).is_none());
    }
}
