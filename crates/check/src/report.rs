//! Check findings: diagnostic records, the rendered table, and the
//! `xplacer-check/1` JSON document.

use std::fmt::Write as _;

use xplacer_obs::Json;

use crate::shadow::Site;

/// JSON schema tag of the check report.
pub const SCHEMA: &str = "xplacer-check/1";

/// The defect classes the checker reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefectClass {
    OutOfBounds,
    UseAfterFree,
    DoubleFree,
    BadFree,
    UninitRead,
    Leak,
    BadCopyDirection,
    Race,
    /// Simulator faults outside the classes above (OOM, illegal access,
    /// advise on unmanaged memory, ...).
    Other,
}

impl DefectClass {
    pub fn key(self) -> &'static str {
        match self {
            DefectClass::OutOfBounds => "out-of-bounds",
            DefectClass::UseAfterFree => "use-after-free",
            DefectClass::DoubleFree => "double-free",
            DefectClass::BadFree => "bad-free",
            DefectClass::UninitRead => "uninit-read",
            DefectClass::Leak => "leak",
            DefectClass::BadCopyDirection => "bad-memcpy-direction",
            DefectClass::Race => "race",
            DefectClass::Other => "other",
        }
    }
}

/// The allocation a diagnostic points at.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocInfo {
    pub name: String,
    pub base: u64,
    pub size: u64,
    pub kind: &'static str,
}

/// One finding, with the breadcrumbs the tentpole demands: source span,
/// kernel / launch-seq / stream context, and the allocation involved.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub class: DefectClass,
    pub message: String,
    pub site: Option<Site>,
    pub kernel: Option<String>,
    pub launch_seq: Option<u64>,
    pub stream: Option<usize>,
    pub alloc: Option<AllocInfo>,
    /// Whether this finding aborted the program (machine trap) — at most
    /// one fatal diagnostic per run, and it is always the last.
    pub fatal: bool,
}

impl Diagnostic {
    fn site_str(&self) -> String {
        match self.site {
            Some((l, c)) => format!("{l}:{c}"),
            None => "-".to_string(),
        }
    }

    fn where_str(&self) -> String {
        match (&self.kernel, self.launch_seq, self.stream) {
            (Some(k), Some(seq), Some(s)) => format!("{k}#{seq}@s{s}"),
            (Some(k), _, _) => k.clone(),
            _ => "host".to_string(),
        }
    }

    fn alloc_str(&self) -> String {
        match &self.alloc {
            Some(a) => format!("{} ({}, {} B)", a.name, a.kind, a.size),
            None => "-".to_string(),
        }
    }

    fn to_json(&self) -> Json {
        let mut d = Json::obj();
        d.set("class", Json::Str(self.class.key().to_string()));
        d.set("message", Json::Str(self.message.clone()));
        d.set(
            "site",
            match self.site {
                Some((l, c)) => Json::Str(format!("{l}:{c}")),
                None => Json::Null,
            },
        );
        d.set(
            "kernel",
            match &self.kernel {
                Some(k) => Json::Str(k.clone()),
                None => Json::Null,
            },
        );
        d.set(
            "launch_seq",
            match self.launch_seq {
                Some(s) => Json::Num(s as f64),
                None => Json::Null,
            },
        );
        d.set(
            "stream",
            match self.stream {
                Some(s) => Json::Num(s as f64),
                None => Json::Null,
            },
        );
        d.set(
            "alloc",
            match &self.alloc {
                Some(a) => {
                    let mut o = Json::obj();
                    o.set("name", Json::Str(a.name.clone()));
                    o.set("base", Json::Num(a.base as f64));
                    o.set("size", Json::Num(a.size as f64));
                    o.set("kind", Json::Str(a.kind.to_string()));
                    o
                }
                None => Json::Null,
            },
        );
        d.set("fatal", Json::Bool(self.fatal));
        d
    }
}

/// A full check result for one target.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    pub target: String,
    pub findings: Vec<Diagnostic>,
    /// Findings dropped by `--max-errors`.
    pub truncated: usize,
}

impl CheckReport {
    pub fn new(target: &str) -> Self {
        CheckReport {
            target: target.to_string(),
            findings: Vec::new(),
            truncated: 0,
        }
    }

    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.truncated == 0
    }

    /// Keep only the first `n` findings (`n == 0` keeps all).
    pub fn truncate(&mut self, n: usize) {
        if n > 0 && self.findings.len() > n {
            self.truncated = self.findings.len() - n;
            self.findings.truncate(n);
        }
    }

    /// The `xplacer-check/1` document.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("schema", Json::Str(SCHEMA.to_string()));
        o.set("target", Json::Str(self.target.clone()));
        o.set("clean", Json::Bool(self.clean()));
        o.set(
            "findings",
            Json::Arr(self.findings.iter().map(|d| d.to_json()).collect()),
        );
        o.set("truncated", Json::Num(self.truncated as f64));
        o
    }

    /// The human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== xplacer check: {} ==", self.target);
        if self.clean() {
            let _ = writeln!(out, "clean: no memory or ordering defects detected");
            return out;
        }
        let rows: Vec<[String; 5]> = self
            .findings
            .iter()
            .map(|d| {
                [
                    d.class.key().to_string(),
                    d.site_str(),
                    d.where_str(),
                    d.alloc_str(),
                    d.message.clone(),
                ]
            })
            .collect();
        let head = ["CLASS", "SITE", "WHERE", "ALLOCATION", "MESSAGE"];
        let mut w = [0usize; 4];
        for i in 0..4 {
            w[i] = head[i].len();
            for r in &rows {
                w[i] = w[i].max(r[i].len());
            }
        }
        let _ = writeln!(
            out,
            "{:<w0$}  {:<w1$}  {:<w2$}  {:<w3$}  {}",
            head[0],
            head[1],
            head[2],
            head[3],
            head[4],
            w0 = w[0],
            w1 = w[1],
            w2 = w[2],
            w3 = w[3],
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<w0$}  {:<w1$}  {:<w2$}  {:<w3$}  {}",
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
                w0 = w[0],
                w1 = w[1],
                w2 = w[2],
                w3 = w[3],
            );
        }
        let n = self.findings.len() + self.truncated;
        let _ = writeln!(out, "{n} finding{}", if n == 1 { "" } else { "s" });
        if self.truncated > 0 {
            let _ = writeln!(out, "({} more suppressed by --max-errors)", self.truncated);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            class: DefectClass::OutOfBounds,
            message: "write of 8 bytes past the end".into(),
            site: Some((12, 5)),
            kernel: Some("bump".into()),
            launch_seq: Some(3),
            stream: Some(0),
            alloc: Some(AllocInfo {
                name: "p".into(),
                base: 0x10000,
                size: 800,
                kind: "managed",
            }),
            fatal: true,
        }
    }

    #[test]
    fn clean_report_renders_and_serializes() {
        let r = CheckReport::new("x.cu");
        assert!(r.clean());
        assert!(r.render().contains("clean"));
        let j = r.to_json();
        assert_eq!(j.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(j.get("clean").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn findings_appear_in_table_and_json() {
        let mut r = CheckReport::new("x.cu");
        r.findings.push(sample());
        let t = r.render();
        assert!(t.contains("out-of-bounds"));
        assert!(t.contains("12:5"));
        assert!(t.contains("bump#3@s0"));
        assert!(t.contains("p (managed, 800 B)"));
        let j = r.to_json();
        assert_eq!(j.get("clean").unwrap().as_bool(), Some(false));
        let Some(Json::Arr(f)) = j.get("findings") else {
            panic!("findings not an array");
        };
        assert_eq!(f[0].get("class").unwrap().as_str(), Some("out-of-bounds"));
        assert_eq!(f[0].get("site").unwrap().as_str(), Some("12:5"));
    }

    #[test]
    fn truncation_is_reported() {
        let mut r = CheckReport::new("x.cu");
        for _ in 0..5 {
            r.findings.push(sample());
        }
        r.truncate(2);
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.truncated, 3);
        assert!(!r.clean());
        assert!(r.render().contains("suppressed by --max-errors"));
    }
}
