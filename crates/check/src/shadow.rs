//! Per-byte shadow memory: the sanitizer's model of the heap.
//!
//! Every live allocation owns a shadow byte per data byte with two
//! states — `0` = allocated-but-uninitialized, `1` = initialized — the
//! Cudagrind/MemorySanitizer state machine restricted to the transitions
//! the simulator can drive. Unaddressable bytes need no third state:
//! they are exactly the bytes no record covers. Freed allocations stay
//! behind as tombstones so a later fault address can still be attributed
//! to the allocation it once belonged to.

use std::collections::BTreeMap;

use hetsim::{Addr, AllocKind};

/// A source position, 1-based `line:col`.
pub type Site = (u32, u32);

/// One allocation the checker has seen (live or freed).
#[derive(Debug, Clone)]
pub struct AllocRecord {
    /// 1-based allocation order — stable across runs.
    pub serial: u64,
    pub base: Addr,
    pub size: u64,
    pub kind: AllocKind,
    /// The receiving variable's name, when known.
    pub label: Option<String>,
    pub alloc_site: Option<Site>,
    /// Set when the allocation is freed (tombstones only).
    pub free_site: Option<Site>,
    pub freed: bool,
    /// One byte per data byte; `1` = initialized.
    pub shadow: Vec<u8>,
}

impl AllocRecord {
    /// Human name: the label when known, `alloc#N` otherwise.
    pub fn name(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => format!("alloc#{}", self.serial),
        }
    }

    pub fn kind_str(&self) -> &'static str {
        match self.kind {
            AllocKind::Host => "host",
            AllocKind::Managed => "managed",
            AllocKind::Device(_) => "device",
        }
    }

    pub fn end(&self) -> Addr {
        self.base + self.size
    }

    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// First offset in `[off, off+len)` whose byte is uninitialized.
    pub fn first_uninit(&self, off: u64, len: u64) -> Option<u64> {
        let lo = off.min(self.size) as usize;
        let hi = (off + len).min(self.size) as usize;
        self.shadow[lo..hi]
            .iter()
            .position(|b| *b == 0)
            .map(|i| off + i as u64)
    }

    /// Mark `[off, off+len)` initialized (clamped to the allocation).
    pub fn mark_init(&mut self, off: u64, len: u64) {
        let lo = off.min(self.size) as usize;
        let hi = (off + len).min(self.size) as usize;
        self.shadow[lo..hi].fill(1);
    }
}

/// The live heap plus tombstones, keyed for O(log n) address lookup.
#[derive(Debug, Default)]
pub struct ShadowHeap {
    live: BTreeMap<Addr, AllocRecord>,
    dead: Vec<AllocRecord>,
    next_serial: u64,
}

impl ShadowHeap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind, site: Option<Site>) {
        self.next_serial += 1;
        self.live.insert(
            base,
            AllocRecord {
                serial: self.next_serial,
                base,
                size,
                kind,
                label: None,
                alloc_site: site,
                free_site: None,
                freed: false,
                shadow: vec![0; size as usize],
            },
        );
    }

    /// Retire the allocation at `base` to a tombstone.
    pub fn on_free(&mut self, base: Addr, site: Option<Site>) {
        if let Some(mut r) = self.live.remove(&base) {
            r.freed = true;
            r.free_site = site;
            self.dead.push(r);
        }
    }

    pub fn set_label(&mut self, base: Addr, label: &str) {
        if let Some(r) = self.live.get_mut(&base) {
            r.label = Some(label.to_string());
        }
    }

    /// The live allocation containing `addr`, mutably.
    pub fn find_mut(&mut self, addr: Addr) -> Option<&mut AllocRecord> {
        let (_, r) = self.live.range_mut(..=addr).next_back()?;
        r.contains(addr).then_some(r)
    }

    /// The live allocation containing `addr`.
    pub fn find(&self, addr: Addr) -> Option<&AllocRecord> {
        let (_, r) = self.live.range(..=addr).next_back()?;
        r.contains(addr).then_some(r)
    }

    /// Live allocations in address order.
    pub fn live(&self) -> impl Iterator<Item = &AllocRecord> {
        self.live.values()
    }

    /// The tombstone whose range covered `addr`, most recent first.
    pub fn find_dead(&self, addr: Addr) -> Option<&AllocRecord> {
        self.dead.iter().rev().find(|r| r.contains(addr))
    }

    /// The most recently freed allocation with exactly this base (for
    /// double-free attribution).
    pub fn find_dead_base(&self, base: Addr) -> Option<&AllocRecord> {
        self.dead.iter().rev().find(|r| r.base == base)
    }

    /// Best-effort attribution of a fault address: the containing live
    /// allocation, else the containing tombstone, else the nearest record
    /// by distance (the allocation a small overflow ran past).
    pub fn attribute(&self, addr: Addr) -> Option<&AllocRecord> {
        if let Some(r) = self.find(addr) {
            return Some(r);
        }
        if let Some(r) = self.find_dead(addr) {
            return Some(r);
        }
        let dist = |r: &AllocRecord| -> u64 {
            if addr < r.base {
                r.base - addr
            } else {
                addr - r.end() + 1
            }
        };
        self.live
            .values()
            .chain(self.dead.iter())
            .min_by_key(|r| (dist(r), r.serial))
    }

    /// Deterministic FNV-1a digest over every record's identity and
    /// shadow bytes, live and freed, in serial order — the oracle the
    /// bulk-vs-per-word parity test compares.
    pub fn digest(&self) -> u64 {
        let mut all: Vec<&AllocRecord> = self.live.values().chain(self.dead.iter()).collect();
        all.sort_by_key(|r| r.serial);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for r in all {
            eat(&r.serial.to_le_bytes());
            eat(&r.base.to_le_bytes());
            eat(&r.size.to_le_bytes());
            eat(&[r.freed as u8]);
            eat(&r.shadow);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_tracks_init_state() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(0x1000, 64, AllocKind::Host, Some((3, 5)));
        let r = sh.find_mut(0x1010).unwrap();
        assert_eq!(r.first_uninit(0, 64), Some(0));
        r.mark_init(0, 8);
        assert_eq!(r.first_uninit(0, 8), None);
        assert_eq!(r.first_uninit(0, 9), Some(8));
    }

    #[test]
    fn free_leaves_a_tombstone() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(0x1000, 32, AllocKind::Managed, None);
        sh.on_free(0x1000, Some((9, 1)));
        assert!(sh.find(0x1000).is_none());
        let t = sh.find_dead(0x1010).unwrap();
        assert!(t.freed);
        assert_eq!(t.free_site, Some((9, 1)));
        assert_eq!(sh.find_dead_base(0x1000).unwrap().serial, 1);
    }

    #[test]
    fn attribute_picks_the_nearest_record() {
        let mut sh = ShadowHeap::new();
        sh.on_alloc(0x1000, 0x100, AllocKind::Host, None);
        sh.on_alloc(0x4000, 0x100, AllocKind::Host, None);
        // Just past the end of the first allocation.
        assert_eq!(sh.attribute(0x1100).unwrap().base, 0x1000);
        // Inside the second.
        assert_eq!(sh.attribute(0x4080).unwrap().base, 0x4000);
    }

    #[test]
    fn digest_changes_with_shadow_state() {
        let mut a = ShadowHeap::new();
        a.on_alloc(0x1000, 16, AllocKind::Host, None);
        let d0 = a.digest();
        a.find_mut(0x1000).unwrap().mark_init(0, 4);
        assert_ne!(a.digest(), d0);
    }
}
