//! Random well-typed MiniCU program generation.
//!
//! [`ArbProgram`] is a proptest [`Strategy`] over the `xplacer-lang` AST:
//! it emits programs mixing managed/host/device allocations, init loops,
//! kernel launches, `cudaMemcpy` in every legal direction,
//! `cudaMemAdvise`/`cudaMemPrefetchAsync`, an optional diagnostic pragma,
//! and partial frees — constructed so every run is deterministic,
//! terminating, and free of out-of-bounds accesses. Value expressions are
//! built with the vendored proptest's `prop_recursive`.
//!
//! Invariants the construction guarantees (the conformance oracle relies
//! on them, the interpreter would loudly report violations):
//! * every array has the same element count `n`, so any index of the form
//!   `i` or `(i + c) % n` with `0 <= i < n` is in bounds;
//! * host code only touches managed/host arrays, kernels only managed/
//!   device arrays, matching the simulator's `IllegalAccess` rules;
//! * memcpy direction constants agree with the operand allocation kinds;
//! * advise/prefetch only target managed arrays.

use proptest::{boxed, BoxedStrategy, Just, OneOf, Strategy, StrategyExt, TestRng};
use xplacer_lang::ast::*;

/// Where an array lives, deciding which side may touch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrKind {
    Managed,
    Host,
    Device,
}

impl ArrKind {
    fn host_visible(self) -> bool {
        matches!(self, ArrKind::Managed | ArrKind::Host)
    }
    fn gpu_visible(self) -> bool {
        matches!(self, ArrKind::Managed | ArrKind::Device)
    }
}

#[derive(Debug, Clone)]
struct ArrSpec {
    name: String,
    kind: ArrKind,
}

// ---------------------------------------------------------------------
// Small AST construction helpers.
// ---------------------------------------------------------------------

fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary(op, Box::new(l), Box::new(r))
}

fn assign(op: AssignOp, l: Expr, r: Expr) -> Expr {
    Expr::Assign(op, Box::new(l), Box::new(r))
}

fn index(arr: &str, idx: Expr) -> Expr {
    Expr::Index(Box::new(Expr::ident(arr)), Box::new(idx))
}

fn int(v: i64) -> Expr {
    Expr::IntLit(v)
}

/// `n * sizeof(int)` — the byte size of every generated array.
fn bytes_of(n: i64) -> Expr {
    bin(BinOp::Mul, int(n), Expr::SizeofType(Type::Int))
}

fn call_stmt(name: &str, args: Vec<Expr>) -> Stmt {
    Stmt::Expr(Expr::call(name, args), Span::default())
}

/// `for (int i = 0; i < n; i++) body`.
fn for_i(n: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(Box::new(Stmt::Decl(VarDecl {
            ty: Type::Int,
            name: "i".into(),
            init: Some(int(0)),
            span: Span::default(),
        }))),
        cond: Some(bin(BinOp::Lt, Expr::ident("i"), int(n))),
        step: Some(Expr::Postfix(PostOp::Inc, Box::new(Expr::ident("i")))),
        body,
    }
}

// ---------------------------------------------------------------------
// Expression strategies (combinator-built, depth-bounded).
// ---------------------------------------------------------------------

/// An in-bounds index: `i` or `(i + c) % <len>`.
fn index_expr(len: Expr) -> BoxedStrategy<Expr> {
    OneOf::new(vec![
        boxed(Just(Expr::ident("i"))),
        boxed((1i64..8).prop_map(move |c| {
            bin(
                BinOp::Rem,
                bin(BinOp::Add, Expr::ident("i"), int(c)),
                len.clone(),
            )
        })),
    ])
    .boxed()
}

/// Integer-valued expressions over `i`, literals, and reads of `arrays`
/// (each of length `len`). Division is excluded to keep every generated
/// program defined.
fn value_expr(arrays: Vec<String>, len: Expr) -> BoxedStrategy<Expr> {
    let mut leaves: Vec<Box<dyn Strategy<Value = Expr>>> = vec![
        boxed((0i64..16).prop_map(int)),
        boxed(Just(Expr::ident("i"))),
    ];
    for a in arrays {
        let l = len.clone();
        leaves.push(boxed(index_expr(l).prop_map(move |ix| index(&a, ix))));
    }
    let leaf = OneOf::new(leaves).boxed();
    leaf.prop_recursive(2, |inner| {
        const OPS: [BinOp; 3] = [BinOp::Add, BinOp::Sub, BinOp::Mul];
        OneOf::new(vec![
            boxed(inner.clone()),
            boxed((0usize..3, inner.clone(), inner).prop_map(|(k, l, r)| bin(OPS[k], l, r))),
        ])
        .boxed()
    })
}

/// One statement updating `dst[idx]` from a value expression.
fn update_stmt(dst: String, arrays: Vec<String>, len: Expr) -> BoxedStrategy<Stmt> {
    let v = value_expr(arrays, len.clone());
    let ix = index_expr(len);
    (0usize..3, ix, v)
        .prop_map(move |(k, ix, v)| {
            let lhs = index(&dst, ix);
            let op = [AssignOp::Set, AssignOp::Add, AssignOp::Sub][k];
            Stmt::Expr(assign(op, lhs, v), Span::default())
        })
        .boxed()
}

// ---------------------------------------------------------------------
// Program generation.
// ---------------------------------------------------------------------

/// Strategy emitting complete random MiniCU programs.
pub struct ArbProgram;

impl Strategy for ArbProgram {
    type Value = Program;
    fn generate(&self, rng: &mut TestRng) -> Program {
        gen_program(rng)
    }
}

/// Strategy emitting random MiniCU programs that are *checker-clean*:
/// every allocation is initialized before any read (device arrays via an
/// up-front H2D copy), every kernel launch is synchronized before the
/// host touches its data, and every allocation is freed on exit. The
/// `xplacer check` false-positive property quantifies over these.
pub struct CleanProgram;

impl Strategy for CleanProgram {
    type Value = Program;
    fn generate(&self, rng: &mut TestRng) -> Program {
        gen_clean_program(rng)
    }
}

/// `true` iff the program contains a `#pragma xpl diagnostic` (whose
/// `tracePrint` output only exists in instrumented runs, so plain-vs-
/// traced stdout comparison must be skipped).
pub fn has_diagnostic(prog: &Program) -> bool {
    fn stmt_has(s: &Stmt) -> bool {
        match s {
            Stmt::Pragma(XplPragma::Diagnostic { .. }) => true,
            Stmt::Block(b) => b.iter().any(stmt_has),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.iter().any(stmt_has) || else_branch.iter().any(stmt_has),
            Stmt::For { body, .. } | Stmt::While { body, .. } => body.iter().any(stmt_has),
            _ => false,
        }
    }
    prog.items.iter().any(|it| match it {
        Item::Pragma(XplPragma::Diagnostic { .. }) => true,
        Item::Func(f) => f
            .body
            .as_ref()
            .map(|b| b.iter().any(stmt_has))
            .unwrap_or(false),
        _ => false,
    })
}

fn pick<'a, T>(rng: &mut TestRng, xs: &'a [T]) -> &'a T {
    &xs[rng.below(xs.len() as u64) as usize]
}

fn gen_program(rng: &mut TestRng) -> Program {
    let n = 8 + rng.below(57) as i64; // element count, 8..=64
    let n_arrays = 1 + rng.below(3) as usize; // 1..=3

    // Array 0 is always managed so every program exercises UM paths.
    let mut arrays = Vec::new();
    for k in 0..n_arrays {
        let kind = if k == 0 {
            ArrKind::Managed
        } else {
            *pick(rng, &[ArrKind::Managed, ArrKind::Host, ArrKind::Device])
        };
        arrays.push(ArrSpec {
            name: format!("p{k}"),
            kind,
        });
    }
    let host_arrays: Vec<String> = arrays
        .iter()
        .filter(|a| a.kind.host_visible())
        .map(|a| a.name.clone())
        .collect();
    let gpu_arrays: Vec<String> = arrays
        .iter()
        .filter(|a| a.kind.gpu_visible())
        .map(|a| a.name.clone())
        .collect();

    let mut kernels: Vec<Func> = Vec::new();
    let mut body: Vec<Stmt> = Vec::new();

    // Declarations + allocations.
    for a in &arrays {
        body.push(Stmt::Decl(VarDecl {
            ty: Type::Int.ptr(),
            name: a.name.clone(),
            init: None,
            span: Span::default(),
        }));
        let out_arg = Expr::Cast(
            Type::Void.ptr().ptr(),
            Box::new(Expr::Unary(UnOp::Addr, Box::new(Expr::ident(&a.name)))),
        );
        match a.kind {
            ArrKind::Managed => {
                body.push(call_stmt("cudaMallocManaged", vec![out_arg, bytes_of(n)]));
            }
            ArrKind::Device => {
                body.push(call_stmt("cudaMalloc", vec![out_arg, bytes_of(n)]));
            }
            ArrKind::Host => {
                body.push(Stmt::Expr(
                    assign(
                        AssignOp::Set,
                        Expr::ident(&a.name),
                        Expr::Cast(
                            Type::Int.ptr(),
                            Box::new(Expr::call("malloc", vec![bytes_of(n)])),
                        ),
                    ),
                    Span::default(),
                ));
            }
        }
    }

    // Initialize host-visible arrays.
    for a in &host_arrays {
        let init = value_expr(Vec::new(), int(n)).generate(rng);
        body.push(for_i(
            n,
            vec![Stmt::Expr(
                assign(AssignOp::Set, index(a, Expr::ident("i")), init),
                Span::default(),
            )],
        ));
    }

    // 1..=6 operations.
    let n_ops = 1 + rng.below(6);
    for _ in 0..n_ops {
        match rng.below(8) {
            // Host compute loop (weighted: two arms).
            0..=1 => {
                if host_arrays.is_empty() {
                    continue;
                }
                let dst = pick(rng, &host_arrays).clone();
                let stmt = update_stmt(dst, host_arrays.clone(), int(n)).generate(rng);
                body.push(for_i(n, vec![stmt]));
            }
            // Kernel launch (weighted: three arms).
            2..=4 => {
                if gpu_arrays.is_empty() {
                    continue;
                }
                let ka = pick(rng, &gpu_arrays).clone();
                let kb = pick(rng, &gpu_arrays).clone();
                let name = format!("k{}", kernels.len());
                let n_stmts = 1 + rng.below(2);
                let mut kbody = Vec::new();
                for _ in 0..n_stmts {
                    kbody.push(
                        update_stmt("a".into(), vec!["a".into(), "b".into()], Expr::ident("n"))
                            .generate(rng),
                    );
                }
                kernels.push(Func {
                    qualifiers: vec![Qualifier::Global],
                    ret: Type::Void,
                    name: name.clone(),
                    params: vec![
                        Param {
                            ty: Type::Int.ptr(),
                            name: "a".into(),
                        },
                        Param {
                            ty: Type::Int.ptr(),
                            name: "b".into(),
                        },
                        Param {
                            ty: Type::Int,
                            name: "n".into(),
                        },
                    ],
                    body: Some(vec![
                        Stmt::Decl(VarDecl {
                            ty: Type::Int,
                            name: "i".into(),
                            init: Some(bin(
                                BinOp::Add,
                                Expr::Member(Box::new(Expr::ident("threadIdx")), "x".into(), false),
                                bin(
                                    BinOp::Mul,
                                    Expr::Member(
                                        Box::new(Expr::ident("blockIdx")),
                                        "x".into(),
                                        false,
                                    ),
                                    Expr::Member(
                                        Box::new(Expr::ident("blockDim")),
                                        "x".into(),
                                        false,
                                    ),
                                ),
                            )),
                            span: Span::default(),
                        }),
                        Stmt::If {
                            cond: bin(BinOp::Lt, Expr::ident("i"), Expr::ident("n")),
                            then_branch: kbody,
                            else_branch: vec![],
                        },
                    ]),
                });
                body.push(Stmt::Expr(
                    Expr::KernelLaunch {
                        name,
                        grid: Box::new(int((n + 31) / 32)),
                        block: Box::new(int(32)),
                        shmem: None,
                        stream: None,
                        args: vec![Expr::ident(&ka), Expr::ident(&kb), int(n)],
                    },
                    Span::default(),
                ));
                body.push(call_stmt("cudaDeviceSynchronize", vec![]));
            }
            // Memcpy in a direction legal for the operand kinds.
            5 => {
                let mut pairs = Vec::new();
                for d in &arrays {
                    for s in &arrays {
                        if d.name == s.name {
                            continue;
                        }
                        for (code, src_ok, dst_ok) in [
                            (
                                0i64,
                                ArrKind::host_visible as fn(ArrKind) -> bool,
                                ArrKind::host_visible as fn(ArrKind) -> bool,
                            ),
                            (1, ArrKind::host_visible, ArrKind::gpu_visible),
                            (2, ArrKind::gpu_visible, ArrKind::host_visible),
                            (3, ArrKind::gpu_visible, ArrKind::gpu_visible),
                        ] {
                            if src_ok(s.kind) && dst_ok(d.kind) {
                                pairs.push((d.name.clone(), s.name.clone(), code));
                            }
                        }
                    }
                }
                if pairs.is_empty() {
                    continue;
                }
                let (d, s, code) = pick(rng, &pairs).clone();
                body.push(call_stmt(
                    "cudaMemcpy",
                    vec![Expr::ident(&d), Expr::ident(&s), bytes_of(n), int(code)],
                ));
            }
            // Advise on a managed array.
            6 => {
                let managed: Vec<&ArrSpec> = arrays
                    .iter()
                    .filter(|a| a.kind == ArrKind::Managed)
                    .collect();
                let a = pick(rng, &managed);
                let advice = 1 + rng.below(6) as i64;
                let dev = if rng.below(2) == 0 {
                    int(0)
                } else {
                    Expr::Unary(UnOp::Neg, Box::new(int(1)))
                };
                body.push(call_stmt(
                    "cudaMemAdvise",
                    vec![Expr::ident(&a.name), bytes_of(n), int(advice), dev],
                ));
            }
            // Prefetch a managed array.
            _ => {
                let managed: Vec<&ArrSpec> = arrays
                    .iter()
                    .filter(|a| a.kind == ArrKind::Managed)
                    .collect();
                let a = pick(rng, &managed);
                let dev = if rng.below(2) == 0 {
                    int(0)
                } else {
                    Expr::Unary(UnOp::Neg, Box::new(int(1)))
                };
                body.push(call_stmt(
                    "cudaMemPrefetchAsync",
                    vec![Expr::ident(&a.name), bytes_of(n), dev],
                ));
            }
        }
    }

    // Optional diagnostic point (paper Fig. 4): only meaningful traced.
    if rng.below(3) == 0 {
        body.push(Stmt::Pragma(XplPragma::Diagnostic {
            func: "tracePrint".into(),
            verbatim: vec!["out".into()],
            expanded: vec![arrays[0].name.clone()],
        }));
    }

    // Checksum over host-visible arrays; becomes stdout + exit code.
    body.push(Stmt::Decl(VarDecl {
        ty: Type::Int,
        name: "acc".into(),
        init: Some(int(0)),
        span: Span::default(),
    }));
    for a in &host_arrays {
        body.push(for_i(
            n,
            vec![Stmt::Expr(
                assign(
                    AssignOp::Add,
                    Expr::ident("acc"),
                    index(a, Expr::ident("i")),
                ),
                Span::default(),
            )],
        ));
    }
    body.push(call_stmt(
        "printf",
        vec![Expr::StrLit("acc=%d\n".into()), Expr::ident("acc")],
    ));

    // Partial frees: leaving some allocations live exercises the
    // unused/leaked-allocation reporting paths.
    for a in &arrays {
        if rng.below(4) == 0 {
            continue;
        }
        let f = if a.kind == ArrKind::Host {
            "free"
        } else {
            "cudaFree"
        };
        body.push(call_stmt(f, vec![Expr::ident(&a.name)]));
    }

    body.push(Stmt::Return(Some(bin(
        BinOp::Rem,
        Expr::ident("acc"),
        int(251),
    ))));

    let mut items: Vec<Item> = kernels.into_iter().map(Item::Func).collect();
    items.push(Item::Func(Func {
        qualifiers: vec![],
        ret: Type::Int,
        name: "main".into(),
        params: vec![],
        body: Some(body),
    }));
    Program { items }
}

/// The kernel shape shared by both generators: `a[i] (op)= f(a, b)` under
/// an `i < n` guard.
fn gen_kernel(rng: &mut TestRng, name: &str) -> Func {
    let n_stmts = 1 + rng.below(2);
    let mut kbody = Vec::new();
    for _ in 0..n_stmts {
        kbody.push(
            update_stmt("a".into(), vec!["a".into(), "b".into()], Expr::ident("n")).generate(rng),
        );
    }
    Func {
        qualifiers: vec![Qualifier::Global],
        ret: Type::Void,
        name: name.to_string(),
        params: vec![
            Param {
                ty: Type::Int.ptr(),
                name: "a".into(),
            },
            Param {
                ty: Type::Int.ptr(),
                name: "b".into(),
            },
            Param {
                ty: Type::Int,
                name: "n".into(),
            },
        ],
        body: Some(vec![
            Stmt::Decl(VarDecl {
                ty: Type::Int,
                name: "i".into(),
                init: Some(bin(
                    BinOp::Add,
                    Expr::Member(Box::new(Expr::ident("threadIdx")), "x".into(), false),
                    bin(
                        BinOp::Mul,
                        Expr::Member(Box::new(Expr::ident("blockIdx")), "x".into(), false),
                        Expr::Member(Box::new(Expr::ident("blockDim")), "x".into(), false),
                    ),
                )),
                span: Span::default(),
            }),
            Stmt::If {
                cond: bin(BinOp::Lt, Expr::ident("i"), Expr::ident("n")),
                then_branch: kbody,
                else_branch: vec![],
            },
        ]),
    }
}

fn gen_clean_program(rng: &mut TestRng) -> Program {
    let n = 8 + rng.below(57) as i64; // element count, 8..=64
    let n_arrays = 1 + rng.below(3) as usize; // 1..=3

    let mut arrays = Vec::new();
    for k in 0..n_arrays {
        let kind = if k == 0 {
            ArrKind::Managed
        } else {
            *pick(rng, &[ArrKind::Managed, ArrKind::Host, ArrKind::Device])
        };
        arrays.push(ArrSpec {
            name: format!("p{k}"),
            kind,
        });
    }
    let host_arrays: Vec<String> = arrays
        .iter()
        .filter(|a| a.kind.host_visible())
        .map(|a| a.name.clone())
        .collect();
    let gpu_arrays: Vec<String> = arrays
        .iter()
        .filter(|a| a.kind.gpu_visible())
        .map(|a| a.name.clone())
        .collect();

    let mut kernels: Vec<Func> = Vec::new();
    let mut body: Vec<Stmt> = Vec::new();

    // Declarations + allocations (same shapes as gen_program).
    for a in &arrays {
        body.push(Stmt::Decl(VarDecl {
            ty: Type::Int.ptr(),
            name: a.name.clone(),
            init: None,
            span: Span::default(),
        }));
        let out_arg = Expr::Cast(
            Type::Void.ptr().ptr(),
            Box::new(Expr::Unary(UnOp::Addr, Box::new(Expr::ident(&a.name)))),
        );
        match a.kind {
            ArrKind::Managed => {
                body.push(call_stmt("cudaMallocManaged", vec![out_arg, bytes_of(n)]));
            }
            ArrKind::Device => {
                body.push(call_stmt("cudaMalloc", vec![out_arg, bytes_of(n)]));
            }
            ArrKind::Host => {
                body.push(Stmt::Expr(
                    assign(
                        AssignOp::Set,
                        Expr::ident(&a.name),
                        Expr::Cast(
                            Type::Int.ptr(),
                            Box::new(Expr::call("malloc", vec![bytes_of(n)])),
                        ),
                    ),
                    Span::default(),
                ));
            }
        }
    }

    // Initialize every host-visible array on the host ...
    for a in &host_arrays {
        let init = value_expr(Vec::new(), int(n)).generate(rng);
        body.push(for_i(
            n,
            vec![Stmt::Expr(
                assign(AssignOp::Set, index(a, Expr::ident("i")), init),
                Span::default(),
            )],
        ));
    }
    // ... and every device array via an up-front H2D copy, so no read
    // anywhere can touch uninitialized bytes (`host_arrays` is never
    // empty: array 0 is always managed).
    for a in &arrays {
        if a.kind == ArrKind::Device {
            let src = pick(rng, &host_arrays).clone();
            body.push(call_stmt(
                "cudaMemcpy",
                vec![
                    Expr::ident(&a.name),
                    Expr::ident(&src),
                    bytes_of(n),
                    int(1), // HostToDevice
                ],
            ));
        }
    }

    // One stream for the async-launch arm, synchronized after every use.
    body.push(Stmt::Decl(VarDecl {
        ty: Type::Int,
        name: "s0".into(),
        init: None,
        span: Span::default(),
    }));
    body.push(call_stmt(
        "cudaStreamCreate",
        vec![Expr::Unary(UnOp::Addr, Box::new(Expr::ident("s0")))],
    ));

    // 1..=6 operations, each leaving the program ordered and initialized.
    let n_ops = 1 + rng.below(6);
    for _ in 0..n_ops {
        match rng.below(8) {
            // Host compute loop.
            0..=1 => {
                let dst = pick(rng, &host_arrays).clone();
                let stmt = update_stmt(dst, host_arrays.clone(), int(n)).generate(rng);
                body.push(for_i(n, vec![stmt]));
            }
            // Synchronous kernel launch + device sync.
            2..=3 => {
                let ka = pick(rng, &gpu_arrays).clone();
                let kb = pick(rng, &gpu_arrays).clone();
                let name = format!("k{}", kernels.len());
                kernels.push(gen_kernel(rng, &name));
                body.push(Stmt::Expr(
                    Expr::KernelLaunch {
                        name,
                        grid: Box::new(int((n + 31) / 32)),
                        block: Box::new(int(32)),
                        shmem: None,
                        stream: None,
                        args: vec![Expr::ident(&ka), Expr::ident(&kb), int(n)],
                    },
                    Span::default(),
                ));
                body.push(call_stmt("cudaDeviceSynchronize", vec![]));
            }
            // Async launch on the stream, synchronized immediately.
            4 => {
                let ka = pick(rng, &gpu_arrays).clone();
                let kb = pick(rng, &gpu_arrays).clone();
                let name = format!("k{}", kernels.len());
                kernels.push(gen_kernel(rng, &name));
                body.push(Stmt::Expr(
                    Expr::KernelLaunch {
                        name,
                        grid: Box::new(int((n + 31) / 32)),
                        block: Box::new(int(32)),
                        shmem: Some(Box::new(int(0))),
                        stream: Some(Box::new(Expr::ident("s0"))),
                        args: vec![Expr::ident(&ka), Expr::ident(&kb), int(n)],
                    },
                    Span::default(),
                ));
                body.push(call_stmt("cudaStreamSynchronize", vec![Expr::ident("s0")]));
            }
            // Memcpy in a direction legal for the operand kinds.
            5 => {
                let mut pairs = Vec::new();
                for d in &arrays {
                    for s in &arrays {
                        if d.name == s.name {
                            continue;
                        }
                        for (code, src_ok, dst_ok) in [
                            (
                                0i64,
                                ArrKind::host_visible as fn(ArrKind) -> bool,
                                ArrKind::host_visible as fn(ArrKind) -> bool,
                            ),
                            (1, ArrKind::host_visible, ArrKind::gpu_visible),
                            (2, ArrKind::gpu_visible, ArrKind::host_visible),
                            (3, ArrKind::gpu_visible, ArrKind::gpu_visible),
                        ] {
                            if src_ok(s.kind) && dst_ok(d.kind) {
                                pairs.push((d.name.clone(), s.name.clone(), code));
                            }
                        }
                    }
                }
                if pairs.is_empty() {
                    continue;
                }
                let (d, s, code) = pick(rng, &pairs).clone();
                body.push(call_stmt(
                    "cudaMemcpy",
                    vec![Expr::ident(&d), Expr::ident(&s), bytes_of(n), int(code)],
                ));
            }
            // Advise on a managed array.
            6 => {
                let managed: Vec<&ArrSpec> = arrays
                    .iter()
                    .filter(|a| a.kind == ArrKind::Managed)
                    .collect();
                let a = pick(rng, &managed);
                let advice = 1 + rng.below(6) as i64;
                let dev = if rng.below(2) == 0 {
                    int(0)
                } else {
                    Expr::Unary(UnOp::Neg, Box::new(int(1)))
                };
                body.push(call_stmt(
                    "cudaMemAdvise",
                    vec![Expr::ident(&a.name), bytes_of(n), int(advice), dev],
                ));
            }
            // Prefetch a managed array.
            _ => {
                let managed: Vec<&ArrSpec> = arrays
                    .iter()
                    .filter(|a| a.kind == ArrKind::Managed)
                    .collect();
                let a = pick(rng, &managed);
                let dev = if rng.below(2) == 0 {
                    int(0)
                } else {
                    Expr::Unary(UnOp::Neg, Box::new(int(1)))
                };
                body.push(call_stmt(
                    "cudaMemPrefetchAsync",
                    vec![Expr::ident(&a.name), bytes_of(n), dev],
                ));
            }
        }
    }

    // Checksum over host-visible arrays; becomes stdout + exit code.
    body.push(Stmt::Decl(VarDecl {
        ty: Type::Int,
        name: "acc".into(),
        init: Some(int(0)),
        span: Span::default(),
    }));
    for a in &host_arrays {
        body.push(for_i(
            n,
            vec![Stmt::Expr(
                assign(
                    AssignOp::Add,
                    Expr::ident("acc"),
                    index(a, Expr::ident("i")),
                ),
                Span::default(),
            )],
        ));
    }
    body.push(call_stmt(
        "printf",
        vec![Expr::StrLit("acc=%d\n".into()), Expr::ident("acc")],
    ));

    // Clean exit: destroy the stream and free *everything*.
    body.push(call_stmt("cudaStreamDestroy", vec![Expr::ident("s0")]));
    for a in &arrays {
        let f = if a.kind == ArrKind::Host {
            "free"
        } else {
            "cudaFree"
        };
        body.push(call_stmt(f, vec![Expr::ident(&a.name)]));
    }

    body.push(Stmt::Return(Some(bin(
        BinOp::Rem,
        Expr::ident("acc"),
        int(251),
    ))));

    let mut items: Vec<Item> = kernels.into_iter().map(Item::Func).collect();
    items.push(Item::Func(Func {
        qualifiers: vec![],
        ret: Type::Int,
        name: "main".into(),
        params: vec![],
        body: Some(body),
    }));
    Program { items }
}
