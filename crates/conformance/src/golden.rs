//! Canonical deterministic runs rendered as stable text documents for the
//! golden-snapshot oracle, plus the lockstep runner for the workload
//! sweep.

use std::cell::RefCell;
use std::rc::Rc;

use hetsim::{platform, EventLog, Machine};
use xplacer_core::{analyze, attach_tracer, summarize, AnalysisConfig};
use xplacer_obs::ProfileReport;
use xplacer_workloads as w;

use crate::refmodel::LockstepHook;

/// The 8 workloads of the reproduction, in canonical order, with the
/// configurations the golden snapshots and lockstep sweep pin down.
pub const WORKLOADS: [&str; 8] = [
    "lulesh",
    "smith_waterman",
    "pathfinder",
    "backprop",
    "gaussian",
    "cfd",
    "lud",
    "nn",
];

/// Run workload `name` at its canonical conformance configuration.
/// Configurations follow the `reproduce_all --smoke` canonicals where
/// those exist and the integration-test sizes otherwise.
pub fn run_workload(m: &mut Machine, name: &str) {
    match name {
        "lulesh" => {
            let _ = w::lulesh::run_lulesh(
                m,
                w::lulesh::LuleshConfig::new(8, 8),
                w::lulesh::LuleshVariant::Baseline,
            );
        }
        "smith_waterman" => {
            let _ = w::smith_waterman::run_sw(
                m,
                w::smith_waterman::SwConfig::square(128),
                w::smith_waterman::SwVariant::Baseline,
            );
        }
        "pathfinder" => {
            let _ = w::rodinia::pathfinder::run_pathfinder(
                m,
                w::rodinia::pathfinder::PathfinderConfig::new(512, 101, 20),
                w::rodinia::pathfinder::PathfinderVariant::Baseline,
            );
        }
        "backprop" => {
            let _ = w::rodinia::backprop::run_backprop(
                m,
                w::rodinia::backprop::BackpropConfig::new(1024),
            );
        }
        "gaussian" => {
            let _ = w::rodinia::gaussian::run_gaussian(
                m,
                w::rodinia::gaussian::GaussianConfig::new(48),
            );
        }
        "cfd" => {
            let _ = w::rodinia::cfd::run_cfd(m, w::rodinia::cfd::CfdConfig::new(256, 8));
        }
        "lud" => {
            let _ = w::rodinia::lud::run_lud(m, w::rodinia::lud::LudConfig::new(64));
        }
        "nn" => {
            let _ = w::rodinia::nn::run_nn(m, w::rodinia::nn::NnConfig::new(1024));
        }
        other => panic!("unknown conformance workload {other}"),
    }
}

/// Run `name` with tracer + event log attached and render the canonical
/// golden document: simulator counters, anti-pattern report, and the
/// cost-attribution profile table.
pub fn workload_doc(name: &str) -> String {
    let pf = platform::intel_pascal();
    let mut m = Machine::new(pf.clone());
    let tracer = attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::new()));
    m.add_hook(log.clone());
    run_workload(&mut m, name);
    let elapsed = m.elapsed_ns();
    let tr = tracer.borrow();
    let report = analyze(&tr.smt, &AnalysisConfig::default());
    let names: Vec<(u64, String)> = summarize(&tr.smt, false)
        .into_iter()
        .map(|a| (a.base, a.name))
        .collect();
    let profile = ProfileReport::build(name, pf.name, elapsed, &log.borrow(), &names);
    format!(
        "workload: {name}\nplatform: {}\n\n== stats ==\n{}\n== report ==\n{}\n== profile ==\n{}",
        pf.name,
        m.stats.summary(),
        report.render(),
        profile.render_table(12),
    )
}

/// Run workload `name` with the bulk fast path on or off and render a
/// fingerprint covering everything the fast path could perturb: simulated
/// time (bit-exact), simulator counters, the full timed event stream,
/// shadow-flag bytes of every SMT entry, and the rendered anti-pattern
/// report. `workload_bulk_fingerprint(n, true)` must equal
/// `workload_bulk_fingerprint(n, false)` for every workload — the bulk
/// path is an optimisation, never an observable behaviour change.
pub fn workload_bulk_fingerprint(name: &str, bulk: bool) -> String {
    let pf = platform::intel_pascal();
    let mut m = Machine::new(pf);
    m.set_bulk_enabled(bulk);
    let tracer = attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::new()));
    m.add_hook(log.clone());
    run_workload(&mut m, name);
    let mut doc = format!(
        "workload: {name}\nelapsed_bits: {:#018x}\n\n== stats ==\n{}",
        m.elapsed_ns().to_bits(),
        m.stats.summary(),
    );
    let log = log.borrow();
    doc.push_str(&format!(
        "\n== events ({} recorded, {} dropped) ==\n",
        log.total_recorded(),
        log.dropped()
    ));
    for ev in log.events() {
        doc.push_str(&format!(
            "t={:#018x} cost={:#018x} {:?} {:?}\n",
            ev.t_ns.to_bits(),
            ev.cost_ns.to_bits(),
            ev.ctx,
            ev.event
        ));
    }
    let tr = tracer.borrow();
    doc.push_str("\n== shadow ==\n");
    for e in tr.smt.iter() {
        doc.push_str(&format!("{:#x}+{} live={} ", e.base, e.size, e.live));
        for w in &e.shadow {
            doc.push_str(&format!("{:02x}", w.0));
        }
        doc.push('\n');
    }
    let report = analyze(&tr.smt, &AnalysisConfig::default());
    doc.push_str(&format!("\n== report ==\n{}", report.render()));
    doc
}

/// Run mini-CUDA source traced and render its golden document: exit code,
/// program stdout (including `tracePrint` diagnostics), every collected
/// report, the final whole-heap report, and the simulator counters.
pub fn mini_doc(label: &str, src: &str) -> Result<String, String> {
    let (out, interp) = xplacer_interp::run_source(src, platform::intel_pascal(), true)
        .map_err(|e| format!("{label}: {e}"))?;
    let mut doc = format!(
        "program: {label}\nexit: {}\n\n== stdout ==\n{}",
        out.exit, out.stdout
    );
    for (i, r) in interp.reports.iter().enumerate() {
        doc.push_str(&format!(
            "\n== diagnostic report {} ==\n{}",
            i + 1,
            r.render()
        ));
    }
    let fin = analyze(&interp.tracer.smt, &AnalysisConfig::default());
    doc.push_str(&format!(
        "\n== final report ==\n{}\n== stats ==\n{}",
        fin.render(),
        out.stats.summary()
    ));
    Ok(doc)
}

/// Outcome of one lockstep workload run.
pub struct LockstepResult {
    pub divergences: Vec<String>,
    pub checked_accesses: u64,
    pub checked_events: u64,
    pub checked_ranges: u64,
}

/// Run workload `name` with a [`LockstepHook`] attached (alongside the
/// tracer, as in production) and cross-check every driver action against
/// the reference model, including final page states.
pub fn lockstep_workload(name: &str) -> LockstepResult {
    lockstep_workload_with(name, true)
}

/// [`lockstep_workload`] with explicit control over the machine's bulk
/// fast path, so the sweep can pin the reference model against both the
/// ranged (`on_access_range`) and the per-word hook decompositions.
pub fn lockstep_workload_with(name: &str, bulk: bool) -> LockstepResult {
    let pf = platform::intel_pascal();
    let mut m = Machine::new(pf.clone());
    m.set_bulk_enabled(bulk);
    let hook = Rc::new(RefCell::new(LockstepHook::new(
        pf.page_size,
        pf.cpu_direct_access_gpu,
    )));
    m.add_hook(hook.clone());
    run_workload(&mut m, name);
    let mut h = hook.borrow_mut();
    h.check_final_state(&m);
    LockstepResult {
        divergences: h.divergences.clone(),
        checked_accesses: h.checked_accesses,
        checked_events: h.checked_events,
        checked_ranges: h.checked_ranges,
    }
}
