//! Differential conformance oracles for the XPlacer reproduction.
//!
//! Three independent cross-checks (see DESIGN.md §13):
//!
//! 1. [`generator`] + [`check_program`] — random well-typed MiniCU
//!    programs; parse→unparse→parse must be a fixpoint, the plain and
//!    source-instrumented interpretations must agree on semantics and
//!    simulator counters, and re-running the instrumented *text* through
//!    the plain pipeline must reproduce the traced run exactly (stats,
//!    shadow-memory flags, anti-pattern reports).
//! 2. [`refmodel`] — a naive reference UM page-map model run in lockstep
//!    with `hetsim`'s driver through the `MemHook` seam.
//! 3. [`snapshot`] + [`golden`] — committed golden reports for the 8
//!    workloads and the mini example programs, with an `XPLACER_BLESS=1`
//!    regeneration path.

pub mod generator;
pub mod golden;
pub mod mutate;
pub mod refmodel;
pub mod snapshot;

use hetsim::platform;
use xplacer_core::AccessFlags;
use xplacer_interp::{run_source, Interp, Outcome};
use xplacer_lang::ast::Program;
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;

/// A stable fingerprint of the tracer's shadow memory after a run: one
/// line per live SMT entry with base, size, kind, and the per-word access
/// flag bytes.
pub fn shadow_digest(interp: &Interp) -> String {
    let mut out = String::new();
    for e in interp.tracer.smt.iter() {
        out.push_str(&format!("{:#x} {} {:?} ", e.base, e.size, e.kind));
        for f in &e.shadow {
            let AccessFlags(bits) = *f;
            out.push_str(&format!("{bits:02x}"));
        }
        out.push('\n');
    }
    out
}

/// Rendered concatenation of every diagnostic report a run collected.
pub fn reports_digest(interp: &Interp) -> String {
    interp
        .reports
        .iter()
        .map(|r| r.render())
        .collect::<Vec<_>>()
        .join("\n---\n")
}

fn run(src: &str, instrumented: bool) -> Result<(Outcome, Interp), String> {
    run_source(src, platform::intel_pascal(), instrumented)
        .map_err(|e| format!("run (instrumented={instrumented}): {e}"))
}

fn run_per_word(src: &str, instrumented: bool) -> Result<(Outcome, Interp), String> {
    let mut m = hetsim::Machine::new(platform::intel_pascal());
    m.set_bulk_enabled(false);
    xplacer_interp::run_source_on(src, m, instrumented)
        .map_err(|e| format!("per-word run (instrumented={instrumented}): {e}"))
}

/// The generated-program oracle. Checks, for one program:
///
/// 1. `parse(unparse(prog)) == prog` and unparsing is stable;
/// 2. plain vs. source-instrumented interpretation agree on exit code,
///    stdout (absent diagnostics, which only print when traced), and
///    simulator counters;
/// 3. interpreting the unparsed *instrumented text* through the plain
///    pipeline reproduces the traced run bit-for-bit: exit, stdout,
///    stats, shadow-memory flags, and anti-pattern reports;
/// 4. the machine's bulk fast path is invisible: the traced run repeated
///    with `set_bulk_enabled(false)` (every range decomposed into the
///    per-word scalar protocol) matches exit, stdout, stats, simulated
///    time to the bit, shadow-memory flags, and reports.
///
/// Returns a description of the first violated property.
pub fn check_program(prog: &Program) -> Result<(), String> {
    // (1) Textual fixpoint.
    let src = unparse(prog);
    let reparsed = parse(&src).map_err(|e| format!("reparse of unparsed AST failed: {e}"))?;
    if &reparsed != prog {
        return Err("parse(unparse(prog)) != prog".into());
    }
    if unparse(&reparsed) != src {
        return Err("unparse not stable across parse roundtrip".into());
    }

    // (2) Instrumentation preserves semantics and machine behavior.
    let (plain_out, _plain) = run(&src, false)?;
    let (traced_out, traced) = run(&src, true)?;
    if plain_out.exit != traced_out.exit {
        return Err(format!(
            "exit diverges: plain {} vs traced {}",
            plain_out.exit, traced_out.exit
        ));
    }
    if !generator::has_diagnostic(prog) && plain_out.stdout != traced_out.stdout {
        return Err(format!(
            "stdout diverges:\n--- plain ---\n{}\n--- traced ---\n{}",
            plain_out.stdout, traced_out.stdout
        ));
    }
    if plain_out.stats != traced_out.stats {
        return Err(format!(
            "stats diverge:\n--- plain ---\n{}\n--- traced ---\n{}",
            plain_out.stats.summary(),
            traced_out.stats.summary()
        ));
    }

    // (3) instrument -> unparse -> reparse -> plain interpret must equal
    // the direct traced interpretation.
    let inst_src = unparse(&xplacer_instrument::instrument(&reparsed).program);
    let (inst_out, inst) = run(&inst_src, false)?;
    if inst_out.exit != traced_out.exit || inst_out.stdout != traced_out.stdout {
        return Err(format!(
            "instrumented-text run diverges from traced run: exit {} vs {}\n\
             --- instrumented-text stdout ---\n{}\n--- traced stdout ---\n{}",
            inst_out.exit, traced_out.exit, inst_out.stdout, traced_out.stdout
        ));
    }
    if inst_out.stats != traced_out.stats {
        return Err(format!(
            "instrumented-text stats diverge:\n--- text ---\n{}\n--- traced ---\n{}",
            inst_out.stats.summary(),
            traced_out.stats.summary()
        ));
    }
    let (da, db) = (shadow_digest(&inst), shadow_digest(&traced));
    if da != db {
        return Err(format!(
            "shadow memory diverges:\n--- instrumented-text ---\n{da}\n--- traced ---\n{db}"
        ));
    }
    let (ra, rb) = (reports_digest(&inst), reports_digest(&traced));
    if ra != rb {
        return Err(format!(
            "reports diverge:\n--- instrumented-text ---\n{ra}\n--- traced ---\n{rb}"
        ));
    }

    // (4) The bulk fast path must be invisible: the same traced program
    // with every range op decomposed per-word agrees bit-for-bit.
    let (word_out, word) = run_per_word(&src, true)?;
    if word_out.exit != traced_out.exit || word_out.stdout != traced_out.stdout {
        return Err(format!(
            "per-word run diverges from bulk run: exit {} vs {}\n\
             --- per-word stdout ---\n{}\n--- bulk stdout ---\n{}",
            word_out.exit, traced_out.exit, word_out.stdout, traced_out.stdout
        ));
    }
    if word_out.stats != traced_out.stats {
        return Err(format!(
            "per-word stats diverge from bulk:\n--- per-word ---\n{}\n--- bulk ---\n{}",
            word_out.stats.summary(),
            traced_out.stats.summary()
        ));
    }
    if word_out.elapsed_ns.to_bits() != traced_out.elapsed_ns.to_bits() {
        return Err(format!(
            "per-word simulated time diverges from bulk: {} vs {}",
            word_out.elapsed_ns, traced_out.elapsed_ns
        ));
    }
    let (dw, dt) = (shadow_digest(&word), shadow_digest(&traced));
    if dw != dt {
        return Err(format!(
            "per-word shadow memory diverges from bulk:\n--- per-word ---\n{dw}\n--- bulk ---\n{dt}"
        ));
    }
    let (rw, rt) = (reports_digest(&word), reports_digest(&traced));
    if rw != rt {
        return Err(format!(
            "per-word reports diverge from bulk:\n--- per-word ---\n{rw}\n--- bulk ---\n{rt}"
        ));
    }
    Ok(())
}

/// Number of generator-oracle cases to run: `XPLACER_CONFORMANCE_CASES`
/// if set (CI smoke uses 64), else 256.
pub fn conformance_cases() -> u64 {
    std::env::var("XPLACER_CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}
