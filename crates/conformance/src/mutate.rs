//! Deterministic source mutation for negative-path testing: given a valid
//! MiniCU source, produce broken variants that must make the frontend
//! return a spanned error (or, occasionally, still parse) — never panic.

use proptest::TestRng;

/// Characters likely to break lexing or parsing when spliced in.
const NOISE: &[char] = &[
    '(', ')', '{', '}', '[', ']', ';', '*', '&', '<', '>', '#', '"', '\'', '@', '$', '`', '%',
    '\\', '\u{7f}',
];

/// Apply one random mutation to `src`. Mutations operate on char
/// boundaries so the result is always valid UTF-8.
pub fn mutate(src: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = src.chars().collect();
    if chars.is_empty() {
        return "@".to_string();
    }
    let pos = rng.below(chars.len() as u64) as usize;
    match rng.below(6) {
        // Truncate: unterminated constructs.
        0 => chars[..pos].iter().collect(),
        // Delete a span.
        1 => {
            let len = 1 + rng.below(8) as usize;
            let end = (pos + len).min(chars.len());
            chars[..pos].iter().chain(&chars[end..]).collect()
        }
        // Duplicate a span.
        2 => {
            let len = 1 + rng.below(8) as usize;
            let end = (pos + len).min(chars.len());
            let mut out: Vec<char> = chars[..end].to_vec();
            out.extend(&chars[pos..end]);
            out.extend(&chars[end..]);
            out.into_iter().collect()
        }
        // Replace one char with noise.
        3 => {
            let mut out = chars.clone();
            out[pos] = NOISE[rng.below(NOISE.len() as u64) as usize];
            out.into_iter().collect()
        }
        // Insert a noise char.
        4 => {
            let mut out = chars.clone();
            out.insert(pos, NOISE[rng.below(NOISE.len() as u64) as usize]);
            out.into_iter().collect()
        }
        // Swap two chars.
        _ => {
            let q = rng.below(chars.len() as u64) as usize;
            let mut out = chars.clone();
            out.swap(pos, q);
            out.into_iter().collect()
        }
    }
}

/// Apply 1..=3 stacked mutations.
pub fn mutate_some(src: &str, rng: &mut TestRng) -> String {
    let mut out = src.to_string();
    for _ in 0..1 + rng.below(3) {
        out = mutate(&out, rng);
    }
    out
}
