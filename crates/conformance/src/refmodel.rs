//! A deliberately naive reference model of the unified-memory driver.
//!
//! [`RefUmModel`] re-implements the paper's UM semantics (§II-A/§II-B)
//! from the prose description, independently of `hetsim::unified`: a flat
//! page map, linear scans, `Vec<Device>` instead of bitmasks, and no cost
//! model at all. The point is differential testing — the production
//! driver is optimized and event-driven; this model is small enough to
//! audit by eye. [`LockstepHook`] runs it in lockstep with a live
//! [`hetsim::Machine`] through the `MemHook` seam and records every
//! divergence: a structured event the model did not predict, a predicted
//! event that never arrived, or a final page state that disagrees.
//!
//! The model deliberately does *not* model GPU memory capacity: it
//! assumes no page is ever evicted. Lockstep runs therefore need a
//! machine whose GPU memory comfortably holds the working set (the
//! default 16 GiB does for every canonical workload); eviction paths are
//! covered separately by the conservation tests in `tests/conformance.rs`.

use std::collections::BTreeMap;

use hetsim::{AccessKind, AllocKind, Device, Event, MemAdvise, TimedEvent};

/// Naive per-page state, mirroring the fields of
/// `hetsim::unified::PageState` with open-coded containers.
#[derive(Debug, Clone, PartialEq)]
pub struct RefPage {
    pub managed: bool,
    pub owner: Device,
    /// Devices holding a valid copy, sorted (CPU before GPUs).
    pub copies: Vec<Device>,
    /// Devices with an established remote mapping, sorted.
    pub mapped: Vec<Device>,
    pub read_mostly: bool,
    pub preferred: Option<Device>,
    pub accessed_by: Vec<Device>,
}

impl Default for RefPage {
    fn default() -> Self {
        RefPage {
            managed: false,
            owner: Device::Cpu,
            copies: vec![Device::Cpu],
            mapped: Vec::new(),
            read_mostly: false,
            preferred: None,
            accessed_by: Vec::new(),
        }
    }
}

fn insert_dev(set: &mut Vec<Device>, d: Device) {
    if !set.contains(&d) {
        set.push(d);
        set.sort_by_key(|d| match d {
            Device::Cpu => 0u32,
            Device::Gpu(g) => 1 + *g as u32,
        });
    }
}

fn remove_dev(set: &mut Vec<Device>, d: Device) {
    set.retain(|x| *x != d);
}

/// Counters the model accumulates; a strict subset of [`hetsim::Stats`],
/// restricted to what the UM driver itself maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefStats {
    pub cpu_faults: u64,
    pub gpu_faults: u64,
    pub migrations_h2d: u64,
    pub migrations_d2h: u64,
    pub bytes_migrated: u64,
    pub duplications: u64,
    pub invalidations: u64,
    pub remote_accesses: u64,
}

/// What the model predicts one access will make the driver do. The order
/// of any emitted events is fixed by the machine: fault, duplication,
/// migration, invalidation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefAccessOutcome {
    pub fault: bool,
    pub duplicated: bool,
    pub migrated: bool,
    pub remote: bool,
    pub invalidations: u32,
}

/// The reference page-map model. `page_size` must match the platform the
/// lockstep machine runs on; `nvlink_cpu_maps_gpu` mirrors the platform's
/// `cpu_direct_access_gpu` flag.
#[derive(Debug, Default)]
pub struct RefUmModel {
    pub page_size: u64,
    pub nvlink_cpu_maps_gpu: bool,
    pages: BTreeMap<u64, RefPage>,
    pub stats: RefStats,
}

impl RefUmModel {
    pub fn new(page_size: u64, nvlink_cpu_maps_gpu: bool) -> Self {
        RefUmModel {
            page_size,
            nvlink_cpu_maps_gpu,
            ..Default::default()
        }
    }

    fn page_range(&self, base: u64, size: u64) -> std::ops::RangeInclusive<u64> {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        first..=last
    }

    pub fn register_alloc(&mut self, base: u64, size: u64, managed: bool) {
        for p in self.page_range(base, size) {
            self.pages.insert(
                p,
                RefPage {
                    managed,
                    ..Default::default()
                },
            );
        }
    }

    pub fn release(&mut self, base: u64, size: u64) {
        for p in self.page_range(base, size) {
            self.pages.remove(&p);
        }
    }

    /// The model's view of a page (default state if never registered).
    pub fn page(&self, page: u64) -> RefPage {
        self.pages.get(&page).cloned().unwrap_or_default()
    }

    pub fn is_managed(&self, addr: u64) -> bool {
        self.pages
            .get(&(addr / self.page_size))
            .map(|p| p.managed)
            .unwrap_or(false)
    }

    /// Registered pages in address order, managed only.
    pub fn managed_pages(&self) -> Vec<u64> {
        self.pages
            .iter()
            .filter(|(_, st)| st.managed)
            .map(|(p, _)| *p)
            .collect()
    }

    pub fn advise(&mut self, base: u64, size: u64, advice: MemAdvise) {
        for p in self.page_range(base, size) {
            let st = self.pages.entry(p).or_default();
            match advice {
                MemAdvise::SetReadMostly => st.read_mostly = true,
                MemAdvise::UnsetReadMostly => {
                    st.read_mostly = false;
                    st.copies = vec![st.owner];
                }
                MemAdvise::SetPreferredLocation(d) => st.preferred = Some(d),
                MemAdvise::UnsetPreferredLocation => st.preferred = None,
                MemAdvise::SetAccessedBy(d) => {
                    insert_dev(&mut st.accessed_by, d);
                    if !st.copies.contains(&d) {
                        insert_dev(&mut st.mapped, d);
                    }
                }
                MemAdvise::UnsetAccessedBy(d) => {
                    remove_dev(&mut st.accessed_by, d);
                    remove_dev(&mut st.mapped, d);
                }
            }
        }
    }

    /// One word access by `dev` to managed `page`; returns what the
    /// driver is expected to do. Mirrors the paper's decision order:
    /// local-copy fast path, write-invalidation, established mapping,
    /// then the fault path (read-duplication, preferred-location mapping,
    /// NVLink direct mapping, default migration).
    pub fn access(&mut self, dev: Device, page: u64, write: bool) -> RefAccessOutcome {
        let mut out = RefAccessOutcome::default();
        let st = self.pages.entry(page).or_default();

        if st.copies.contains(&dev) && (!write || st.copies.len() == 1) {
            if write {
                st.owner = dev;
            }
            return out;
        }

        if st.copies.contains(&dev) && write {
            out.invalidations = (st.copies.len() - 1) as u32;
            self.stats.invalidations += out.invalidations as u64;
            st.copies = vec![dev];
            st.owner = dev;
            return out;
        }

        if st.mapped.contains(&dev) {
            out.remote = true;
            self.stats.remote_accesses += 1;
            return out;
        }

        out.fault = true;
        match dev {
            Device::Cpu => self.stats.cpu_faults += 1,
            Device::Gpu(_) => self.stats.gpu_faults += 1,
        }

        if !write && st.read_mostly {
            out.duplicated = true;
            self.stats.duplications += 1;
            insert_dev(&mut st.copies, dev);
            remove_dev(&mut st.mapped, dev);
            return out;
        }

        let preferred_elsewhere = match st.preferred {
            Some(p) => p != dev && st.copies.contains(&p),
            None => false,
        };
        if preferred_elsewhere {
            out.remote = true;
            self.stats.remote_accesses += 1;
            insert_dev(&mut st.mapped, dev);
            return out;
        }

        if dev == Device::Cpu && self.nvlink_cpu_maps_gpu && st.owner.is_gpu() {
            out.remote = true;
            self.stats.remote_accesses += 1;
            insert_dev(&mut st.mapped, Device::Cpu);
            return out;
        }

        out.migrated = true;
        self.stats.bytes_migrated += self.page_size;
        if dev.is_gpu() {
            self.stats.migrations_h2d += 1;
        } else {
            self.stats.migrations_d2h += 1;
        }
        st.owner = dev;
        st.copies = vec![dev];
        remove_dev(&mut st.mapped, dev);
        let accessed_by = st.accessed_by.clone();
        for d in accessed_by {
            if d != dev {
                insert_dev(&mut st.mapped, d);
            }
        }
        out
    }

    /// `cudaMemPrefetchAsync`: returns `(pages_moved, bytes_moved)`.
    pub fn prefetch(&mut self, base: u64, size: u64, dst: Device) -> (u32, u64) {
        let mut pages = 0u32;
        let mut bytes = 0u64;
        for p in self.page_range(base, size) {
            let st = self.pages.entry(p).or_default();
            if !st.managed || st.copies.contains(&dst) {
                continue;
            }
            pages += 1;
            bytes += self.page_size;
            self.stats.bytes_migrated += self.page_size;
            if dst.is_gpu() {
                self.stats.migrations_h2d += 1;
            } else {
                self.stats.migrations_d2h += 1;
            }
            st.owner = dst;
            st.copies = vec![dst];
            remove_dev(&mut st.mapped, dst);
            let accessed_by = st.accessed_by.clone();
            for d in accessed_by {
                if d != dst {
                    insert_dev(&mut st.mapped, d);
                }
            }
        }
        (pages, bytes)
    }
}

/// Compare a model page against the driver's `PageState`; returns the
/// list of mismatched fields (empty = agreement).
pub fn diff_page(model: &RefPage, driver: &hetsim::unified::PageState) -> Vec<String> {
    let mut diffs = Vec::new();
    let drv_copies: Vec<Device> = driver.copies.iter().collect();
    let drv_mapped: Vec<Device> = driver.mapped.iter().collect();
    let drv_accessed: Vec<Device> = driver.accessed_by.iter().collect();
    if model.managed != driver.managed {
        diffs.push(format!("managed: {} vs {}", model.managed, driver.managed));
    }
    if model.owner != driver.owner {
        diffs.push(format!("owner: {:?} vs {:?}", model.owner, driver.owner));
    }
    if model.copies != drv_copies {
        diffs.push(format!("copies: {:?} vs {:?}", model.copies, drv_copies));
    }
    if model.mapped != drv_mapped {
        diffs.push(format!("mapped: {:?} vs {:?}", model.mapped, drv_mapped));
    }
    if model.read_mostly != driver.read_mostly {
        diffs.push(format!(
            "read_mostly: {} vs {}",
            model.read_mostly, driver.read_mostly
        ));
    }
    if model.preferred != driver.preferred {
        diffs.push(format!(
            "preferred: {:?} vs {:?}",
            model.preferred, driver.preferred
        ));
    }
    if model.accessed_by != drv_accessed {
        diffs.push(format!(
            "accessed_by: {:?} vs {:?}",
            model.accessed_by, drv_accessed
        ));
    }
    diffs
}

/// A `MemHook` that drives [`RefUmModel`] in lockstep with the machine.
///
/// The machine emits the structured driver events for an access *before*
/// the per-access callback fires, so the hook buffers fault-class events
/// and, when the access callback arrives, asks the model what should have
/// happened and matches the buffer against the prediction.
#[derive(Default)]
pub struct LockstepHook {
    pub model: RefUmModel,
    /// Live allocations: base -> (size, kind).
    allocs: BTreeMap<u64, (u64, AllocKind)>,
    /// Fault-class events since the last access callback.
    pending: Vec<Event>,
    /// Human-readable divergence log; empty after a clean run.
    pub divergences: Vec<String>,
    /// Number of managed accesses actually cross-checked.
    pub checked_accesses: u64,
    /// Number of events matched against model predictions.
    pub checked_events: u64,
    /// Number of `on_access_range` callbacks cross-checked (0 on a
    /// machine with the bulk fast path disabled).
    pub checked_ranges: u64,
}

impl LockstepHook {
    pub fn new(page_size: u64, nvlink_cpu_maps_gpu: bool) -> Self {
        LockstepHook {
            model: RefUmModel::new(page_size, nvlink_cpu_maps_gpu),
            ..Default::default()
        }
    }

    fn diverge(&mut self, msg: String) {
        // Cap the log so a systematic divergence doesn't OOM the test.
        if self.divergences.len() < 64 {
            self.divergences.push(msg);
        }
    }

    /// Expected event sequence for one predicted access outcome, in the
    /// machine's emission order.
    fn expected_events(
        &self,
        dev: Device,
        page: u64,
        write: bool,
        out: RefAccessOutcome,
    ) -> Vec<Event> {
        let mut ev = Vec::new();
        if out.fault {
            ev.push(Event::PageFault { dev, page, write });
        }
        if out.duplicated {
            ev.push(Event::ReadDup {
                page,
                to: dev,
                bytes: self.model.page_size,
            });
        }
        if out.migrated {
            ev.push(Event::Migration {
                page,
                to: dev,
                bytes: self.model.page_size,
            });
        }
        if out.invalidations > 0 {
            ev.push(Event::Invalidate {
                page,
                copies: out.invalidations,
            });
        }
        ev
    }

    fn on_access(&mut self, dev: Device, addr: u64, write: bool) {
        if !self.model.is_managed(addr) {
            if !self.pending.is_empty() {
                self.diverge(format!(
                    "unmanaged access {dev:?} @{addr:#x} but driver events pending: {:?}",
                    self.pending
                ));
                self.pending.clear();
            }
            return;
        }
        let page = addr / self.model.page_size;
        let out = self.model.access(dev, page, write);
        let expected = self.expected_events(dev, page, write, out);
        let got = std::mem::take(&mut self.pending);
        self.checked_accesses += 1;
        self.checked_events += got.len() as u64;
        if got != expected {
            self.diverge(format!(
                "access {dev:?} page {page:#x} write={write}: driver emitted {got:?}, \
                 model expected {expected:?}"
            ));
        }
    }

    /// Verify final page states against the machine. Call after the run;
    /// appends any state mismatch to `divergences`.
    pub fn check_final_state(&mut self, machine: &hetsim::Machine) {
        if !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            self.diverge(format!("run ended with unconsumed events: {pending:?}"));
        }
        let mut mismatches = Vec::new();
        for page in self.model.managed_pages() {
            let addr = page * self.model.page_size;
            let diffs = diff_page(&self.model.page(page), machine.page_state(addr));
            if !diffs.is_empty() {
                mismatches.push(format!("page {page:#x}: {}", diffs.join(", ")));
            }
        }
        for m in mismatches {
            self.diverge(format!("final state (model vs driver) {m}"));
        }
    }
}

impl hetsim::MemHook for LockstepHook {
    fn on_alloc(&mut self, base: u64, size: u64, kind: AllocKind) {
        self.allocs.insert(base, (size, kind));
        self.model
            .register_alloc(base, size, kind == AllocKind::Managed);
    }

    fn on_free(&mut self, base: u64) {
        if let Some((size, _)) = self.allocs.remove(&base) {
            self.model.release(base, size);
        }
    }

    fn on_read(&mut self, dev: Device, addr: u64, _size: u32) {
        self.on_access(dev, addr, false);
    }

    fn on_write(&mut self, dev: Device, addr: u64, _size: u32) {
        self.on_access(dev, addr, true);
    }

    fn on_read_write(&mut self, dev: Device, addr: u64, _size: u32) {
        // The machine services an RMW as a single write-intent access.
        self.on_access(dev, addr, true);
    }

    fn on_access_range(
        &mut self,
        dev: Device,
        addr: u64,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        // Mirror the machine's bulk fast path: the driver resolved the
        // range once per page (emitting fault-class events only for the
        // first word of each page group), so all pending events belong to
        // this one callback. Predict per page group, then compare the
        // concatenated expectation against the whole buffer.
        if count == 0 || elem_size == 0 {
            return;
        }
        let write = kind.writes();
        let ps = self.model.page_size;
        let mut expected = Vec::new();
        let mut i = 0u64;
        while i < count {
            let a = addr + i * u64::from(elem_size);
            let page = a / ps;
            let last_in_page = (page + 1) * ps - 1;
            let k = ((last_in_page - a) / u64::from(elem_size) + 1).min(count - i);
            if self.model.is_managed(a) {
                self.checked_accesses += k;
                let out = self.model.access(dev, page, write);
                expected.extend(self.expected_events(dev, page, write, out));
                if k > 1 {
                    // Steady-state tail: after the first word, the page is
                    // either a free local hit or one remote access per word.
                    let st = self.model.page(page);
                    if st.copies.contains(&dev) {
                        // local — no events, no stats
                    } else if st.mapped.contains(&dev) {
                        self.model.stats.remote_accesses += k - 1;
                    } else {
                        self.diverge(format!(
                            "range access {dev:?} page {page:#x}: tail words \
                             neither local nor mapped in the model"
                        ));
                    }
                }
            }
            i += k;
        }
        let got = std::mem::take(&mut self.pending);
        self.checked_events += got.len() as u64;
        self.checked_ranges += 1;
        if got != expected {
            self.diverge(format!(
                "range access {dev:?} @{addr:#x} x{count} ({kind:?}): driver \
                 emitted {got:?}, model expected {expected:?}"
            ));
        }
    }

    fn on_memcpy(&mut self, _dst: u64, _src: u64, _bytes: u64, _kind: hetsim::CopyKind) {
        // cudaMemcpy bypasses UM paging entirely; nothing to model.
    }

    fn on_kernel_launch(&mut self, _name: &str) {}

    fn on_event(&mut self, ev: &TimedEvent) {
        match &ev.event {
            Event::PageFault { .. }
            | Event::ReadDup { .. }
            | Event::Migration { .. }
            | Event::Invalidate { .. } => self.pending.push(ev.event.clone()),
            Event::Evict { .. } => {
                // The model assumes ample GPU memory; any eviction in a
                // lockstep run is a real divergence from that assumption.
                self.diverge(format!(
                    "unexpected eviction under lockstep: {:?}",
                    ev.event
                ));
            }
            Event::Advise {
                addr,
                bytes,
                advice,
            } => {
                self.model.advise(*addr, *bytes, *advice);
                self.checked_events += 1;
            }
            Event::Prefetch {
                addr,
                bytes,
                pages,
                bytes_moved,
                to,
                ..
            } => {
                let (p, b) = self.model.prefetch(*addr, *bytes, *to);
                self.checked_events += 1;
                if p != *pages || b != *bytes_moved {
                    self.diverge(format!(
                        "prefetch {addr:#x}+{bytes} to {to:?}: driver moved \
                         {pages} pages/{bytes_moved} bytes, model expected {p}/{b}"
                    ));
                }
            }
            _ => {}
        }
    }
}
