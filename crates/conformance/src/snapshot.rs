//! Golden-file snapshot comparison with a bless path.
//!
//! `check_or_bless(path, actual)` compares `actual` to the committed
//! snapshot at `path`. Set `XPLACER_BLESS=1` to rewrite snapshots instead
//! of comparing (then review the diff and commit it).

use std::fs;
use std::path::Path;

/// Whether this process runs in bless mode.
pub fn blessing() -> bool {
    std::env::var_os("XPLACER_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Compare `actual` to the snapshot at `path`, or rewrite it in bless
/// mode. Returns a descriptive error on mismatch.
pub fn check_or_bless(path: &Path, actual: &str) -> Result<(), String> {
    if blessing() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        return fs::write(path, actual).map_err(|e| format!("write {}: {e}", path.display()));
    }
    let expected = fs::read_to_string(path).map_err(|e| {
        format!(
            "missing snapshot {} ({e}); regenerate with XPLACER_BLESS=1",
            path.display()
        )
    })?;
    if expected == actual {
        return Ok(());
    }
    // Report the first differing line with context.
    let (mut line_no, mut exp_line, mut act_line) = (0usize, "", "");
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            (line_no, exp_line, act_line) = (i + 1, e, a);
            break;
        }
    }
    if line_no == 0 {
        // Same common prefix: lengths differ.
        line_no = expected.lines().count().min(actual.lines().count()) + 1;
        exp_line = expected.lines().nth(line_no - 1).unwrap_or("<eof>");
        act_line = actual.lines().nth(line_no - 1).unwrap_or("<eof>");
    }
    Err(format!(
        "snapshot mismatch {} at line {line_no}:\n  expected: {exp_line}\n  actual:   {act_line}\n\
         (expected {} lines, got {}; re-bless with XPLACER_BLESS=1 if intended)",
        path.display(),
        expected.lines().count(),
        actual.lines().count()
    ))
}
