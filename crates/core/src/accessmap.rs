//! Access maps: the per-word bitmaps behind the paper's Figs. 5, 7, 8
//! and 10 (graphical representations of which words each processor read
//! or wrote), rendered as ASCII grids or CSV.

use crate::flags::AccessFlags;
use crate::smt::SmtEntry;

/// Which access relation to map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Words the CPU wrote.
    CpuWrite,
    /// Words the CPU read (either origin).
    CpuRead,
    /// Words a GPU wrote.
    GpuWrite,
    /// Words a GPU read (either origin).
    GpuRead,
    /// Words the GPU read whose value came from the CPU (`C>G`) — the
    /// overlap maps of Fig. 5e/5f and Fig. 10.
    GpuReadsCpuWrites,
    /// Words the CPU read whose value came from the GPU (`G>C`).
    CpuReadsGpuWrites,
    /// Words matching the alternating anti-pattern.
    Alternating,
    /// Words touched by anything.
    AnyAccess,
}

impl MapKind {
    /// Title used above rendered maps.
    pub fn title(self) -> &'static str {
        match self {
            MapKind::CpuWrite => "CPU writes",
            MapKind::CpuRead => "CPU reads",
            MapKind::GpuWrite => "GPU writes",
            MapKind::GpuRead => "GPU reads",
            MapKind::GpuReadsCpuWrites => "GPU reads of CPU writes",
            MapKind::CpuReadsGpuWrites => "CPU reads of GPU writes",
            MapKind::Alternating => "alternating accesses",
            MapKind::AnyAccess => "any access",
        }
    }

    #[inline]
    fn matches(self, w: AccessFlags) -> bool {
        match self {
            MapKind::CpuWrite => w.get(AccessFlags::CPU_WROTE),
            MapKind::CpuRead => w.get(AccessFlags::R_CC) || w.get(AccessFlags::R_GC),
            MapKind::GpuWrite => w.get(AccessFlags::GPU_WROTE),
            MapKind::GpuRead => w.get(AccessFlags::R_CG) || w.get(AccessFlags::R_GG),
            MapKind::GpuReadsCpuWrites => w.get(AccessFlags::R_CG),
            MapKind::CpuReadsGpuWrites => w.get(AccessFlags::R_GC),
            MapKind::Alternating => w.alternating(),
            MapKind::AnyAccess => w.touched(),
        }
    }
}

/// Extract the bitmap of `kind` for allocation `e` (one bool per 32-bit
/// word).
pub fn extract(e: &SmtEntry, kind: MapKind) -> Vec<bool> {
    e.shadow.iter().map(|&w| kind.matches(w)).collect()
}

/// Intersection of two maps (e.g. "GPU accesses overlapping CPU writes").
pub fn overlap(a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len(), "overlapping maps of different lengths");
    a.iter().zip(b).map(|(&x, &y)| x && y).collect()
}

/// Fraction of set bits.
pub fn fill_ratio(bits: &[bool]) -> f64 {
    if bits.is_empty() {
        return 0.0;
    }
    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
}

/// Render a bitmap as rows of `width` characters: `#` for touched, `.`
/// for untouched.
pub fn render_ascii(bits: &[bool], width: usize) -> String {
    assert!(width > 0);
    let mut out = String::with_capacity(bits.len() + bits.len() / width + 1);
    for row in bits.chunks(width) {
        for &b in row {
            out.push(if b { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Render a bitmap that represents a row-major `rows x cols` matrix, one
/// matrix row per line. Each *element* may span several words (e.g. an
/// f64 element is two 32-bit words); `words_per_elem` collapses them (an
/// element is set if any of its words is).
pub fn render_matrix(bits: &[bool], rows: usize, cols: usize, words_per_elem: usize) -> String {
    assert!(words_per_elem > 0);
    let mut out = String::new();
    for r in 0..rows {
        for c in 0..cols {
            let w0 = (r * cols + c) * words_per_elem;
            let set = (w0..w0 + words_per_elem).any(|w| bits.get(w).copied().unwrap_or(false));
            out.push(if set { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Render a bitmap as a portable bitmap image (PBM P1, one pixel per
/// word) — the image form of the paper's Figs. 5/7/8/10. Viewable with
/// any image tool or convertible with `magick map.pbm map.png`.
pub fn to_pbm(bits: &[bool], width: usize) -> String {
    assert!(width > 0);
    let height = bits.len().div_ceil(width);
    let mut out = format!(
        "P1
# XPlacer access map
{width} {height}
"
    );
    for row in 0..height {
        for col in 0..width {
            let idx = row * width + col;
            let b = bits.get(idx).copied().unwrap_or(false);
            out.push(if b { '1' } else { '0' });
            out.push(if col + 1 == width { '\n' } else { ' ' });
        }
    }
    out
}

/// One CSV line per word: `index,0|1`.
pub fn to_csv(bits: &[bool]) -> String {
    let mut out = String::from("word,accessed\n");
    for (i, &b) in bits.iter().enumerate() {
        out.push_str(&format!("{},{}\n", i, b as u8));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::{AllocKind, Device, MemHook};

    const GPU: Device = Device::GPU0;

    fn traced() -> Tracer {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed); // 16 words
        t.trace_w(Device::Cpu, 0x10_0000, 16); // words 0..3
        t.trace_r(GPU, 0x10_0008, 8); // words 2..3: C>G
        t.trace_w(GPU, 0x10_0020, 8); // words 8..9
        t
    }

    #[test]
    fn extract_matches_semantics() {
        let t = traced();
        let e = t.smt.lookup(0x10_0000).unwrap();
        let cw = extract(e, MapKind::CpuWrite);
        assert_eq!(&cw[..5], &[true, true, true, true, false]);
        let gr = extract(e, MapKind::GpuRead);
        assert_eq!(&gr[..5], &[false, false, true, true, false]);
        let gw = extract(e, MapKind::GpuWrite);
        assert!(gw[8] && gw[9] && !gw[7]);
        let alt = extract(e, MapKind::Alternating);
        assert_eq!(alt.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn overlap_is_intersection() {
        let t = traced();
        let e = t.smt.lookup(0x10_0000).unwrap();
        let o = overlap(
            &extract(e, MapKind::CpuWrite),
            &extract(e, MapKind::GpuRead),
        );
        assert_eq!(o, extract(e, MapKind::GpuReadsCpuWrites));
    }

    #[test]
    fn ascii_rendering_shape() {
        let bits = vec![true, false, true, false, true, false];
        let s = render_ascii(&bits, 3);
        assert_eq!(s, "#.#\n.#.\n"); // 2 rows of 3
        assert_eq!(s.lines().count(), 2);
        assert_eq!(s.lines().next().unwrap(), "#.#");
    }

    #[test]
    fn matrix_rendering_collapses_words_per_element() {
        // 2x2 matrix of f64 (2 words each): element (0,0) and (1,1) set.
        let mut bits = vec![false; 8];
        bits[1] = true; // second word of element 0
        bits[6] = true; // first word of element 3
        let s = render_matrix(&bits, 2, 2, 2);
        assert_eq!(s, "#.\n.#\n");
    }

    #[test]
    fn fill_ratio_counts() {
        assert_eq!(fill_ratio(&[]), 0.0);
        assert_eq!(fill_ratio(&[true, false, true, false]), 0.5);
    }

    #[test]
    fn pbm_is_well_formed() {
        let bits = vec![true, false, true, false, true];
        let pbm = to_pbm(&bits, 2);
        let mut lines = pbm.lines();
        assert_eq!(lines.next(), Some("P1"));
        assert!(lines.next().unwrap().starts_with('#'));
        assert_eq!(lines.next(), Some("2 3"));
        assert_eq!(lines.next(), Some("1 0"));
        assert_eq!(lines.next(), Some("1 0"));
        // Final row padded with zeros.
        assert_eq!(lines.next(), Some("1 0"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_rows() {
        let s = to_csv(&[true, false]);
        assert_eq!(s, "word,accessed\n0,1\n1,0\n");
    }

    #[test]
    fn titles_exist_for_all_kinds() {
        for k in [
            MapKind::CpuWrite,
            MapKind::CpuRead,
            MapKind::GpuWrite,
            MapKind::GpuRead,
            MapKind::GpuReadsCpuWrites,
            MapKind::CpuReadsGpuWrites,
            MapKind::Alternating,
            MapKind::AnyAccess,
        ] {
            assert!(!k.title().is_empty());
        }
    }
}
