//! Anti-pattern 1: alternating CPU/GPU accesses in managed memory
//! (paper §III-A).
//!
//! "The runtime analysis examines the recorded data and reports whether
//! there are accesses to the same memory location from both CPU and GPU,
//! where at least one of the accesses is a write." Only managed memory
//! participates — `cudaMalloc`/host memory cannot ping-pong.

use hetsim::AllocKind;

use crate::antipattern::Finding;
use crate::smt::SmtEntry;

/// Number of words in `e` matching the alternating predicate.
pub fn alternating_elements(e: &SmtEntry) -> usize {
    e.shadow.iter().filter(|w| w.alternating()).count()
}

/// Detect the pattern on one allocation.
pub fn detect(e: &SmtEntry) -> Option<Finding> {
    if e.kind != AllocKind::Managed {
        return None;
    }
    let elements = alternating_elements(e);
    (elements > 0).then(|| Finding::AlternatingAccess {
        name: e.display_name(),
        base: e.base,
        elements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::{Device, MemHook};

    const GPU: Device = Device::GPU0;

    fn entry_after(f: impl FnOnce(&mut Tracer)) -> Tracer {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 256, AllocKind::Managed);
        f(&mut t);
        t
    }

    #[test]
    fn cpu_write_gpu_read_is_alternating() {
        let t = entry_after(|t| {
            t.trace_w(Device::Cpu, 0x10_0000, 4);
            t.trace_r(GPU, 0x10_0000, 4);
            t.trace_w(Device::Cpu, 0x10_0008, 8); // 2 more words
            t.trace_r(GPU, 0x10_0008, 8);
        });
        let e = t.smt.lookup(0x10_0000).unwrap();
        match detect(e) {
            Some(Finding::AlternatingAccess { elements, .. }) => assert_eq!(elements, 3),
            other => panic!("expected finding, got {other:?}"),
        }
    }

    #[test]
    fn gpu_write_cpu_read_is_alternating() {
        let t = entry_after(|t| {
            t.trace_w(GPU, 0x10_0000, 4);
            t.trace_r(Device::Cpu, 0x10_0000, 4);
        });
        assert!(detect(t.smt.lookup(0x10_0000).unwrap()).is_some());
    }

    #[test]
    fn read_only_sharing_is_not_flagged() {
        let t = entry_after(|t| {
            t.trace_r(Device::Cpu, 0x10_0000, 4);
            t.trace_r(GPU, 0x10_0000, 4);
        });
        assert!(detect(t.smt.lookup(0x10_0000).unwrap()).is_none());
    }

    #[test]
    fn exclusive_access_is_not_flagged() {
        let t = entry_after(|t| {
            for i in 0..64 {
                t.trace_w(GPU, 0x10_0000 + i * 4, 4);
                t.trace_r(GPU, 0x10_0000 + i * 4, 4);
            }
        });
        assert!(detect(t.smt.lookup(0x10_0000).unwrap()).is_none());
    }

    #[test]
    fn disjoint_regions_in_same_alloc_not_flagged() {
        // CPU uses the first half, GPU the second: no single word is
        // shared, so no alternating accesses (even though the *page* may
        // still ping-pong — the paper calls that the false-sharing-like
        // effect and its remedy is object splitting).
        let t = entry_after(|t| {
            for i in 0..32 {
                t.trace_w(Device::Cpu, 0x10_0000 + i * 4, 4);
            }
            for i in 32..64 {
                t.trace_w(GPU, 0x10_0000 + i * 4, 4);
            }
        });
        assert!(detect(t.smt.lookup(0x10_0000).unwrap()).is_none());
    }

    #[test]
    fn non_managed_memory_never_flagged() {
        let mut t = Tracer::new();
        t.on_alloc(0x20_0000, 64, AllocKind::Host);
        t.trace_w(Device::Cpu, 0x20_0000, 4);
        t.trace_r(GPU, 0x20_0000, 4); // (would be illegal on hw anyway)
        assert!(detect(t.smt.lookup(0x20_0000).unwrap()).is_none());
    }
}
