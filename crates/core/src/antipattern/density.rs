//! Anti-pattern 2: low access density (paper §III-A).
//!
//! density(block) = touched addresses / block size. A block is diagnosed
//! when it has at least one access and its density is at or below the
//! configured threshold.

use crate::antipattern::{AnalysisConfig, Finding};
use crate::smt::SmtEntry;

/// Whole-allocation access density in `[0, 1]`.
pub fn density(e: &SmtEntry) -> f64 {
    if e.shadow.is_empty() {
        return 0.0;
    }
    let touched = e.shadow.iter().filter(|w| w.touched()).count();
    touched as f64 / e.shadow.len() as f64
}

/// Per-block densities: `(word offset, density)` for consecutive blocks of
/// `block_words` (the final block may be shorter).
pub fn block_densities(e: &SmtEntry, block_words: usize) -> Vec<(usize, f64)> {
    assert!(block_words > 0, "block size must be positive");
    e.shadow
        .chunks(block_words)
        .enumerate()
        .map(|(i, chunk)| {
            let touched = chunk.iter().filter(|w| w.touched()).count();
            (i * block_words, touched as f64 / chunk.len() as f64)
        })
        .collect()
}

/// Detect low density on one allocation: a whole-allocation finding and,
/// if a block size is configured, per-block findings for sparse blocks
/// inside otherwise-dense allocations.
pub fn detect(e: &SmtEntry, cfg: &AnalysisConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    let d = density(e);
    let accessed = e.shadow.iter().any(|w| w.touched());
    if accessed && d <= cfg.density_threshold {
        out.push(Finding::LowAccessDensity {
            name: e.display_name(),
            base: e.base,
            density: d,
            threshold: cfg.density_threshold,
        });
    }
    if let Some(bw) = cfg.density_block_words {
        for (off, bd) in block_densities(e, bw) {
            let block = &e.shadow[off..(off + bw).min(e.shadow.len())];
            let touched = block.iter().any(|w| w.touched());
            if touched && bd <= cfg.density_threshold && d > cfg.density_threshold {
                // Only report blocks when the allocation as a whole was
                // not already flagged, to avoid drowning the user.
                out.push(Finding::LowDensityBlock {
                    name: e.display_name(),
                    base: e.base,
                    block_off: off,
                    block_words: block.len(),
                    density: bd,
                    threshold: cfg.density_threshold,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::{AllocKind, Device, MemHook};

    fn tracer_alloc(words: usize) -> Tracer {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, (words * 4) as u64, AllocKind::Managed);
        t
    }

    fn touch(t: &mut Tracer, words: impl Iterator<Item = usize>) {
        for w in words {
            t.trace_w(Device::GPU0, 0x10_0000 + (w as u64) * 4, 4);
        }
    }

    #[test]
    fn density_fraction() {
        let mut t = tracer_alloc(100);
        touch(&mut t, 0..9);
        let e = t.smt.lookup(0x10_0000).unwrap();
        assert!((density(e) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn untouched_allocation_not_flagged() {
        let t = tracer_alloc(100);
        let e = t.smt.lookup(0x10_0000).unwrap();
        assert!(detect(e, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn sparse_allocation_flagged() {
        let mut t = tracer_alloc(100);
        touch(&mut t, 0..10); // 10 %
        let e = t.smt.lookup(0x10_0000).unwrap();
        let f = detect(e, &AnalysisConfig::default());
        assert!(matches!(
            f.as_slice(),
            [Finding::LowAccessDensity { density, .. }] if (*density - 0.1).abs() < 1e-12
        ));
    }

    #[test]
    fn dense_allocation_not_flagged() {
        let mut t = tracer_alloc(100);
        touch(&mut t, 0..80); // 80 %
        let e = t.smt.lookup(0x10_0000).unwrap();
        assert!(detect(e, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn threshold_is_inclusive() {
        // "density <= threshold" per the paper's formula.
        let mut t = tracer_alloc(100);
        touch(&mut t, 0..50);
        let e = t.smt.lookup(0x10_0000).unwrap();
        let cfg = AnalysisConfig {
            density_threshold: 0.5,
            ..AnalysisConfig::default()
        };
        assert_eq!(detect(e, &cfg).len(), 1);
    }

    #[test]
    fn block_granularity_finds_sparse_corner() {
        // Dense overall (75 %) but the last quarter is untouched except
        // one word.
        let mut t = tracer_alloc(128);
        touch(&mut t, 0..96);
        touch(&mut t, std::iter::once(120));
        let e = t.smt.lookup(0x10_0000).unwrap();
        let cfg = AnalysisConfig {
            density_block_words: Some(32),
            ..AnalysisConfig::default()
        };
        let f = detect(e, &cfg);
        assert_eq!(f.len(), 1);
        assert!(matches!(
            &f[0],
            Finding::LowDensityBlock { block_off: 96, .. }
        ));
    }

    #[test]
    fn block_densities_partition_correctly() {
        let mut t = tracer_alloc(10);
        touch(&mut t, [0usize, 1, 2, 3, 8].into_iter());
        let e = t.smt.lookup(0x10_0000).unwrap();
        let b = block_densities(e, 4);
        assert_eq!(b.len(), 3); // 4 + 4 + 2 words
        assert_eq!(b[0], (0, 1.0));
        assert_eq!(b[1], (4, 0.0));
        assert_eq!(b[2], (8, 0.5));
    }
}
