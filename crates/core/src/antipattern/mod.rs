//! The three memory-access anti-patterns of paper §III-A, plus the
//! additional transfer findings the evaluation reports for the Rodinia
//! benchmarks (Table II).

pub mod alternating;
pub mod density;
pub mod online;
pub mod transfer;

use hetsim::Addr;

use crate::report::Report;
use crate::smt::Smt;

/// Tunable thresholds of the runtime analysis.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Low-access-density threshold: allocations (and blocks) with at
    /// least one access and density `<=` this are diagnosed. The paper
    /// suggests 50 %.
    pub density_threshold: f64,
    /// Optional block granularity (in 32-bit words) for per-block density
    /// ("for a user-defined block size", §III-C). `None` analyzes whole
    /// allocations only.
    pub density_block_words: Option<usize>,
    /// Minimum length (in words) of a contiguous transferred-but-unused
    /// run to report ("the minimum block size of these contiguous memory
    /// regions is parametrizable", §III-C).
    pub min_transfer_run_words: usize,
    /// Report unnamed allocations too (the paper's tool analyzes
    /// everything; names only improve messages).
    pub include_unnamed: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            density_threshold: 0.5,
            density_block_words: None,
            min_transfer_run_words: 16,
            include_unnamed: true,
        }
    }
}

/// One diagnosed anti-pattern instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Anti-pattern 1: both processors accessed the same managed words,
    /// at least one side writing.
    AlternatingAccess {
        name: String,
        base: Addr,
        /// Number of words matching the predicate.
        elements: usize,
    },
    /// Anti-pattern 2: the allocation was accessed but only sparsely.
    LowAccessDensity {
        name: String,
        base: Addr,
        /// Measured density in `[0, 1]`.
        density: f64,
        /// The configured threshold.
        threshold: f64,
    },
    /// Anti-pattern 2 at block granularity: one sparse block inside an
    /// otherwise dense allocation.
    LowDensityBlock {
        name: String,
        base: Addr,
        /// Block start, in words from the allocation base.
        block_off: usize,
        /// Block length in words.
        block_words: usize,
        density: f64,
        threshold: f64,
    },
    /// Anti-pattern 3: a contiguous run was copied host→device but the
    /// GPU never touched it.
    TransferredNeverAccessed {
        name: String,
        base: Addr,
        /// Run start in words from the allocation base.
        off_words: usize,
        /// Run length in words.
        len_words: usize,
    },
    /// Anti-pattern 3: a contiguous run was copied device→host although
    /// the GPU never modified it.
    TransferredOutUnmodified {
        name: String,
        base: Addr,
        off_words: usize,
        len_words: usize,
    },
    /// A transferred-in run was completely overwritten by the GPU before
    /// any GPU read — the initial transfer was wasted (the Gaussian
    /// `m_cuda` finding of Table II).
    TransferredOverwritten {
        name: String,
        base: Addr,
        off_words: usize,
        len_words: usize,
    },
    /// The allocation was never accessed at all (the Backprop
    /// `output_hidden_cuda` finding of Table II).
    UnusedAllocation { name: String, base: Addr, size: u64 },
    /// Data was copied to the device and back although the GPU never
    /// wrote any of it (the Backprop `input_cuda` finding of Table II).
    RoundTripUnmodified { name: String, base: Addr },
}

/// Coarse classification, for counting findings by type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingKind {
    Alternating,
    LowDensity,
    UnnecessaryTransfer,
    UnusedAllocation,
}

impl Finding {
    /// Which anti-pattern family the finding belongs to.
    pub fn kind(&self) -> FindingKind {
        match self {
            Finding::AlternatingAccess { .. } => FindingKind::Alternating,
            Finding::LowAccessDensity { .. } | Finding::LowDensityBlock { .. } => {
                FindingKind::LowDensity
            }
            Finding::TransferredNeverAccessed { .. }
            | Finding::TransferredOutUnmodified { .. }
            | Finding::TransferredOverwritten { .. }
            | Finding::RoundTripUnmodified { .. } => FindingKind::UnnecessaryTransfer,
            Finding::UnusedAllocation { .. } => FindingKind::UnusedAllocation,
        }
    }

    /// The allocation name the finding refers to.
    pub fn alloc_name(&self) -> &str {
        match self {
            Finding::AlternatingAccess { name, .. }
            | Finding::LowAccessDensity { name, .. }
            | Finding::LowDensityBlock { name, .. }
            | Finding::TransferredNeverAccessed { name, .. }
            | Finding::TransferredOutUnmodified { name, .. }
            | Finding::TransferredOverwritten { name, .. }
            | Finding::UnusedAllocation { name, .. }
            | Finding::RoundTripUnmodified { name, .. } => name,
        }
    }

    /// The remedy suggestions of paper §III-A for this pattern family.
    pub fn remedy(&self) -> &'static str {
        match self.kind() {
            FindingKind::Alternating => {
                "provide cudaMemAdvise hints matching the access pattern, or split \
                 the object into a CPU part and a GPU part"
            }
            FindingKind::LowDensity => {
                "partition the transfer to overlap computation and communication, \
                 optimize the data layout, or use cudaMallocManaged"
            }
            FindingKind::UnnecessaryTransfer => {
                "revise the algorithm to eliminate transfers of memory that is not \
                 accessed or not altered"
            }
            FindingKind::UnusedAllocation => "remove the allocation",
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Finding::AlternatingAccess { name, elements, .. } => write!(
                f,
                "{name}: {elements} elements with alternating CPU/GPU accesses"
            ),
            Finding::LowAccessDensity {
                name,
                density,
                threshold,
                ..
            } => write!(
                f,
                "{name}: low access density {:.0}% (threshold {:.0}%)",
                density * 100.0,
                threshold * 100.0
            ),
            Finding::LowDensityBlock {
                name,
                block_off,
                block_words,
                density,
                ..
            } => write!(
                f,
                "{name}: block at word {block_off} (+{block_words}) has low access \
                 density {:.0}%",
                density * 100.0
            ),
            Finding::TransferredNeverAccessed {
                name,
                off_words,
                len_words,
                ..
            } => write!(
                f,
                "{name}: {len_words} words at word offset {off_words} were copied to \
                 the GPU but never accessed there"
            ),
            Finding::TransferredOutUnmodified {
                name,
                off_words,
                len_words,
                ..
            } => write!(
                f,
                "{name}: {len_words} words at word offset {off_words} were copied back \
                 to the CPU although the GPU never modified them"
            ),
            Finding::TransferredOverwritten {
                name,
                off_words,
                len_words,
                ..
            } => write!(
                f,
                "{name}: {len_words} words at word offset {off_words} were copied to \
                 the GPU but overwritten before any GPU read — the transfer can be \
                 eliminated"
            ),
            Finding::UnusedAllocation { name, size, .. } => {
                write!(f, "{name}: allocation of {size} bytes is never used")
            }
            Finding::RoundTripUnmodified { name, .. } => write!(
                f,
                "{name}: copied to the GPU and back although the GPU never modified it"
            ),
        }
    }
}

/// Run every detector over the table and collect the findings into a
/// [`Report`]. Does not reset the shadow memory.
pub fn analyze(smt: &Smt, cfg: &AnalysisConfig) -> Report {
    let mut findings = Vec::new();
    for e in smt.iter() {
        if !cfg.include_unnamed && e.label.is_none() {
            continue;
        }
        findings.extend(alternating::detect(e));
        findings.extend(density::detect(e, cfg));
        findings.extend(transfer::detect(e, cfg));
    }
    Report::new(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::{AllocKind, CopyKind, Device, MemHook};

    #[test]
    fn analyze_runs_all_detectors() {
        let mut t = Tracer::new();
        // Alternating: CPU writes, GPU reads the same word.
        t.on_alloc(0x10_0000, 4096, AllocKind::Managed);
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        t.trace_r(Device::GPU0, 0x10_0000, 4);
        // Unnecessary transfer: H2D copy never touched by the GPU.
        t.on_alloc(0x20_0000, 4096, AllocKind::Device(0));
        t.on_alloc(0x30_0000, 4096, AllocKind::Host);
        t.on_memcpy(0x20_0000, 0x30_0000, 4096, CopyKind::HostToDevice);
        let report = analyze(&t.smt, &AnalysisConfig::default());
        let kinds: Vec<FindingKind> = report.findings.iter().map(|f| f.kind()).collect();
        assert!(kinds.contains(&FindingKind::Alternating));
        assert!(kinds.contains(&FindingKind::UnnecessaryTransfer));
        assert!(kinds.contains(&FindingKind::LowDensity)); // 1 word of 1024
    }

    #[test]
    fn include_unnamed_false_skips_anonymous() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed);
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        t.trace_r(Device::GPU0, 0x10_0000, 4);
        let cfg = AnalysisConfig {
            include_unnamed: false,
            ..AnalysisConfig::default()
        };
        assert!(analyze(&t.smt, &cfg).is_empty());
        t.name(0x10_0000, "x");
        assert!(!analyze(&t.smt, &cfg).is_empty());
    }

    #[test]
    fn finding_display_and_remedies() {
        let f = Finding::AlternatingAccess {
            name: "dom".into(),
            base: 0x1000,
            elements: 18,
        };
        assert_eq!(
            f.to_string(),
            "dom: 18 elements with alternating CPU/GPU accesses"
        );
        assert!(f.remedy().contains("cudaMemAdvise"));
        let f = Finding::UnusedAllocation {
            name: "output_hidden_cuda".into(),
            base: 0x1000,
            size: 64,
        };
        assert_eq!(f.kind(), FindingKind::UnusedAllocation);
        assert!(f.to_string().contains("never used"));
    }
}
