//! Online (streaming) anti-pattern *episode* detectors.
//!
//! The batch detectors in this module's siblings diagnose final shadow
//! totals: "this allocation alternated at some point". This module folds
//! the time axis back in — it consumes the attributed event stream
//! ([`hetsim::TimedEvent`]) as a [`MemHook`] and emits [`Episode`]s with
//! simulated-ns start/end spans, the pages involved, and the driver cost
//! attributed to the pathology while it was happening. A ping-pong phase
//! that starts and stops mid-run becomes a bounded interval instead of a
//! run-wide boolean.
//!
//! Three detectors run side by side, bounded-memory, single pass:
//!
//! * **ping-pong** — per allocation, on-demand migration *direction
//!   flips* (a page that just moved host→device moving device→host, or
//!   vice versa). [`OnlineConfig::min_flips`] flips open an episode; it
//!   absorbs every fault/migration/invalidation cost charged to the
//!   allocation while open and closes after
//!   [`OnlineConfig::quiet_ns`] of silence.
//! * **eviction thrash** — a burst of oversubscription evictions
//!   ([`OnlineConfig::min_evictions`] evict events without a quiet gap):
//!   the working set does not fit and the driver is churning pages.
//! * **redundant transfer** — two explicit copies in the same direction
//!   touching the same allocation with *no kernel launch in between*: the
//!   first H2D copy was overwritten before any kernel could read it (or
//!   the second D2H copy re-fetched data no kernel could have changed).

use std::collections::{BTreeMap, BTreeSet};

use hetsim::{AccessKind, Addr, AllocKind, CopyKind, Device, Event, MemHook, TimedEvent};

/// Tunable thresholds of the streaming detectors.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Migration direction flips (per allocation) that open a ping-pong
    /// episode.
    pub min_flips: u32,
    /// Simulated-ns of inactivity that closes an open episode (and
    /// expires pending evidence that never reached a threshold).
    pub quiet_ns: f64,
    /// Evict events in one burst that open an eviction-thrash episode.
    pub min_evictions: u32,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            min_flips: 3,
            quiet_ns: 2_000_000.0,
            min_evictions: 4,
        }
    }
}

/// Which pathology an episode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeKind {
    PingPong,
    EvictionThrash,
    RedundantTransfer,
}

impl EpisodeKind {
    /// Stable lowercase tag for serialization and display.
    pub fn label(self) -> &'static str {
        match self {
            EpisodeKind::PingPong => "ping-pong",
            EpisodeKind::EvictionThrash => "eviction-thrash",
            EpisodeKind::RedundantTransfer => "redundant-transfer",
        }
    }
}

/// One bounded interval of pathological behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    pub kind: EpisodeKind,
    /// Allocation the episode concerns (`None` for machine-wide thrash).
    pub alloc: Option<Addr>,
    /// Simulated time the first contributing event fired.
    pub start_ns: f64,
    /// Simulated time of the last contributing event.
    pub end_ns: f64,
    /// Distinct pages involved (0 when the evidence is not page-granular).
    pub pages: u64,
    /// Kind-specific trigger count: direction flips, evicted pages, or
    /// redundant copies.
    pub trips: u64,
    /// Events absorbed while the episode was open.
    pub events: u64,
    /// Simulated driver cost (`TimedEvent::cost_ns`) attributed to the
    /// episode.
    pub cost_ns: f64,
    /// Bytes moved by the absorbed events.
    pub bytes: u64,
    /// Still open when the snapshot was taken (always `false` after
    /// [`OnlineAnalyzer::finish`]).
    pub active: bool,
}

impl Episode {
    /// Simulated duration of the episode.
    pub fn span_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }
}

/// An episode being accumulated.
#[derive(Debug, Clone)]
struct Build {
    kind: EpisodeKind,
    alloc: Option<Addr>,
    start_ns: f64,
    end_ns: f64,
    pages: BTreeSet<u64>,
    trips: u64,
    events: u64,
    cost_ns: f64,
    bytes: u64,
}

impl Build {
    fn new(kind: EpisodeKind, alloc: Option<Addr>, t: f64) -> Build {
        Build {
            kind,
            alloc,
            start_ns: t,
            end_ns: t,
            pages: BTreeSet::new(),
            trips: 0,
            events: 0,
            cost_ns: 0.0,
            bytes: 0,
        }
    }

    fn absorb(&mut self, t: f64, cost: f64, page: Option<u64>, bytes: u64) {
        self.end_ns = self.end_ns.max(t);
        self.events += 1;
        self.cost_ns += cost;
        self.bytes += bytes;
        if let Some(p) = page {
            self.pages.insert(p);
        }
    }

    fn seal(self, active: bool) -> Episode {
        Episode {
            kind: self.kind,
            alloc: self.alloc,
            start_ns: self.start_ns,
            end_ns: self.end_ns,
            pages: self.pages.len() as u64,
            trips: self.trips,
            events: self.events,
            cost_ns: self.cost_ns,
            bytes: self.bytes,
            active,
        }
    }
}

/// Evidence for one not-yet-open episode: (t, cost, page, bytes).
type Pending = Vec<(f64, f64, Option<u64>, u64)>;

/// Per-allocation ping-pong state.
#[derive(Debug, Default)]
struct PingState {
    /// Page → currently resident on a GPU (as far as on-demand migrations
    /// have told us).
    on_gpu: BTreeMap<u64, bool>,
    pending: Pending,
    open: Option<Build>,
}

/// Per-(allocation × direction) redundant-transfer state: the last copy
/// seen and the kernel sequence number at that time.
#[derive(Debug)]
struct CopyState {
    last_t: f64,
    last_cost: f64,
    kernel_seq: u64,
    open: Option<Build>,
}

/// Streaming analyzer: attach with `Machine::add_hook` (alongside the
/// tracer and any other observer), call [`finish`](Self::finish) after
/// the run, then read [`episodes`](Self::episodes). Purely observational.
#[derive(Debug, Default)]
pub struct OnlineAnalyzer {
    cfg: OnlineConfig,
    /// base → size, from Alloc events (resolves memcpy endpoints).
    allocs: BTreeMap<Addr, u64>,
    ping: BTreeMap<Addr, PingState>,
    thrash_pending: Pending,
    thrash_open: Option<Build>,
    copies: BTreeMap<(Addr, bool), CopyState>,
    kernel_seq: u64,
    done: Vec<Episode>,
    finished: bool,
}

impl OnlineAnalyzer {
    pub fn new(cfg: OnlineConfig) -> Self {
        OnlineAnalyzer {
            cfg,
            ..Default::default()
        }
    }

    /// Closed episodes, sorted by start time (stable across runs). Call
    /// [`finish`](Self::finish) first to seal episodes still open at the
    /// end of the run.
    pub fn episodes(&self) -> &[Episode] {
        &self.done
    }

    /// Closed episodes plus clones of the still-open ones (marked
    /// `active`) — the dashboard's live view.
    pub fn snapshot(&self) -> Vec<Episode> {
        let mut out = self.done.clone();
        for st in self.ping.values() {
            if let Some(b) = &st.open {
                out.push(b.clone().seal(true));
            }
        }
        if let Some(b) = &self.thrash_open {
            out.push(b.clone().seal(true));
        }
        for st in self.copies.values() {
            if let Some(b) = &st.open {
                out.push(b.clone().seal(true));
            }
        }
        sort_episodes(&mut out);
        out
    }

    /// Seal every open episode. Idempotent; call once the run is over.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let builds: Vec<Build> = self
            .ping
            .values_mut()
            .filter_map(|st| st.open.take())
            .chain(self.thrash_open.take())
            .chain(self.copies.values_mut().filter_map(|st| st.open.take()))
            .collect();
        for b in builds {
            self.done.push(b.seal(false));
        }
        sort_episodes(&mut self.done);
    }

    /// Resolve an address to the base of the live allocation containing it.
    fn alloc_of(&self, addr: Addr) -> Option<Addr> {
        let (&base, &size) = self.allocs.range(..=addr).next_back()?;
        (addr < base + size).then_some(base)
    }

    fn ingest(&mut self, ev: &TimedEvent) {
        let t = ev.t_ns;
        let quiet = self.cfg.quiet_ns;
        match &ev.event {
            Event::Alloc { base, bytes, .. } => {
                self.allocs.insert(*base, (*bytes).max(1));
            }
            Event::Free { base } => {
                self.allocs.remove(base);
            }
            Event::Migration { page, to, bytes } => {
                let Some(alloc) = ev.ctx.alloc else { return };
                let dir = to.is_gpu();
                let st = self.ping.entry(alloc).or_default();
                let flip = st.on_gpu.insert(*page, dir).is_some_and(|prev| prev != dir);
                // Expire stale state before absorbing new evidence.
                if st.open.as_ref().is_some_and(|b| t - b.end_ns > quiet) {
                    self.done.push(st.open.take().unwrap().seal(false));
                }
                if st.pending.last().is_some_and(|&(pt, ..)| t - pt > quiet) {
                    st.pending.clear();
                }
                if let Some(b) = &mut st.open {
                    b.absorb(t, ev.cost_ns, Some(*page), *bytes);
                    if flip {
                        b.trips += 1;
                    }
                } else if flip {
                    st.pending.push((t, ev.cost_ns, Some(*page), *bytes));
                    if st.pending.len() as u32 >= self.cfg.min_flips {
                        let mut b = Build::new(EpisodeKind::PingPong, Some(alloc), st.pending[0].0);
                        for &(pt, pc, pp, pb) in &st.pending {
                            b.absorb(pt, pc, pp, pb);
                            b.trips += 1;
                        }
                        st.pending.clear();
                        st.open = Some(b);
                    }
                }
            }
            Event::PageFault { page, .. } | Event::Invalidate { page, .. } => {
                // Overhead charged to an allocation mid-episode belongs to
                // the episode (the ping-pong cost is mostly fault service).
                let Some(alloc) = ev.ctx.alloc else { return };
                if let Some(st) = self.ping.get_mut(&alloc) {
                    if st.open.as_ref().is_some_and(|b| t - b.end_ns > quiet) {
                        self.done.push(st.open.take().unwrap().seal(false));
                    } else if let Some(b) = &mut st.open {
                        b.absorb(t, ev.cost_ns, Some(*page), 0);
                    }
                }
            }
            Event::Evict {
                pages,
                writeback_bytes,
                ..
            } => {
                if self
                    .thrash_open
                    .as_ref()
                    .is_some_and(|b| t - b.end_ns > quiet)
                {
                    self.done.push(self.thrash_open.take().unwrap().seal(false));
                }
                if self
                    .thrash_pending
                    .last()
                    .is_some_and(|&(pt, ..)| t - pt > quiet)
                {
                    self.thrash_pending.clear();
                }
                if let Some(b) = &mut self.thrash_open {
                    b.absorb(t, ev.cost_ns, None, *writeback_bytes);
                    b.trips += *pages as u64;
                } else {
                    self.thrash_pending
                        .push((t, ev.cost_ns, None, *writeback_bytes));
                    if self.thrash_pending.len() as u32 >= self.cfg.min_evictions {
                        let mut b =
                            Build::new(EpisodeKind::EvictionThrash, None, self.thrash_pending[0].0);
                        for &(pt, pc, pp, pb) in &self.thrash_pending {
                            b.absorb(pt, pc, pp, pb);
                            b.trips += 1;
                        }
                        // Pending entries each counted one evict event; keep
                        // trips in evicted-page units from here on.
                        self.thrash_pending.clear();
                        self.thrash_open = Some(b);
                    }
                }
            }
            Event::Memcpy {
                dst,
                src,
                bytes,
                kind,
                start_ns,
                end_ns,
                ..
            } => {
                let (endpoint, h2d) = match kind {
                    CopyKind::HostToDevice => (*dst, true),
                    CopyKind::DeviceToHost => (*src, false),
                    _ => return,
                };
                let Some(alloc) = self.alloc_of(endpoint) else {
                    return;
                };
                let cost = ev.cost_ns;
                let seq = self.kernel_seq;
                let key = (alloc, h2d);
                let repeat = self.copies.get(&key).is_some_and(|st| st.kernel_seq == seq);
                if repeat {
                    // Second same-direction copy with no kernel between:
                    // redundant. Open (or extend) the episode from the
                    // *first* copy of the pair.
                    let st = self.copies.get_mut(&key).unwrap();
                    let (first_t, first_cost) = (st.last_t, st.last_cost);
                    let b = st.open.get_or_insert_with(|| {
                        let mut b =
                            Build::new(EpisodeKind::RedundantTransfer, Some(alloc), first_t);
                        b.absorb(first_t, first_cost, None, 0);
                        b
                    });
                    b.absorb(*end_ns, cost, None, *bytes);
                    b.trips += 1;
                    st.last_t = *start_ns;
                    st.last_cost = cost;
                } else {
                    // Direction/allocation seen fresh (or a kernel ran
                    // since): previous open episode, if any, is over.
                    if let Some(st) = self.copies.get_mut(&key) {
                        if let Some(b) = st.open.take() {
                            self.done.push(b.seal(false));
                        }
                    }
                    self.copies.insert(
                        key,
                        CopyState {
                            last_t: *start_ns,
                            last_cost: cost,
                            kernel_seq: seq,
                            open: None,
                        },
                    );
                }
            }
            Event::KernelBegin { .. } => {
                self.kernel_seq += 1;
                // A kernel ends every open redundant-transfer episode: the
                // data is (potentially) consumed/recomputed now.
                let builds: Vec<Build> = self
                    .copies
                    .values_mut()
                    .filter_map(|st| st.open.take())
                    .collect();
                for b in builds {
                    self.done.push(b.seal(false));
                }
            }
            _ => {}
        }
    }
}

fn sort_episodes(eps: &mut [Episode]) {
    eps.sort_by(|a, b| {
        a.start_ns
            .total_cmp(&b.start_ns)
            .then(a.kind.label().cmp(b.kind.label()))
            .then(a.alloc.cmp(&b.alloc))
    });
}

impl MemHook for OnlineAnalyzer {
    // The analyzer listens only to the structured stream.
    fn on_alloc(&mut self, _base: Addr, _size: u64, _kind: AllocKind) {}
    fn on_free(&mut self, _base: Addr) {}
    fn on_read(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    fn on_write(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    fn on_access_range(&mut self, _: Device, _: Addr, _: u32, _: u64, _: AccessKind) {}
    fn on_memcpy(&mut self, _dst: Addr, _src: Addr, _bytes: u64, _kind: CopyKind) {}
    fn on_kernel_launch(&mut self, _name: &str) {}

    fn on_event(&mut self, ev: &TimedEvent) {
        self.ingest(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::AttrCtx;

    fn ctx(alloc: Addr) -> AttrCtx {
        AttrCtx {
            alloc: Some(alloc),
            ..AttrCtx::host()
        }
    }

    fn ev(t: f64, cost: f64, ctx: AttrCtx, event: Event) -> TimedEvent {
        TimedEvent {
            t_ns: t,
            cost_ns: cost,
            ctx,
            event,
        }
    }

    fn migrate(t: f64, alloc: Addr, page: u64, to: Device) -> TimedEvent {
        ev(
            t,
            30_000.0,
            ctx(alloc),
            Event::Migration {
                page,
                to,
                bytes: 65_536,
            },
        )
    }

    #[test]
    fn ping_pong_episode_opens_after_min_flips_and_spans_the_flips() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let base = 0x10_0000;
        // First placement (no flip), then 4 direction flips 10 µs apart.
        let mut t = 0.0;
        let mut dir = Device::GPU0;
        for _ in 0..5 {
            MemHook::on_event(&mut a, &migrate(t, base, 7, dir));
            t += 10_000.0;
            dir = if dir == Device::Cpu {
                Device::GPU0
            } else {
                Device::Cpu
            };
        }
        a.finish();
        let eps = a.episodes();
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.kind, EpisodeKind::PingPong);
        assert_eq!(e.alloc, Some(base));
        assert_eq!(e.start_ns, 10_000.0, "episode starts at the first flip");
        assert_eq!(e.end_ns, 40_000.0);
        assert!(e.span_ns() > 0.0);
        assert_eq!(e.trips, 4);
        assert_eq!(e.pages, 1);
        assert_eq!(e.cost_ns, 4.0 * 30_000.0);
        assert!(!e.active);
    }

    #[test]
    fn quiet_gap_splits_episodes_and_two_flips_never_open_one() {
        let cfg = OnlineConfig {
            min_flips: 2,
            quiet_ns: 50_000.0,
            ..OnlineConfig::default()
        };
        let mut a = OnlineAnalyzer::new(cfg);
        let base = 0x10_0000;
        // Burst one: 3 flips. Long silence. Burst two: 3 flips.
        let mut dir = Device::GPU0;
        for (i, t) in [0.0, 1e4, 2e4, 3e4, 1e6, 1.01e6, 1.02e6, 1.03e6]
            .iter()
            .enumerate()
        {
            let _ = i;
            MemHook::on_event(&mut a, &migrate(*t, base, 3, dir));
            dir = if dir == Device::Cpu {
                Device::GPU0
            } else {
                Device::Cpu
            };
        }
        a.finish();
        assert_eq!(a.episodes().len(), 2, "silence closed the first episode");
        assert!(a.episodes().iter().all(|e| e.kind == EpisodeKind::PingPong));

        // A single flip below the threshold never opens an episode.
        let mut b = OnlineAnalyzer::new(OnlineConfig::default());
        MemHook::on_event(&mut b, &migrate(0.0, base, 3, Device::GPU0));
        MemHook::on_event(&mut b, &migrate(1e4, base, 3, Device::Cpu));
        b.finish();
        assert!(b.episodes().is_empty());
    }

    #[test]
    fn faults_inside_an_open_episode_are_charged_to_it() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let base = 0x10_0000;
        let mut dir = Device::GPU0;
        for i in 0..4 {
            MemHook::on_event(&mut a, &migrate(i as f64 * 1e4, base, 1, dir));
            dir = if dir == Device::Cpu {
                Device::GPU0
            } else {
                Device::Cpu
            };
        }
        // Episode is open (3 flips); a fault on the allocation adds cost.
        MemHook::on_event(
            &mut a,
            &ev(
                4e4,
                25_000.0,
                ctx(base),
                Event::PageFault {
                    dev: Device::GPU0,
                    page: 2,
                    write: false,
                },
            ),
        );
        a.finish();
        let e = &a.episodes()[0];
        assert_eq!(e.cost_ns, 3.0 * 30_000.0 + 25_000.0);
        assert_eq!(e.pages, 2);
    }

    #[test]
    fn eviction_burst_becomes_a_thrash_episode() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        for i in 0..6u32 {
            MemHook::on_event(
                &mut a,
                &ev(
                    i as f64 * 5_000.0,
                    8_000.0,
                    AttrCtx::host(),
                    Event::Evict {
                        pages: 2,
                        bytes: 131_072,
                        writeback_pages: 1,
                        writeback_bytes: 65_536,
                    },
                ),
            );
        }
        a.finish();
        let eps: Vec<_> = a
            .episodes()
            .iter()
            .filter(|e| e.kind == EpisodeKind::EvictionThrash)
            .collect();
        assert_eq!(eps.len(), 1);
        assert!(eps[0].span_ns() > 0.0);
        assert!(eps[0].trips >= 4);
        assert_eq!(eps[0].alloc, None);
    }

    #[test]
    fn back_to_back_h2d_copies_without_kernel_are_redundant() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let dev_base = 0x20_0000u64;
        MemHook::on_event(
            &mut a,
            &ev(
                0.0,
                0.0,
                AttrCtx::host(),
                Event::Alloc {
                    base: dev_base,
                    bytes: 4096,
                    kind: AllocKind::Device(0),
                },
            ),
        );
        let copy = |t: f64| {
            ev(
                t,
                12_000.0,
                AttrCtx::host(),
                Event::Memcpy {
                    dst: dev_base,
                    src: 0x30_0000,
                    bytes: 4096,
                    kind: CopyKind::HostToDevice,
                    stream: hetsim::DEFAULT_STREAM,
                    start_ns: t,
                    end_ns: t + 12_000.0,
                },
            )
        };
        MemHook::on_event(&mut a, &copy(0.0));
        MemHook::on_event(&mut a, &copy(20_000.0));
        a.finish();
        let eps = a.episodes();
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].kind, EpisodeKind::RedundantTransfer);
        assert_eq!(eps[0].alloc, Some(dev_base));
        assert_eq!(eps[0].trips, 1);
        assert!(eps[0].span_ns() > 0.0);

        // With a kernel launch between the copies: no episode.
        let mut b = OnlineAnalyzer::new(OnlineConfig::default());
        MemHook::on_event(
            &mut b,
            &ev(
                0.0,
                0.0,
                AttrCtx::host(),
                Event::Alloc {
                    base: dev_base,
                    bytes: 4096,
                    kind: AllocKind::Device(0),
                },
            ),
        );
        MemHook::on_event(&mut b, &copy(0.0));
        MemHook::on_event(
            &mut b,
            &ev(
                15_000.0,
                0.0,
                AttrCtx::host(),
                Event::KernelBegin { name: "k".into() },
            ),
        );
        MemHook::on_event(&mut b, &copy(20_000.0));
        b.finish();
        assert!(b.episodes().is_empty());
    }

    #[test]
    fn snapshot_reports_open_episodes_as_active() {
        let mut a = OnlineAnalyzer::new(OnlineConfig::default());
        let base = 0x10_0000;
        let mut dir = Device::GPU0;
        for i in 0..4 {
            MemHook::on_event(&mut a, &migrate(i as f64 * 1e4, base, 1, dir));
            dir = if dir == Device::Cpu {
                Device::GPU0
            } else {
                Device::Cpu
            };
        }
        let snap = a.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].active);
        assert!(a.episodes().is_empty(), "not sealed yet");
        a.finish();
        assert_eq!(a.episodes().len(), 1);
        assert!(!a.episodes()[0].active);
        a.finish(); // idempotent
        assert_eq!(a.episodes().len(), 1);
    }
}
