//! Anti-pattern 3: unnecessary data transfers (paper §III-A/§III-C), plus
//! the derived findings the evaluation reports in Table II (unused
//! allocations, round-trip copies of unmodified data, transfers
//! overwritten before use).
//!
//! The detector works on `cudaMalloc` memory that was populated or drained
//! by explicit `cudaMemcpy`: it scans the transferred ranges for
//! contiguous word runs that the GPU never consumed (inbound) or never
//! produced (outbound).

use hetsim::AllocKind;

use crate::antipattern::{AnalysisConfig, Finding};
use crate::flags::AccessFlags;
use crate::smt::{SmtEntry, WORD_BYTES};

/// Word-index coverage of a list of byte ranges.
fn coverage(e: &SmtEntry, ranges: &[(u64, u64)]) -> Vec<bool> {
    let mut cov = vec![false; e.words()];
    for &(off, len) in ranges {
        if len == 0 {
            continue;
        }
        let first = (off / WORD_BYTES) as usize;
        let last = (((off + len - 1) / WORD_BYTES) as usize).min(cov.len().saturating_sub(1));
        for c in &mut cov[first..=last] {
            *c = true;
        }
    }
    cov
}

/// Contiguous `true` runs of at least `min_len`, as `(start, len)`.
fn runs(mask: &[bool], min_len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, &m) in mask.iter().enumerate() {
        match (m, start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                if i - s >= min_len {
                    out.push((s, i - s));
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if mask.len() - s >= min_len {
            out.push((s, mask.len() - s));
        }
    }
    out
}

/// Detect unnecessary-transfer findings on one allocation.
pub fn detect(e: &SmtEntry, cfg: &AnalysisConfig) -> Vec<Finding> {
    let mut out = Vec::new();

    // Unused allocation: nothing — not even a transfer — touched it.
    if !e.shadow.iter().any(|w| w.touched()) {
        if e.kind != AllocKind::Host && e.size > 0 {
            out.push(Finding::UnusedAllocation {
                name: e.display_name(),
                base: e.base,
                size: e.size,
            });
        }
        return out;
    }

    // The transfer analysis proper applies to cudaMalloc memory fed by
    // explicit copies (§III-A: "Memory allocated with cudaMalloc").
    if !matches!(e.kind, AllocKind::Device(_)) {
        return out;
    }

    let min = cfg.min_transfer_run_words.max(1);

    if !e.copied_in.is_empty() {
        let cov_in = coverage(e, &e.copied_in);
        // Inbound words the GPU never read nor wrote.
        let dead: Vec<bool> = cov_in
            .iter()
            .zip(&e.shadow)
            .map(|(&c, w)| c && !w.gpu_touched())
            .collect();
        for (off, len) in runs(&dead, min) {
            out.push(Finding::TransferredNeverAccessed {
                name: e.display_name(),
                base: e.base,
                off_words: off,
                len_words: len,
            });
        }
        // Inbound words the GPU wrote without ever reading the
        // transferred value: the copy was wasted even though the memory
        // is used.
        let clobbered: Vec<bool> = cov_in
            .iter()
            .zip(&e.shadow)
            .map(|(&c, w)| c && w.get(AccessFlags::GPU_WROTE) && !w.get(AccessFlags::R_CG))
            .collect();
        for (off, len) in runs(&clobbered, min) {
            out.push(Finding::TransferredOverwritten {
                name: e.display_name(),
                base: e.base,
                off_words: off,
                len_words: len,
            });
        }
    }

    if !e.copied_out.is_empty() {
        let cov_out = coverage(e, &e.copied_out);
        // Outbound words the GPU never modified.
        let stale: Vec<bool> = cov_out
            .iter()
            .zip(&e.shadow)
            .map(|(&c, w)| c && !w.get(AccessFlags::GPU_WROTE))
            .collect();
        for (off, len) in runs(&stale, min) {
            out.push(Finding::TransferredOutUnmodified {
                name: e.display_name(),
                base: e.base,
                off_words: off,
                len_words: len,
            });
        }
        // The whole buffer made a round trip with zero GPU writes.
        if !e.copied_in.is_empty() && !e.shadow.iter().any(|w| w.get(AccessFlags::GPU_WROTE)) {
            out.push(Finding::RoundTripUnmodified {
                name: e.display_name(),
                base: e.base,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::{CopyKind, Device, MemHook};

    const GPU: Device = Device::GPU0;
    const DEV_BASE: u64 = 0x20_0000;
    const HOST_BASE: u64 = 0x10_0000;

    fn setup(bytes: u64) -> Tracer {
        let mut t = Tracer::new();
        t.on_alloc(HOST_BASE, bytes, AllocKind::Host);
        t.on_alloc(DEV_BASE, bytes, AllocKind::Device(0));
        t
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig {
            min_transfer_run_words: 4,
            ..AnalysisConfig::default()
        }
    }

    fn detect_dev(t: &Tracer) -> Vec<Finding> {
        detect(t.smt.lookup(DEV_BASE).unwrap(), &cfg())
    }

    #[test]
    fn fully_consumed_transfer_is_clean() {
        let mut t = setup(1024);
        t.on_memcpy(DEV_BASE, HOST_BASE, 1024, CopyKind::HostToDevice);
        for w in 0..256 {
            t.trace_r(GPU, DEV_BASE + w * 4, 4);
        }
        assert!(detect_dev(&t).is_empty());
    }

    #[test]
    fn untouched_transfer_tail_flagged() {
        let mut t = setup(1024);
        t.on_memcpy(DEV_BASE, HOST_BASE, 1024, CopyKind::HostToDevice);
        // GPU only reads the first 64 of 256 words.
        for w in 0..64 {
            t.trace_r(GPU, DEV_BASE + w * 4, 4);
        }
        let f = detect_dev(&t);
        assert!(
            f.iter().any(|f| matches!(
                f,
                Finding::TransferredNeverAccessed {
                    off_words: 64,
                    len_words: 192,
                    ..
                }
            )),
            "findings: {f:?}"
        );
    }

    #[test]
    fn short_gaps_below_min_run_ignored() {
        let mut t = setup(256); // 64 words
        t.on_memcpy(DEV_BASE, HOST_BASE, 256, CopyKind::HostToDevice);
        // GPU reads everything except words 10 and 11 (a 2-run < min 4).
        for w in 0..64 {
            if w != 10 && w != 11 {
                t.trace_r(GPU, DEV_BASE + w * 4, 4);
            }
        }
        assert!(detect_dev(&t).is_empty());
    }

    #[test]
    fn transfer_out_of_unmodified_data_flagged() {
        // The Backprop input_cuda pattern: in, read, out — never written.
        let mut t = setup(512);
        t.on_memcpy(DEV_BASE, HOST_BASE, 512, CopyKind::HostToDevice);
        for w in 0..128 {
            t.trace_r(GPU, DEV_BASE + w * 4, 4);
        }
        t.on_memcpy(HOST_BASE, DEV_BASE, 512, CopyKind::DeviceToHost);
        let f = detect_dev(&t);
        assert!(f
            .iter()
            .any(|f| matches!(f, Finding::TransferredOutUnmodified { len_words: 128, .. })));
        assert!(f
            .iter()
            .any(|f| matches!(f, Finding::RoundTripUnmodified { .. })));
    }

    #[test]
    fn overwritten_before_read_flagged() {
        // The Gaussian m_cuda pattern: transferred in, then every word is
        // written by the GPU before being read.
        let mut t = setup(256);
        t.on_memcpy(DEV_BASE, HOST_BASE, 256, CopyKind::HostToDevice);
        for w in 0..64 {
            t.trace_w(GPU, DEV_BASE + w * 4, 4);
            t.trace_r(GPU, DEV_BASE + w * 4, 4); // reads its own value: G>G
        }
        let f = detect_dev(&t);
        assert!(f
            .iter()
            .any(|f| matches!(f, Finding::TransferredOverwritten { len_words: 64, .. })));
    }

    #[test]
    fn consumed_then_written_not_flagged_as_overwritten() {
        let mut t = setup(256);
        t.on_memcpy(DEV_BASE, HOST_BASE, 256, CopyKind::HostToDevice);
        for w in 0..64 {
            t.trace_r(GPU, DEV_BASE + w * 4, 4); // consumes transfer (C>G)
            t.trace_w(GPU, DEV_BASE + w * 4, 4);
        }
        assert!(detect_dev(&t).is_empty());
    }

    #[test]
    fn unused_allocation_flagged() {
        // The Backprop output_hidden_cuda pattern.
        let t = setup(4096);
        let f = detect_dev(&t);
        assert!(matches!(
            f.as_slice(),
            [Finding::UnusedAllocation { size: 4096, .. }]
        ));
    }

    #[test]
    fn host_allocations_not_analyzed() {
        let t = setup(256);
        let f = detect(t.smt.lookup(HOST_BASE).unwrap(), &cfg());
        assert!(f.is_empty());
    }

    #[test]
    fn runs_helper_edge_cases() {
        assert_eq!(runs(&[], 1), vec![]);
        assert_eq!(runs(&[true, true, true], 1), vec![(0, 3)]);
        assert_eq!(runs(&[false, true, true, false, true], 2), vec![(1, 2)]);
        assert_eq!(runs(&[true, false, true, true], 1), vec![(0, 1), (2, 2)]);
    }
}
