//! Diagnostic output: the summative per-allocation statistics of the
//! paper's `tracePrint` (Fig. 4), in both textual and CSV form.

use std::fmt::Write as _;

use hetsim::{Addr, AllocKind};

use crate::flags::AccessFlags;
use crate::smt::{Smt, SmtEntry};
use crate::tracer::Tracer;

/// Summative access statistics for one allocation over the current epoch.
///
/// All counts are *distinct word addresses* — "multiple writes to the same
/// address by the same device are counted as one" (paper §III-D).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocSummary {
    /// Display name (user label or address).
    pub name: String,
    pub base: Addr,
    pub size: u64,
    pub kind: AllocKind,
    /// Whether the user attached a name via the diagnostic pragma.
    pub named: bool,
    /// Words written by the CPU (`C` column).
    pub writes_c: usize,
    /// Words written by a GPU (`G` column).
    pub writes_g: usize,
    /// Words read whose value was written by the CPU and read by the CPU.
    pub r_cc: usize,
    /// CPU-written, GPU-read (`C>G`).
    pub r_cg: usize,
    /// GPU-written, CPU-read (`G>C`).
    pub r_gc: usize,
    /// GPU-written, GPU-read (`G>G`).
    pub r_gg: usize,
    /// Fraction of words accessed at least once, in percent.
    pub density_pct: f64,
    /// Words matching the alternating-access anti-pattern.
    pub alternating: usize,
    /// Whether the allocation is still live (false: freed this epoch,
    /// shadow retained for this diagnostic).
    pub live: bool,
}

impl AllocSummary {
    /// Whether anything touched this allocation during the epoch.
    pub fn touched(&self) -> bool {
        self.writes_c + self.writes_g + self.r_cc + self.r_cg + self.r_gc + self.r_gg > 0
    }
}

/// Compute the summary of one SMT entry.
pub fn summarize_entry(e: &SmtEntry) -> AllocSummary {
    let mut s = AllocSummary {
        name: e.display_name(),
        base: e.base,
        size: e.size,
        kind: e.kind,
        named: e.label.is_some(),
        writes_c: 0,
        writes_g: 0,
        r_cc: 0,
        r_cg: 0,
        r_gc: 0,
        r_gg: 0,
        density_pct: 0.0,
        alternating: 0,
        live: e.live,
    };
    let mut touched = 0usize;
    for w in &e.shadow {
        if w.touched() {
            touched += 1;
        }
        if w.get(AccessFlags::CPU_WROTE) {
            s.writes_c += 1;
        }
        if w.get(AccessFlags::GPU_WROTE) {
            s.writes_g += 1;
        }
        if w.get(AccessFlags::R_CC) {
            s.r_cc += 1;
        }
        if w.get(AccessFlags::R_CG) {
            s.r_cg += 1;
        }
        if w.get(AccessFlags::R_GC) {
            s.r_gc += 1;
        }
        if w.get(AccessFlags::R_GG) {
            s.r_gg += 1;
        }
        if w.alternating() {
            s.alternating += 1;
        }
    }
    if !e.shadow.is_empty() {
        s.density_pct = 100.0 * touched as f64 / e.shadow.len() as f64;
    }
    s
}

/// Summarize the whole table, in allocation order. When `named_only` is
/// set, only allocations registered through the diagnostic pragma appear —
/// matching the paper's "checking N *named* allocations".
pub fn summarize(smt: &Smt, named_only: bool) -> Vec<AllocSummary> {
    let mut entries: Vec<&SmtEntry> = smt
        .iter()
        .filter(|e| !named_only || e.label.is_some())
        .collect();
    entries.sort_by_key(|e| e.serial);
    entries.into_iter().map(summarize_entry).collect()
}

/// Render summaries in the layout of the paper's Fig. 4.
pub fn format_fig4(summaries: &[AllocSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*** checking {} named allocations", summaries.len());
    for s in summaries {
        let _ = writeln!(out, "{}", s.name);
        let _ = writeln!(out, "write counts                    write>read counts");
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>12} {:>8} {:>8} {:>8}",
            "C", "G", "C>C", "C>G", "G>C", "G>G"
        );
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>12} {:>8} {:>8} {:>8}",
            s.writes_c, s.writes_g, s.r_cc, s.r_cg, s.r_gc, s.r_gg
        );
        let _ = writeln!(
            out,
            "access density (in %): {}",
            s.density_pct.round() as i64
        );
        let _ = writeln!(out, "{} elements with alternating accesses", s.alternating);
        let _ = writeln!(out);
    }
    out
}

/// Render summaries as comma-separated rows ("raw comma-separated files
/// for further processing", paper §III-D).
pub fn to_csv(summaries: &[AllocSummary]) -> String {
    let mut out = String::from(
        "name,base,size,kind,writes_c,writes_g,r_cc,r_cg,r_gc,r_gg,density_pct,alternating,live\n",
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{},0x{:x},{},{},{},{},{},{},{},{},{:.2},{},{}",
            s.name,
            s.base,
            s.size,
            s.kind.api_name(),
            s.writes_c,
            s.writes_g,
            s.r_cc,
            s.r_cg,
            s.r_gc,
            s.r_gg,
            s.density_pct,
            s.alternating,
            s.live
        );
    }
    out
}

/// The paper's `tracePrint`: summarize, render, then reset the shadow
/// memory and release deferred frees (a new epoch begins).
pub fn trace_print(tracer: &mut Tracer, out: &mut dyn std::io::Write, named_only: bool) {
    let summaries = summarize(&tracer.smt, named_only);
    let _ = out.write_all(format_fig4(&summaries).as_bytes());
    tracer.end_epoch();
}

/// Like [`trace_print`] but returns the summaries instead of printing, and
/// still advances the epoch. Harnesses use this to capture per-iteration
/// data.
pub fn trace_collect(tracer: &mut Tracer, named_only: bool) -> Vec<AllocSummary> {
    let summaries = summarize(&tracer.smt, named_only);
    tracer.end_epoch();
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::Device;

    const GPU: Device = Device::GPU0;

    fn demo_tracer() -> Tracer {
        use hetsim::MemHook;
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 400, AllocKind::Managed); // 100 words
        t.name(0x10_0000, "dom");
        // CPU writes 27 words.
        for i in 0..27 {
            t.trace_w(Device::Cpu, 0x10_0000 + 4 * i, 4);
        }
        // GPU reads 4 of them: C>G.
        for i in 0..4 {
            t.trace_r(GPU, 0x10_0000 + 4 * i, 4);
        }
        t
    }

    #[test]
    fn summary_counts_distinct_words() {
        let mut t = demo_tracer();
        // Write the same word many times: still one.
        for _ in 0..10 {
            t.trace_w(Device::Cpu, 0x10_0000, 4);
        }
        let s = &summarize(&t.smt, false)[0];
        assert_eq!(s.writes_c, 27);
        assert_eq!(s.writes_g, 0);
        assert_eq!(s.r_cg, 4);
        assert_eq!(s.alternating, 4); // CPU wrote + GPU read those 4
    }

    #[test]
    fn density_is_touched_over_total() {
        let t = demo_tracer();
        let s = &summarize(&t.smt, false)[0];
        assert!((s.density_pct - 27.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_layout_contains_expected_lines() {
        let t = demo_tracer();
        let txt = format_fig4(&summarize(&t.smt, true));
        assert!(txt.contains("*** checking 1 named allocations"));
        assert!(txt.contains("dom"));
        assert!(txt.contains("write counts"));
        assert!(txt.contains("C>C"));
        assert!(txt.contains("access density (in %): 27"));
        assert!(txt.contains("4 elements with alternating accesses"));
    }

    #[test]
    fn named_only_filters() {
        use hetsim::MemHook;
        let mut t = demo_tracer();
        t.on_alloc(0x20_0000, 64, AllocKind::Host); // unnamed
        assert_eq!(summarize(&t.smt, true).len(), 1);
        assert_eq!(summarize(&t.smt, false).len(), 2);
    }

    #[test]
    fn trace_print_resets_epoch() {
        let mut t = demo_tracer();
        let mut sink = Vec::new();
        trace_print(&mut t, &mut sink, true);
        assert!(!sink.is_empty());
        let s = &summarize(&t.smt, false)[0];
        assert!(!s.touched());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = demo_tracer();
        let csv = to_csv(&summarize(&t.smt, false));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("name,base"));
        assert!(lines[1].starts_with("dom,0x100000,400,cudaMallocManaged,27,0"));
    }

    #[test]
    fn summary_of_freed_allocation_still_reported() {
        use hetsim::MemHook;
        let mut t = demo_tracer();
        t.on_free(0x10_0000);
        let s = &summarize(&t.smt, false)[0];
        assert!(!s.live);
        assert_eq!(s.writes_c, 27); // shadow survived the free
    }
}
