//! The per-word shadow byte: seven bits of access history (paper §III-C).
//!
//! The paper's runtime stores, per 32-bit word of traced memory, one byte
//! recording which processor wrote, which processor last wrote, and which
//! reader/origin combinations occurred. The four read bits correspond
//! exactly to the `C>C  C>G  G>C  G>G` columns of the diagnostic output
//! (Fig. 4), where the notation is *writer* `>` *reader*.

use hetsim::Device;

/// Shadow flags for one 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessFlags(pub u8);

impl AccessFlags {
    /// The CPU wrote this word.
    pub const CPU_WROTE: u8 = 1 << 0;
    /// A GPU wrote this word.
    pub const GPU_WROTE: u8 = 1 << 1;
    /// The most recent write came from a GPU (meaningful only if a write
    /// bit is set; 0 otherwise).
    pub const LAST_WRITER_GPU: u8 = 1 << 2;
    /// CPU-written value was read by the CPU (`C>C`).
    pub const R_CC: u8 = 1 << 3;
    /// CPU-written value was read by a GPU (`C>G`).
    pub const R_CG: u8 = 1 << 4;
    /// GPU-written value was read by the CPU (`G>C`).
    pub const R_GC: u8 = 1 << 5;
    /// GPU-written value was read by a GPU (`G>G`).
    pub const R_GG: u8 = 1 << 6;

    /// All seven meaningful bits.
    pub const ALL: u8 = 0x7F;

    /// Fresh, untouched word.
    pub fn new() -> Self {
        AccessFlags(0)
    }

    #[inline]
    pub fn get(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// Record a write by `dev`.
    #[inline]
    pub fn record_write(&mut self, dev: Device) {
        match dev {
            Device::Cpu => {
                self.0 |= Self::CPU_WROTE;
                self.0 &= !Self::LAST_WRITER_GPU;
            }
            Device::Gpu(_) => {
                self.0 |= Self::GPU_WROTE | Self::LAST_WRITER_GPU;
            }
        }
    }

    /// Record a read by `dev`. The value's origin is the last writer; a
    /// never-written word reads its allocation-time contents, which the
    /// host populated, so its origin counts as CPU.
    #[inline]
    pub fn record_read(&mut self, dev: Device) {
        let origin_gpu = self.get(Self::LAST_WRITER_GPU);
        let bit = match (origin_gpu, dev) {
            (false, Device::Cpu) => Self::R_CC,
            (false, Device::Gpu(_)) => Self::R_CG,
            (true, Device::Cpu) => Self::R_GC,
            (true, Device::Gpu(_)) => Self::R_GG,
        };
        self.0 |= bit;
    }

    /// Whether a read by `dev` would change nothing: the read bit for
    /// the current origin/reader pair is already set. Used by the bulk
    /// tracer to skip spans whose flags are saturated.
    #[inline]
    pub fn read_saturated(self, dev: Device) -> bool {
        let origin_gpu = self.get(Self::LAST_WRITER_GPU);
        let bit = match (origin_gpu, dev) {
            (false, Device::Cpu) => Self::R_CC,
            (false, Device::Gpu(_)) => Self::R_CG,
            (true, Device::Cpu) => Self::R_GC,
            (true, Device::Gpu(_)) => Self::R_GG,
        };
        self.get(bit)
    }

    /// Whether a write by `dev` would change nothing: `dev`'s side wrote
    /// before and is still the last writer.
    #[inline]
    pub fn write_saturated(self, dev: Device) -> bool {
        match dev {
            Device::Cpu => self.get(Self::CPU_WROTE) && !self.get(Self::LAST_WRITER_GPU),
            Device::Gpu(_) => self.get(Self::GPU_WROTE) && self.get(Self::LAST_WRITER_GPU),
        }
    }

    /// Whether a read-then-write by `dev` would change nothing.
    #[inline]
    pub fn rw_saturated(self, dev: Device) -> bool {
        self.write_saturated(dev) && self.read_saturated(dev)
    }

    /// Whether the word was accessed at all this epoch. The last-writer
    /// bit does not count: it may be carried over from an earlier epoch
    /// (see [`reset_epoch`](Self::reset_epoch)).
    #[inline]
    pub fn touched(self) -> bool {
        self.0 & !Self::LAST_WRITER_GPU != 0
    }

    /// Whether the CPU accessed the word (read or write).
    #[inline]
    pub fn cpu_accessed(self) -> bool {
        self.0 & (Self::CPU_WROTE | Self::R_CC | Self::R_GC) != 0
    }

    /// Whether a GPU accessed the word (read or write).
    #[inline]
    pub fn gpu_accessed(self) -> bool {
        self.0 & (Self::GPU_WROTE | Self::R_CG | Self::R_GG) != 0
    }

    /// Whether any processor wrote the word.
    #[inline]
    pub fn written(self) -> bool {
        self.0 & (Self::CPU_WROTE | Self::GPU_WROTE) != 0
    }

    /// Whether a GPU read or wrote the word — the "did the GPU consume the
    /// transfer" predicate of the unnecessary-transfer detector.
    #[inline]
    pub fn gpu_touched(self) -> bool {
        self.gpu_accessed()
    }

    /// The alternating-access anti-pattern predicate (paper §III-C):
    /// both processors accessed the word and at least one access was a
    /// write.
    #[inline]
    pub fn alternating(self) -> bool {
        self.cpu_accessed() && self.gpu_accessed() && self.written()
    }

    /// Reset for a new diagnostic epoch. Per-epoch access bits are
    /// cleared, but the last-writer bit survives: the paper defines a
    /// read's origin as "the last write to that address regardless if it
    /// occurred in the same iteration or earlier (e.g., at start up)"
    /// (§III-D).
    #[inline]
    pub fn reset_epoch(&mut self) {
        self.0 &= Self::LAST_WRITER_GPU;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GPU: Device = Device::GPU0;

    #[test]
    fn write_sets_writer_and_last_writer() {
        let mut f = AccessFlags::new();
        f.record_write(Device::Cpu);
        assert!(f.get(AccessFlags::CPU_WROTE));
        assert!(!f.get(AccessFlags::LAST_WRITER_GPU));
        f.record_write(GPU);
        assert!(f.get(AccessFlags::GPU_WROTE));
        assert!(f.get(AccessFlags::LAST_WRITER_GPU));
        // CPU write flips last-writer back without erasing GPU_WROTE.
        f.record_write(Device::Cpu);
        assert!(f.get(AccessFlags::GPU_WROTE));
        assert!(!f.get(AccessFlags::LAST_WRITER_GPU));
    }

    #[test]
    fn read_categories_follow_writer_then_reader() {
        // C>G: CPU writes, GPU reads.
        let mut f = AccessFlags::new();
        f.record_write(Device::Cpu);
        f.record_read(GPU);
        assert!(f.get(AccessFlags::R_CG));
        assert!(!f.get(AccessFlags::R_GG));

        // G>C: GPU writes, CPU reads.
        let mut f = AccessFlags::new();
        f.record_write(GPU);
        f.record_read(Device::Cpu);
        assert!(f.get(AccessFlags::R_GC));
        assert!(!f.get(AccessFlags::R_CC));
    }

    #[test]
    fn unwritten_read_counts_as_cpu_origin() {
        let mut f = AccessFlags::new();
        f.record_read(GPU);
        assert!(f.get(AccessFlags::R_CG));
        let mut f = AccessFlags::new();
        f.record_read(Device::Cpu);
        assert!(f.get(AccessFlags::R_CC));
    }

    #[test]
    fn origin_tracks_most_recent_writer() {
        let mut f = AccessFlags::new();
        f.record_write(GPU);
        f.record_write(Device::Cpu);
        f.record_read(GPU);
        // Last writer was the CPU, so this is C>G even though the GPU also
        // wrote earlier.
        assert!(f.get(AccessFlags::R_CG));
        assert!(!f.get(AccessFlags::R_GG));
    }

    #[test]
    fn alternating_requires_both_sides_and_a_write() {
        // Read-only sharing is not alternating.
        let mut f = AccessFlags::new();
        f.record_read(Device::Cpu);
        f.record_read(GPU);
        assert!(!f.alternating());

        // CPU write + GPU read is alternating.
        let mut f = AccessFlags::new();
        f.record_write(Device::Cpu);
        f.record_read(GPU);
        assert!(f.alternating());

        // GPU-only traffic is not alternating.
        let mut f = AccessFlags::new();
        f.record_write(GPU);
        f.record_read(GPU);
        assert!(!f.alternating());
    }

    #[test]
    fn accessed_predicates() {
        let mut f = AccessFlags::new();
        assert!(!f.touched());
        f.record_write(GPU);
        assert!(f.touched());
        assert!(f.gpu_accessed());
        assert!(!f.cpu_accessed());
        f.record_read(Device::Cpu);
        assert!(f.cpu_accessed());
    }

    #[test]
    fn reset_epoch_preserves_origin_only() {
        let mut f = AccessFlags::new();
        f.record_write(GPU);
        f.record_read(Device::Cpu);
        f.reset_epoch();
        assert!(!f.touched());
        // A read in the new epoch still sees GPU origin: G>C.
        f.record_read(Device::Cpu);
        assert!(f.get(AccessFlags::R_GC));
        assert!(!f.get(AccessFlags::R_CC));

        let mut f = AccessFlags::new();
        f.record_write(Device::Cpu);
        f.reset_epoch();
        f.record_read(GPU);
        assert!(f.get(AccessFlags::R_CG));
    }

    #[test]
    fn fits_in_seven_bits() {
        let mut f = AccessFlags::new();
        f.record_write(Device::Cpu);
        f.record_write(GPU);
        f.record_read(Device::Cpu);
        f.record_read(GPU);
        f.record_write(Device::Cpu);
        f.record_read(Device::Cpu);
        f.record_read(GPU);
        assert_eq!(f.0 & !AccessFlags::ALL, 0);
    }
}
