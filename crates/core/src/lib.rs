//! # xplacer-core — the XPlacer runtime library
//!
//! Reproduction of the runtime system of *"XPlacer: Automatic Analysis of
//! Data Access Patterns on Heterogeneous CPU/GPU Systems"* (Pirkelbauer et
//! al., IPDPS 2020): shadow-memory tracing of CPU and GPU heap accesses
//! and automatic detection of three memory-access anti-patterns —
//! alternating CPU/GPU accesses, low access density, and unnecessary data
//! transfers.
//!
//! The crate plugs into the [`hetsim`] simulator through the
//! [`hetsim::MemHook`] seam: attach a [`Tracer`] to a machine and every
//! heap read/write, allocation, copy, and kernel launch is recorded in
//! shadow memory (one flag byte per 32-bit word, indexed by a sorted
//! shadow memory table). Diagnostics then summarize the epoch (Fig. 4 of
//! the paper) and the detectors produce a [`Report`] of findings.
//!
//! ```
//! use hetsim::{Machine, platform};
//! use xplacer_core::{attach_tracer, antipattern::{analyze, AnalysisConfig}};
//!
//! let mut m = Machine::new(platform::intel_pascal());
//! let tracer = attach_tracer(&mut m);
//!
//! let data = m.alloc_managed::<f64>(256);
//! tracer.borrow_mut().name(data.addr, "data");
//! m.st(data, 0, 1.0);                      // CPU writes...
//! m.launch("k", 1, |_, m| { m.ld(data, 0); }); // ...GPU reads: alternating!
//!
//! let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
//! assert!(report.for_alloc("data").count() > 0);
//! ```

pub mod accessmap;
pub mod antipattern;
pub mod diagnostic;
pub mod flags;
pub mod par;
pub mod plan;
pub mod report;
pub mod smt;
pub mod suggest;
pub mod tracer;

pub use antipattern::online::{Episode, EpisodeKind, OnlineAnalyzer, OnlineConfig};
pub use antipattern::{analyze, AnalysisConfig, Finding, FindingKind};
pub use diagnostic::{
    format_fig4, summarize, summarize_entry, to_csv, trace_collect, trace_print, AllocSummary,
};
pub use flags::AccessFlags;
pub use par::{run_ordered, PoolError};
pub use plan::{enumerate_candidates, Plan, PlanAction, PlanItem};
pub use report::Report;
pub use smt::{Smt, SmtEntry, WORD_BYTES};
pub use suggest::{suggest, suggest_for, Action, Suggestion};
pub use tracer::{Tracer, XplAllocData};

use std::cell::RefCell;
use std::rc::Rc;

/// Convenience: create a tracer and attach it to a machine in one call,
/// returning the shared handle used to read the trace back.
pub fn attach_tracer(machine: &mut hetsim::Machine) -> Rc<RefCell<Tracer>> {
    let tracer = Rc::new(RefCell::new(Tracer::new()));
    machine.attach_hook(tracer.clone());
    tracer
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, Machine};

    #[test]
    fn attach_tracer_wires_the_hook() {
        let mut m = Machine::new(platform::intel_pascal());
        let t = attach_tracer(&mut m);
        let p = m.alloc_managed::<f64>(8);
        m.st(p, 0, 1.0);
        assert_eq!(t.borrow().tracked(), 1);
        let s = summarize(&t.borrow().smt, false);
        assert_eq!(s[0].writes_c, 2); // one f64 = two 32-bit words
    }
}
