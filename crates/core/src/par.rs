//! A hand-rolled fixed-worker thread pool with deterministic ordered
//! merge — the evaluation engine behind `xplacer optimize`.
//!
//! Workers pull jobs off a shared queue, so load-balancing is dynamic,
//! but results are written into a slot indexed by *submission order*:
//! the output of [`run_ordered`] is bit-identical for any worker count,
//! which is what makes parallel candidate evaluation testable (and lets
//! CI `cmp` optimizer output across `--jobs 1/2/8`).
//!
//! Panic safety: a panicking job does not poison, deadlock, or abort the
//! process. The pool drains remaining queued work, joins every worker,
//! and surfaces the first panic as a [`PoolError`] naming the failed job
//! — callers turn that into a spanned diagnostic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A job failed (panicked) inside the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the failing job.
    pub job: usize,
    /// Rendered panic payload.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked on job #{}: {}", self.job, self.message)
    }
}

impl std::error::Error for PoolError {}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f` over every input on `jobs` fixed workers and return the
/// results in submission order.
///
/// * `jobs` is clamped to `1..=inputs.len()`; `jobs == 1` still goes
///   through the same code path, so single- and multi-worker runs are
///   observably identical.
/// * If any job panics, the queue is abandoned (jobs not yet started are
///   dropped), every worker is joined, and the first panic observed is
///   returned as a [`PoolError`]. No result vector is returned in that
///   case — partial output is never handed to the caller.
pub fn run_ordered<T, R, F>(jobs: usize, inputs: Vec<T>, f: F) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let jobs = jobs.clamp(1, n);
    let queue = Mutex::new(inputs.into_iter().enumerate());
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let failed: Mutex<Option<PoolError>> = Mutex::new(None);
    let abandon = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if abandon.load(Ordering::Relaxed) {
                    break;
                }
                // Pull the next job; the lock covers only the dequeue, so
                // workers never serialize on the work itself.
                let next = queue.lock().map(|mut q| q.next()).unwrap_or(None);
                let Some((i, input)) = next else { break };
                match catch_unwind(AssertUnwindSafe(|| f(i, input))) {
                    Ok(r) => {
                        if let Ok(mut slots) = slots.lock() {
                            slots[i] = Some(r);
                        }
                    }
                    Err(p) => {
                        abandon.store(true, Ordering::Relaxed);
                        if let Ok(mut failed) = failed.lock() {
                            failed.get_or_insert(PoolError {
                                job: i,
                                message: panic_text(p),
                            });
                        }
                        break;
                    }
                }
            });
        }
    });

    if let Some(e) = failed.into_inner().unwrap_or(None) {
        return Err(e);
    }
    let slots = slots.into_inner().expect("no panics held the slot lock");
    // Every slot is filled: the scope joined all workers and none failed.
    Ok(slots
        .into_iter()
        .map(|r| r.expect("pool slot filled"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_ordered(4, inputs, |i, x| {
            // Stagger so completion order differs from submission order.
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        })
        .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn output_identical_across_worker_counts() {
        let run = |jobs| {
            run_ordered(jobs, (0..64u64).collect(), |i, x| {
                format!("{i}:{}", x.wrapping_mul(0x9e3779b9))
            })
            .unwrap()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
        assert_eq!(one, run(64));
    }

    #[test]
    fn empty_input_is_a_noop() {
        let out: Vec<u32> = run_ordered(8, Vec::<u32>::new(), |_, x| x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn oversized_job_count_is_clamped() {
        let out = run_ordered(1000, vec![1, 2, 3], |_, x| x + 1).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn panicking_worker_fails_the_run_without_hanging() {
        let r: Result<Vec<u32>, _> = run_ordered(4, (0..32).collect(), |i, x| {
            if i == 7 {
                panic!("boom at {i}");
            }
            x
        });
        let e = r.expect_err("panic must surface as PoolError");
        assert_eq!(e.job, 7);
        assert!(e.message.contains("boom at 7"), "{e}");
        assert!(e.to_string().contains("job #7"), "{e}");
    }

    #[test]
    fn panic_abandons_remaining_queue() {
        use std::sync::atomic::AtomicUsize;
        let started = AtomicUsize::new(0);
        let r: Result<Vec<()>, _> = run_ordered(1, (0..1000).collect::<Vec<u32>>(), |i, _| {
            started.fetch_add(1, Ordering::Relaxed);
            if i == 2 {
                panic!("early");
            }
        });
        assert!(r.is_err());
        // Single worker: jobs 0,1,2 ran, the rest were abandoned.
        assert_eq!(started.load(Ordering::Relaxed), 3);
    }
}
