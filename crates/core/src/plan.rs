//! Placement *plans*: concrete, applicable bundles of placement actions
//! derived from an epoch's shadow state.
//!
//! [`crate::suggest`] answers "what would a human do about this
//! allocation?"; this module turns those answers (plus prefetch points
//! the advisor doesn't model) into an enumerable candidate space the
//! optimizer can search over. A [`Plan`] is a canonically-ordered set of
//! per-allocation actions with a stable [`Plan::key`], so two plans built
//! from the same actions in any order compare, hash, and render
//! identically — the property the byte-deterministic optimizer report
//! rests on.

use hetsim::{AllocKind, Device, MemAdvise, Platform};

use crate::smt::Smt;
use crate::suggest::{self, Action};

/// One placement action aimed at one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanAction {
    /// Apply this `cudaMemAdvise` to the whole allocation.
    Advise(MemAdvise),
    /// Prefetch the whole allocation to `Device` before the compute
    /// phase (after setup for workloads, after the malloc for MiniCU).
    Prefetch(Device),
    /// Duplicate the object: keep the managed copy for the host, give
    /// kernels a device-only copy with explicit staging copies (the
    /// paper's LULESH remedy). Only applicable to MiniCU programs,
    /// where the source rewrite is mechanical.
    Split,
}

impl PlanAction {
    /// Rank used for canonical in-plan ordering (after base address).
    fn rank(&self) -> u8 {
        match self {
            PlanAction::Advise(_) => 0,
            PlanAction::Prefetch(_) => 1,
            PlanAction::Split => 2,
        }
    }
}

impl std::fmt::Display for PlanAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanAction::Advise(a) => write!(f, "advise {a:?}"),
            PlanAction::Prefetch(d) => write!(f, "prefetch to {d}"),
            PlanAction::Split => write!(f, "split object"),
        }
    }
}

/// A [`PlanAction`] bound to a specific allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanItem {
    /// Allocation display name (label if registered).
    pub name: String,
    /// Base address observed in the baseline trace.
    pub base: hetsim::Addr,
    /// Allocation size in bytes.
    pub size: u64,
    /// What to do.
    pub action: PlanAction,
    /// Why this candidate exists (from the advisor heuristics).
    pub rationale: String,
}

impl std::fmt::Display for PlanItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.action)
    }
}

/// A canonically-ordered set of placement actions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    items: Vec<PlanItem>,
}

impl Plan {
    /// The empty (baseline) plan.
    pub fn empty() -> Self {
        Plan::default()
    }

    /// The actions, in canonical `(base, action-rank)` order.
    pub fn items(&self) -> &[PlanItem] {
        &self.items
    }

    /// True for the baseline plan.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `item` may be added: at most one action of each kind per
    /// allocation, and `Split` is exclusive — a duplicated object has no
    /// managed pages left for hints or prefetches to act on.
    pub fn allows(&self, item: &PlanItem) -> bool {
        self.items.iter().all(|have| {
            have.base != item.base
                || (have.action.rank() != item.action.rank()
                    && have.action != PlanAction::Split
                    && item.action != PlanAction::Split)
        })
    }

    /// A new plan with `item` added, re-canonicalized.
    pub fn with(&self, item: PlanItem) -> Plan {
        let mut items = self.items.clone();
        items.push(item);
        items.sort_by_key(|a| (a.base, a.action.rank()));
        Plan { items }
    }

    /// Stable identity: equal plans (any insertion order) share a key.
    pub fn key(&self) -> String {
        if self.items.is_empty() {
            return "baseline".to_string();
        }
        let parts: Vec<String> = self
            .items
            .iter()
            .map(|i| format!("0x{:x}/{}", i.base, i.action))
            .collect();
        parts.join(";")
    }

    /// Human-facing one-liner.
    pub fn describe(&self) -> String {
        if self.items.is_empty() {
            return "baseline (no hints)".to_string();
        }
        let parts: Vec<String> = self.items.iter().map(|i| i.to_string()).collect();
        parts.join(" + ")
    }
}

/// Enumerate single-action candidates from the baseline trace.
///
/// Sources, per live managed allocation:
/// * the advisor's verdict ([`suggest::suggest_for`]) — `Advise` and
///   `Split` become candidates, `LeaveAlone` does not;
/// * a `Prefetch(GPU0)` whenever the GPU touches data the CPU wrote —
///   the hint the advisor can't express: it fixes *when* pages move, not
///   where they live.
///
/// Output order is deterministic (SMT address order, advise before
/// prefetch). `Split` candidates only make sense where a source rewrite
/// is possible; callers targeting built-in workloads filter them out.
pub fn enumerate_candidates(smt: &Smt, platform: &Platform) -> Vec<PlanItem> {
    let mut out = Vec::new();
    let advised = suggest::suggest_for(smt, platform);
    for e in smt.iter() {
        if e.kind != AllocKind::Managed || !e.live {
            continue;
        }
        let p = suggest::profile(e);
        if p.touched == 0 {
            continue;
        }
        if let Some(s) = advised.iter().find(|s| s.base == e.base) {
            match &s.action {
                Action::Advise(a) => out.push(PlanItem {
                    name: s.name.clone(),
                    base: s.base,
                    size: s.size,
                    action: PlanAction::Advise(*a),
                    rationale: s.rationale.clone(),
                }),
                Action::SplitObject => out.push(PlanItem {
                    name: s.name.clone(),
                    base: s.base,
                    size: s.size,
                    action: PlanAction::Split,
                    rationale: s.rationale.clone(),
                }),
                Action::LeaveAlone => {}
            }
        }
        let gpu_touches = p.gpu_reads + p.gpu_writes;
        if p.cpu_writes > 0 && gpu_touches > 0 {
            out.push(PlanItem {
                name: e.display_name(),
                base: e.base,
                size: e.size,
                action: PlanAction::Prefetch(Device::GPU0),
                rationale: format!(
                    "CPU writes {} words the GPU then touches ({}); move the \
                     pages ahead of the kernel instead of faulting them over",
                    p.cpu_writes, gpu_touches
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::MemHook;

    const GPU: Device = Device::GPU0;

    fn item(base: u64, action: PlanAction) -> PlanItem {
        PlanItem {
            name: format!("a{base:x}"),
            base,
            size: 64,
            action,
            rationale: String::new(),
        }
    }

    #[test]
    fn plan_key_ignores_insertion_order() {
        let a = item(0x1000, PlanAction::Advise(MemAdvise::SetReadMostly));
        let b = item(0x2000, PlanAction::Prefetch(GPU));
        let p1 = Plan::empty().with(a.clone()).with(b.clone());
        let p2 = Plan::empty().with(b).with(a);
        assert_eq!(p1.key(), p2.key());
        assert_eq!(p1, p2);
        assert_eq!(Plan::empty().key(), "baseline");
    }

    #[test]
    fn one_action_of_each_kind_per_allocation() {
        let adv = item(0x1000, PlanAction::Advise(MemAdvise::SetReadMostly));
        let pre = item(0x1000, PlanAction::Prefetch(GPU));
        let split = item(0x1000, PlanAction::Split);
        let p = Plan::empty().with(adv.clone());
        assert!(!p.allows(&adv)); // second advise on the same base
        assert!(p.allows(&pre)); // advise + prefetch combine
        assert!(!p.allows(&split)); // split is exclusive
        let ps = Plan::empty().with(split);
        assert!(!ps.allows(&adv));
        assert!(!ps.allows(&pre));
        // Different allocation is always fine.
        assert!(p.allows(&item(0x2000, PlanAction::Advise(MemAdvise::SetReadMostly))));
    }

    #[test]
    fn enumeration_covers_advice_and_prefetch() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed);
        // CPU init, GPU consume: preferred-location-or-readmostly + prefetch.
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        for i in 0..16u64 {
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        let c = enumerate_candidates(&t.smt, &hetsim::platform::intel_pascal());
        assert_eq!(c.len(), 2, "{c:?}");
        assert_eq!(c[0].action, PlanAction::Advise(MemAdvise::SetReadMostly));
        assert_eq!(c[1].action, PlanAction::Prefetch(GPU));
    }

    #[test]
    fn enumeration_skips_dead_device_and_untouched() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed); // untouched
        t.on_alloc(0x20_0000, 64, AllocKind::Device(0)); // wrong kind
        t.on_alloc(0x30_0000, 64, AllocKind::Managed); // freed below
        t.trace_w(GPU, 0x20_0000, 4);
        t.trace_w(GPU, 0x30_0000, 4);
        t.on_free(0x30_0000);
        assert!(enumerate_candidates(&t.smt, &hetsim::platform::intel_pascal()).is_empty());
    }

    #[test]
    fn gpu_only_data_gets_no_prefetch_candidate() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed);
        for i in 0..16u64 {
            t.trace_w(GPU, 0x10_0000 + i * 4, 4);
        }
        let c = enumerate_candidates(&t.smt, &hetsim::platform::intel_pascal());
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(
            c[0].action,
            PlanAction::Advise(MemAdvise::SetPreferredLocation(GPU))
        );
    }
}
