//! Aggregated analysis report: the structured counterpart of the paper's
//! textual diagnostic messages, with remedies attached.

use std::collections::BTreeMap;

use crate::antipattern::{Finding, FindingKind};

/// The result of one `analyze` run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in allocation order.
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn new(findings: Vec<Finding>) -> Self {
        Report { findings }
    }

    /// No anti-patterns detected.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// Findings of one family.
    pub fn of_kind(&self, kind: FindingKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind() == kind)
    }

    /// Count findings per family.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            let key = match f.kind() {
                FindingKind::Alternating => "alternating",
                FindingKind::LowDensity => "low-density",
                FindingKind::UnnecessaryTransfer => "unnecessary-transfer",
                FindingKind::UnusedAllocation => "unused-allocation",
            };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Findings that mention allocation `name`.
    pub fn for_alloc<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Finding> {
        self.findings.iter().filter(move |f| f.alloc_name() == name)
    }

    /// Human-readable report: each finding with its remedy.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "no possible improvements identified.\n".to_string();
        }
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("- {f}\n  remedy: {}\n", f.remedy()));
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(vec![
            Finding::AlternatingAccess {
                name: "dom".into(),
                base: 0x1000,
                elements: 18,
            },
            Finding::UnusedAllocation {
                name: "output_hidden_cuda".into(),
                base: 0x2000,
                size: 64,
            },
            Finding::RoundTripUnmodified {
                name: "input_cuda".into(),
                base: 0x3000,
            },
        ])
    }

    #[test]
    fn empty_report_matches_paper_phrase() {
        // Table II uses exactly this phrase for CFD and NN.
        assert_eq!(
            Report::default().render(),
            "no possible improvements identified.\n"
        );
    }

    #[test]
    fn counts_by_family() {
        let r = sample();
        let c = r.counts();
        assert_eq!(c["alternating"], 1);
        assert_eq!(c["unused-allocation"], 1);
        assert_eq!(c["unnecessary-transfer"], 1);
    }

    #[test]
    fn filter_by_alloc_name() {
        let r = sample();
        assert_eq!(r.for_alloc("dom").count(), 1);
        assert_eq!(r.for_alloc("nothing").count(), 0);
    }

    #[test]
    fn render_includes_remedies() {
        let txt = sample().render();
        assert!(txt.contains("18 elements"));
        assert!(txt.contains("remedy:"));
    }

    #[test]
    fn of_kind_filters() {
        let r = sample();
        assert_eq!(r.of_kind(FindingKind::Alternating).count(), 1);
        assert_eq!(r.of_kind(FindingKind::LowDensity).count(), 0);
    }
}
