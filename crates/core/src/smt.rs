//! The shadow memory table (SMT): a sorted structure mapping every traced
//! allocation to its shadow memory (paper §III-C, Fig. 3).
//!
//! Paper-faithful details kept on purpose:
//!
//! * one shadow byte per 32-bit word of traced memory (~25 % overhead);
//! * lookups use linear search while the table holds fewer than 64
//!   entries and binary search beyond that (§IV-D) — the threshold is a
//!   field so the ablation bench can sweep it;
//! * `cudaFree` releases the data immediately but the shadow memory is
//!   retained until the next diagnostic output has been computed.

use hetsim::{Addr, AllocKind};

use crate::flags::AccessFlags;

/// Bytes per shadow word (the paper shadows each 32-bit word).
pub const WORD_BYTES: u64 = 4;

/// One traced allocation and its shadow memory.
#[derive(Debug, Clone)]
pub struct SmtEntry {
    /// Base address of the allocation.
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
    /// Originating allocation API.
    pub kind: AllocKind,
    /// One flag byte per 32-bit word.
    pub shadow: Vec<AccessFlags>,
    /// User-level name attached via `XplAllocData` (diagnostic pragma).
    pub label: Option<String>,
    /// Registration order.
    pub serial: u64,
    /// False once freed; the entry then survives until the next
    /// diagnostic epoch ends.
    pub live: bool,
    /// Byte ranges `(offset, len)` explicitly copied *into* this
    /// allocation from the host (`cudaMemcpy` H2D).
    pub copied_in: Vec<(u64, u64)>,
    /// Byte ranges copied *out of* this allocation to the host (D2H).
    pub copied_out: Vec<(u64, u64)>,
}

impl SmtEntry {
    fn new(base: Addr, size: u64, kind: AllocKind, serial: u64) -> Self {
        let words = size.div_ceil(WORD_BYTES) as usize;
        SmtEntry {
            base,
            size,
            kind,
            shadow: vec![AccessFlags::new(); words],
            label: None,
            serial,
            live: true,
            copied_in: Vec::new(),
            copied_out: Vec::new(),
        }
    }

    /// Number of shadow words.
    #[inline]
    pub fn words(&self) -> usize {
        self.shadow.len()
    }

    /// Whether `addr` falls inside this allocation.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base + self.size.max(1)
    }

    /// Shadow word index range `[first, last]` covered by an access of
    /// `size` bytes at `addr` (clamped to the allocation). `size` is a
    /// `u64` so multi-GiB `cudaMemcpy` spans are never truncated.
    #[inline]
    pub fn word_span(&self, addr: Addr, size: u64) -> (usize, usize) {
        let off = addr - self.base;
        let first = (off / WORD_BYTES) as usize;
        let last = ((off + size.max(1) - 1) / WORD_BYTES) as usize;
        (first, last.min(self.shadow.len().saturating_sub(1)))
    }

    /// Name shown in diagnostics: the user label if registered, otherwise
    /// the address and allocation API.
    pub fn display_name(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None => format!("0x{:x} ({})", self.base, self.kind.api_name()),
        }
    }

    /// Reset the shadow for a new diagnostic epoch and forget recorded
    /// transfers. The last-writer bit of each word survives (it feeds the
    /// read-origin classification of later epochs, §III-D).
    pub fn reset_shadow(&mut self) {
        for w in &mut self.shadow {
            w.reset_epoch();
        }
        self.copied_in.clear();
        self.copied_out.clear();
    }
}

/// The table itself.
pub struct Smt {
    entries: Vec<SmtEntry>,
    next_serial: u64,
    /// Entry count below which lookup scans linearly (64 in the paper).
    pub linear_threshold: usize,
    cache: usize,
}

impl Default for Smt {
    fn default() -> Self {
        Self::new()
    }
}

impl Smt {
    pub fn new() -> Self {
        Smt {
            entries: Vec::new(),
            next_serial: 0,
            linear_threshold: 64,
            cache: usize::MAX,
        }
    }

    /// Number of entries (live and deferred-free).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Register a new allocation. O(N) insertion into the sorted array,
    /// exactly as the paper describes (§IV-D).
    pub fn insert(&mut self, base: Addr, size: u64, kind: AllocKind) {
        let pos = self.entries.partition_point(|e| e.base < base);
        debug_assert!(
            pos >= self.entries.len() || self.entries[pos].base != base,
            "duplicate SMT base 0x{base:x}"
        );
        let e = SmtEntry::new(base, size, kind, self.next_serial);
        self.next_serial += 1;
        self.entries.insert(pos, e);
        self.cache = usize::MAX;
    }

    /// Mark the allocation at `base` freed; shadow is retained until
    /// [`purge_dead`](Self::purge_dead). Returns false if unknown.
    pub fn remove_defer(&mut self, base: Addr) -> bool {
        // The table is sorted by base (and bases are never reused), so
        // binary-search instead of scanning linearly.
        let pos = self.entries.partition_point(|e| e.base < base);
        match self.entries.get_mut(pos) {
            Some(e) if e.base == base && e.live => {
                e.live = false;
                // Drop the last-hit cache if it pointed at the deferred
                // entry, so a stale hit cannot outlive the free.
                if self.cache == pos {
                    self.cache = usize::MAX;
                }
                true
            }
            _ => false,
        }
    }

    /// Drop entries freed before this call (end of a diagnostic epoch).
    pub fn purge_dead(&mut self) {
        self.entries.retain(|e| e.live);
        self.cache = usize::MAX;
    }

    #[inline]
    fn find_index(&self, addr: Addr) -> Option<usize> {
        // Last-hit cache: traced programs stream through arrays.
        if let Some(e) = self.entries.get(self.cache) {
            if e.contains(addr) {
                return Some(self.cache);
            }
        }
        if self.entries.len() < self.linear_threshold {
            self.entries.iter().position(|e| e.contains(addr))
        } else {
            let pos = self.entries.partition_point(|e| e.base <= addr);
            if pos == 0 {
                return None;
            }
            let i = pos - 1;
            self.entries[i].contains(addr).then_some(i)
        }
    }

    /// Look up the entry containing `addr`. Untracked addresses return
    /// `None` and are ignored by the tracer (paper §III-C).
    pub fn lookup(&self, addr: Addr) -> Option<&SmtEntry> {
        self.find_index(addr).map(|i| &self.entries[i])
    }

    /// Mutable lookup; caches the hit for subsequent accesses.
    pub fn lookup_mut(&mut self, addr: Addr) -> Option<&mut SmtEntry> {
        let i = self.find_index(addr)?;
        self.cache = i;
        Some(&mut self.entries[i])
    }

    /// Attach a user-level name to the allocation containing `addr`.
    /// Returns true if an entry was found.
    pub fn set_label(&mut self, addr: Addr, label: &str) -> bool {
        match self.lookup_mut(addr) {
            Some(e) => {
                e.label = Some(label.to_string());
                true
            }
            None => false,
        }
    }

    /// All entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = &SmtEntry> {
        self.entries.iter()
    }

    /// Mutable iteration (diagnostic reset).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut SmtEntry> {
        self.entries.iter_mut()
    }

    /// Zero every shadow and forget transfers: a new epoch.
    pub fn reset_shadows(&mut self) {
        for e in &mut self.entries {
            e.reset_shadow();
        }
    }

    /// Total shadow bytes currently held (memory-overhead reporting).
    pub fn shadow_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.words() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(n: usize) -> Smt {
        let mut t = Smt::new();
        for i in 0..n {
            t.insert(0x10_0000 + (i as u64) * 0x1000, 256, AllocKind::Managed);
        }
        t
    }

    #[test]
    fn insert_keeps_sorted_regardless_of_order() {
        let mut t = Smt::new();
        t.insert(0x30_0000, 64, AllocKind::Managed);
        t.insert(0x10_0000, 64, AllocKind::Host);
        t.insert(0x20_0000, 64, AllocKind::Device(0));
        let bases: Vec<Addr> = t.iter().map(|e| e.base).collect();
        assert_eq!(bases, vec![0x10_0000, 0x20_0000, 0x30_0000]);
    }

    #[test]
    fn lookup_hits_interior_addresses() {
        let t = table_with(10);
        let e = t.lookup(0x10_2000 + 17).unwrap();
        assert_eq!(e.base, 0x10_2000);
        assert!(t.lookup(0x10_2000 + 256).is_none()); // one past the end
        assert!(t.lookup(0xdead).is_none());
    }

    #[test]
    fn linear_and_binary_agree() {
        // Same table, both search strategies, every probe address.
        let mut small = table_with(100);
        small.linear_threshold = 1000; // force linear
        let mut big = table_with(100);
        big.linear_threshold = 0; // force binary
        for probe in (0x0F_0000..0x10_0000 + 100 * 0x1000).step_by(97) {
            let a = small.lookup(probe).map(|e| e.base);
            let b = big.lookup(probe).map(|e| e.base);
            assert_eq!(a, b, "probe 0x{probe:x}");
        }
    }

    #[test]
    fn deferred_free_keeps_shadow_until_purge() {
        let mut t = table_with(3);
        assert!(t.remove_defer(0x10_1000));
        assert_eq!(t.len(), 3); // still present
        assert!(!t.remove_defer(0x10_1000)); // double defer rejected
        t.purge_dead();
        assert_eq!(t.len(), 2);
        assert!(t.lookup(0x10_1000).is_none());
    }

    #[test]
    fn word_span_covers_access() {
        let mut t = Smt::new();
        t.insert(0x1000, 64, AllocKind::Managed);
        let e = t.lookup(0x1000).unwrap();
        assert_eq!(e.words(), 16);
        assert_eq!(e.word_span(0x1000, 4), (0, 0));
        assert_eq!(e.word_span(0x1004, 8), (1, 2)); // 8-byte double: 2 words
        assert_eq!(e.word_span(0x1001, 1), (0, 0));
        assert_eq!(e.word_span(0x1002, 4), (0, 1)); // unaligned straddle
    }

    #[test]
    fn word_span_handles_multi_gib_sizes() {
        // A span larger than 4 GiB must clamp to the entry's last word,
        // not wrap around a 32-bit truncation to a tiny span.
        let mut t = Smt::new();
        t.insert(0x1000, 64, AllocKind::Managed);
        let e = t.lookup(0x1000).unwrap();
        assert_eq!(e.word_span(0x1000, (1u64 << 32) + 4), (0, 15));
        assert_eq!(e.word_span(0x1008, u64::MAX / 2), (2, 15));
    }

    #[test]
    fn remove_defer_finds_first_middle_last_and_rejects_unknown() {
        let mut t = table_with(5);
        assert!(t.remove_defer(0x10_0000)); // first
        assert!(t.remove_defer(0x10_2000)); // middle
        assert!(t.remove_defer(0x10_4000)); // last
        assert!(!t.remove_defer(0x10_0800)); // interior address, not a base
        assert!(!t.remove_defer(0xdead_0000)); // unknown
        t.purge_dead();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_defer_invalidates_last_hit_cache() {
        let mut t = table_with(3);
        // Warm the cache onto the middle entry, then defer-free it.
        assert!(t.lookup_mut(0x10_1000).is_some());
        assert!(t.remove_defer(0x10_1000));
        // Lookups after the free still resolve correctly (the shadow is
        // retained until purge, and neighbours are unaffected).
        assert_eq!(t.lookup(0x10_1000 + 8).unwrap().base, 0x10_1000);
        assert_eq!(t.lookup(0x10_2000).unwrap().base, 0x10_2000);
        t.purge_dead();
        assert!(t.lookup(0x10_1000).is_none());
    }

    #[test]
    fn labels_affect_display_name() {
        let mut t = Smt::new();
        t.insert(0x2000, 32, AllocKind::Managed);
        assert!(t
            .lookup(0x2000)
            .unwrap()
            .display_name()
            .contains("cudaMallocManaged"));
        assert!(t.set_label(0x2000, "(dom)->m_p"));
        assert_eq!(t.lookup(0x2000).unwrap().display_name(), "(dom)->m_p");
        assert!(!t.set_label(0x9999, "nope"));
    }

    #[test]
    fn reset_shadows_zeroes_and_clears_transfers() {
        let mut t = Smt::new();
        t.insert(0x1000, 16, AllocKind::Device(0));
        {
            let e = t.lookup_mut(0x1000).unwrap();
            e.shadow[0].record_write(hetsim::Device::Cpu);
            e.copied_in.push((0, 16));
        }
        t.reset_shadows();
        let e = t.lookup(0x1000).unwrap();
        assert!(!e.shadow[0].touched());
        assert!(e.copied_in.is_empty());
    }

    #[test]
    fn shadow_is_quarter_of_data() {
        let mut t = Smt::new();
        t.insert(0x1000, 4096, AllocKind::Managed);
        assert_eq!(t.shadow_bytes(), 1024);
    }

    #[test]
    fn odd_sizes_round_up_to_whole_words() {
        let mut t = Smt::new();
        t.insert(0x1000, 5, AllocKind::Host);
        assert_eq!(t.lookup(0x1000).unwrap().words(), 2);
        assert!(t.lookup(0x1004).is_some());
    }
}
