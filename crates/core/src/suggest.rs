//! Placement advisor: turn an epoch's shadow data into concrete
//! `cudaMemAdvise` suggestions.
//!
//! The paper's remedies (§III-A) are stated for a human: "provide
//! appropriate memory access hints for individual memory regions". This
//! module closes that loop mechanically — the direction the paper's
//! related-work discussion of RTHMS and its own future work point at.
//!
//! Heuristics, per managed allocation:
//!
//! * written by exactly one side and read by the other ⇒ `SetReadMostly`
//!   only if writes are rare relative to cross reads; otherwise
//!   `SetPreferredLocation(writer)` so the readers map it remotely;
//! * accessed (read+write) by both sides on the *same* words with writes
//!   from both ⇒ no hint fixes it: suggest splitting the object
//!   (duplication), like the paper's LULESH remedy;
//! * touched by a single side only ⇒ `SetPreferredLocation` there, which
//!   pins it against eviction-induced wandering;
//! * read-only everywhere ⇒ `SetReadMostly` is always safe.

use hetsim::{AllocKind, Device, MemAdvise};

use crate::flags::AccessFlags;
use crate::smt::{Smt, SmtEntry};

/// One suggestion for one allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Allocation display name.
    pub name: String,
    /// Base address (apply target).
    pub base: hetsim::Addr,
    /// Size in bytes.
    pub size: u64,
    /// The recommended action.
    pub action: Action,
    /// One-line rationale derived from the observed counters.
    pub rationale: String,
}

/// Recommended placement action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Apply this `cudaMemAdvise` to the whole allocation.
    Advise(MemAdvise),
    /// No single hint helps: split the object into per-processor parts
    /// (the paper's domain-duplication remedy).
    SplitObject,
    /// Access pattern already clean; leave it alone.
    LeaveAlone,
}

impl std::fmt::Display for Suggestion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.action {
            Action::Advise(a) => format!("cudaMemAdvise({a:?})"),
            Action::SplitObject => "split into CPU part and GPU part".to_string(),
            Action::LeaveAlone => "leave alone".to_string(),
        };
        write!(f, "{}: {what} — {}", self.name, self.rationale)
    }
}

/// Per-allocation access profile the heuristics run on.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct Profile {
    pub(crate) cpu_writes: usize,
    pub(crate) gpu_writes: usize,
    pub(crate) cpu_reads: usize,
    pub(crate) gpu_reads: usize,
    pub(crate) cross_reads: usize, // C>G + G>C words
    pub(crate) alternating: usize,
    pub(crate) touched: usize,
}

pub(crate) fn profile(e: &SmtEntry) -> Profile {
    let mut p = Profile::default();
    for w in &e.shadow {
        if w.get(AccessFlags::CPU_WROTE) {
            p.cpu_writes += 1;
        }
        if w.get(AccessFlags::GPU_WROTE) {
            p.gpu_writes += 1;
        }
        if w.get(AccessFlags::R_CC) || w.get(AccessFlags::R_GC) {
            p.cpu_reads += 1;
        }
        if w.get(AccessFlags::R_CG) || w.get(AccessFlags::R_GG) {
            p.gpu_reads += 1;
        }
        if w.get(AccessFlags::R_CG) || w.get(AccessFlags::R_GC) {
            p.cross_reads += 1;
        }
        if w.alternating() {
            p.alternating += 1;
        }
        if w.touched() {
            p.touched += 1;
        }
    }
    p
}

/// Produce suggestions for every managed allocation in the table.
pub fn suggest(smt: &Smt) -> Vec<Suggestion> {
    let mut out = Vec::new();
    for e in smt.iter() {
        if e.kind != AllocKind::Managed {
            continue;
        }
        // Freed-but-not-yet-purged entries keep their shadow for the
        // epoch's diagnostics, but advice for a dead pointer is useless
        // (and `apply` on its recycled base would hint the wrong data).
        if !e.live {
            continue;
        }
        let p = profile(e);
        if p.touched == 0 {
            continue;
        }
        let s = classify(e, p);
        out.push(s);
    }
    out
}

/// Platform-aware suggestions: on cache-coherent interconnects (the
/// paper's IBM+Volta NVLink system) cross-processor reads never migrate
/// pages, so read-duplication hints only buy invalidation overhead — the
/// paper measured ReadMostly at 0.8x there (Fig. 6). This variant
/// downgrades those hints to `LeaveAlone` on such platforms.
pub fn suggest_for(smt: &Smt, platform: &hetsim::Platform) -> Vec<Suggestion> {
    let mut out = suggest(smt);
    if platform.cpu_direct_access_gpu {
        for s in &mut out {
            if matches!(s.action, Action::Advise(MemAdvise::SetReadMostly)) {
                s.action = Action::LeaveAlone;
                s.rationale = format!(
                    "{} — but the coherent interconnect serves cross reads                      remotely, so duplication would only add invalidations",
                    s.rationale
                );
            }
        }
    }
    out
}

fn classify(e: &SmtEntry, p: Profile) -> Suggestion {
    let mk = |action: Action, rationale: String| Suggestion {
        name: e.display_name(),
        base: e.base,
        size: e.size,
        action,
        rationale,
    };

    let writes = p.cpu_writes + p.gpu_writes;
    let cpu_only = p.gpu_writes == 0 && p.gpu_reads == 0;
    let gpu_only = p.cpu_writes == 0 && p.cpu_reads == 0;

    if writes == 0 {
        // Read-only data: duplication is free of invalidations.
        return mk(
            Action::Advise(MemAdvise::SetReadMostly),
            "read-only on both sides; read duplication has no downside".into(),
        );
    }
    if cpu_only {
        return mk(
            Action::Advise(MemAdvise::SetPreferredLocation(Device::Cpu)),
            "CPU-exclusive; pin it to the host".into(),
        );
    }
    if gpu_only {
        return mk(
            Action::Advise(MemAdvise::SetPreferredLocation(Device::GPU0)),
            "GPU-exclusive; pin it to the device".into(),
        );
    }

    // Both sides involved from here on.
    if p.cpu_writes > 0 && p.gpu_writes > 0 && p.alternating > 0 {
        return mk(
            Action::SplitObject,
            format!(
                "both processors write it ({} alternating words); no hint \
                 removes the ping-pong",
                p.alternating
            ),
        );
    }
    // Single-writer, cross-read data: ReadMostly when writes are rare
    // compared to the reads that benefit from duplication.
    if p.cross_reads >= 4 * writes {
        return mk(
            Action::Advise(MemAdvise::SetReadMostly),
            format!(
                "{} cross-processor reads vs {} written words; duplication \
                 amortizes the occasional invalidation",
                p.cross_reads, writes
            ),
        );
    }
    // Frequently-written shared data: keep it at the writer, map readers.
    let writer = if p.cpu_writes >= p.gpu_writes {
        Device::Cpu
    } else {
        Device::GPU0
    };
    mk(
        Action::Advise(MemAdvise::SetPreferredLocation(writer)),
        format!(
            "written mostly by {} ({}/{} words) and shared; keep it there \
             and let the other side map it",
            writer,
            p.cpu_writes.max(p.gpu_writes),
            writes
        ),
    )
}

/// Apply every `Advise` suggestion to a machine (the auto-placement
/// demo). Returns how many were applied.
pub fn apply(machine: &mut hetsim::Machine, suggestions: &[Suggestion]) -> usize {
    let mut n = 0;
    for s in suggestions {
        if let Action::Advise(a) = &s.action {
            if machine.try_mem_advise(s.base, s.size, *a).is_ok() {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use hetsim::MemHook;

    const GPU: Device = Device::GPU0;

    fn tracer_with(base: u64, words: usize) -> Tracer {
        let mut t = Tracer::new();
        t.on_alloc(base, (words * 4) as u64, AllocKind::Managed);
        t
    }

    fn one(t: &Tracer) -> Suggestion {
        let v = suggest(&t.smt);
        assert_eq!(v.len(), 1, "{v:?}");
        v.into_iter().next().unwrap()
    }

    #[test]
    fn read_only_data_gets_read_mostly() {
        let mut t = tracer_with(0x10_0000, 16);
        for i in 0..16u64 {
            t.trace_r(Device::Cpu, 0x10_0000 + i * 4, 4);
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        assert_eq!(one(&t).action, Action::Advise(MemAdvise::SetReadMostly));
    }

    #[test]
    fn gpu_exclusive_data_pinned_to_device() {
        let mut t = tracer_with(0x10_0000, 16);
        for i in 0..16u64 {
            t.trace_w(GPU, 0x10_0000 + i * 4, 4);
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        assert_eq!(
            one(&t).action,
            Action::Advise(MemAdvise::SetPreferredLocation(GPU))
        );
    }

    #[test]
    fn rarely_written_cross_read_gets_read_mostly() {
        // The LULESH domain shape: CPU writes a couple of words, the GPU
        // reads many.
        let mut t = tracer_with(0x10_0000, 64);
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        for i in 0..64u64 {
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        assert_eq!(one(&t).action, Action::Advise(MemAdvise::SetReadMostly));
    }

    #[test]
    fn heavily_written_shared_data_prefers_the_writer() {
        let mut t = tracer_with(0x10_0000, 16);
        for i in 0..16u64 {
            t.trace_w(Device::Cpu, 0x10_0000 + i * 4, 4);
        }
        // GPU reads only a couple of words: advice should keep the data
        // at the CPU rather than duplicate.
        t.trace_r(GPU, 0x10_0000, 4);
        t.trace_r(GPU, 0x10_0004, 4);
        assert_eq!(
            one(&t).action,
            Action::Advise(MemAdvise::SetPreferredLocation(Device::Cpu))
        );
    }

    #[test]
    fn dual_writer_data_suggests_splitting() {
        let mut t = tracer_with(0x10_0000, 16);
        for i in 0..8u64 {
            t.trace_w(Device::Cpu, 0x10_0000 + i * 4, 4);
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
            t.trace_w(GPU, 0x10_0000 + i * 4, 4);
            t.trace_r(Device::Cpu, 0x10_0000 + i * 4, 4);
        }
        assert_eq!(one(&t).action, Action::SplitObject);
    }

    #[test]
    fn untouched_and_unmanaged_allocations_are_skipped() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Managed); // untouched
        t.on_alloc(0x20_0000, 64, AllocKind::Device(0)); // not managed
        t.trace_w(GPU, 0x20_0000, 4);
        assert!(suggest(&t.smt).is_empty());
    }

    #[test]
    fn apply_sets_the_advice_on_a_machine() {
        use hetsim::{platform, Machine};
        let mut m = Machine::new(platform::intel_pascal());
        let tracer = crate::attach_tracer(&mut m);
        let p = m.alloc_managed::<f64>(64);
        tracer.borrow_mut().name(p.addr, "data");
        // Read-only on both sides.
        let _ = m.ld(p, 0);
        m.launch("r", 4, |t, m| {
            let _ = m.ld(p, t);
        });
        let suggestions = suggest(&tracer.borrow().smt);
        assert_eq!(apply(&mut m, &suggestions), 1);
        assert!(m.page_state(p.addr).read_mostly);
    }

    #[test]
    fn coherent_platforms_downgrade_read_mostly() {
        let mut t = tracer_with(0x10_0000, 64);
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        for i in 0..64u64 {
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        let pcie = suggest_for(&t.smt, &hetsim::platform::intel_pascal());
        assert_eq!(pcie[0].action, Action::Advise(MemAdvise::SetReadMostly));
        let nvlink = suggest_for(&t.smt, &hetsim::platform::power9_volta());
        assert_eq!(nvlink[0].action, Action::LeaveAlone);
        assert!(nvlink[0].rationale.contains("coherent interconnect"));
        // Preferred-location pins are kept on both platforms.
        let mut t2 = tracer_with(0x10_0000, 8);
        t2.trace_w(GPU, 0x10_0000, 4);
        let nv2 = suggest_for(&t2.smt, &hetsim::platform::power9_volta());
        assert_eq!(
            nv2[0].action,
            Action::Advise(MemAdvise::SetPreferredLocation(GPU))
        );
    }

    #[test]
    fn empty_trace_yields_no_suggestions() {
        let t = Tracer::new();
        assert!(suggest(&t.smt).is_empty());
        assert!(suggest_for(&t.smt, &hetsim::platform::intel_pascal()).is_empty());
    }

    #[test]
    fn device_only_allocations_are_never_advised() {
        // cudaMalloc memory is not managed: cudaMemAdvise does not apply,
        // even when the access pattern would otherwise scream ReadMostly.
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Device(0));
        t.on_alloc(0x20_0000, 64, AllocKind::Device(1));
        for i in 0..16u64 {
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
            t.trace_r(Device::Gpu(1), 0x20_0000 + i * 4, 4);
        }
        assert!(suggest(&t.smt).is_empty());
    }

    #[test]
    fn read_only_everywhere_block_is_read_mostly_with_zero_writes() {
        // Every word read by both sides, none written anywhere: the
        // writes==0 branch must win before any writer-ratio heuristic.
        let mut t = tracer_with(0x10_0000, 32);
        for i in 0..32u64 {
            t.trace_r(Device::Cpu, 0x10_0000 + i * 4, 4);
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
            t.trace_r(GPU, 0x10_0000 + i * 4, 4); // repeat reads are idempotent
        }
        let s = one(&t);
        assert_eq!(s.action, Action::Advise(MemAdvise::SetReadMostly));
        assert!(s.rationale.contains("read-only"), "{}", s.rationale);
    }

    #[test]
    fn allocations_freed_before_epoch_end_are_skipped() {
        let mut t = tracer_with(0x10_0000, 16);
        t.on_alloc(0x20_0000, 64, AllocKind::Managed);
        for i in 0..16u64 {
            t.trace_w(GPU, 0x10_0000 + i * 4, 4);
            t.trace_w(GPU, 0x20_0000 + i * 4, 4);
        }
        // Free the first allocation mid-epoch: its shadow survives until
        // purge (for diagnostics) but the advisor must not act on it.
        t.on_free(0x10_0000);
        let v = suggest(&t.smt);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].base, 0x20_0000);
        // After the purge the result is the same.
        t.smt.purge_dead();
        let v = suggest(&t.smt);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].base, 0x20_0000);
    }

    #[test]
    fn display_is_informative() {
        let mut t = tracer_with(0x10_0000, 8);
        t.smt.set_label(0x10_0000, "dom");
        t.trace_w(Device::Cpu, 0x10_0000, 4);
        for i in 0..8u64 {
            t.trace_r(GPU, 0x10_0000 + i * 4, 4);
        }
        let text = one(&t).to_string();
        assert!(
            text.starts_with("dom: cudaMemAdvise(SetReadMostly)"),
            "{text}"
        );
        assert!(text.contains("cross-processor reads"), "{text}");
    }
}
