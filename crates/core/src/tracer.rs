//! The tracer: XPlacer's runtime bookkeeping (paper §III-C).
//!
//! Implements [`hetsim::MemHook`], so attaching a [`Tracer`] to a
//! [`hetsim::Machine`] corresponds to running the source-instrumented
//! binary: every heap read/write lands in `traceR`/`traceW`/`traceRW`,
//! every allocation in the wrapped `cudaMalloc*`, every copy in the
//! wrapped `cudaMemcpy`, every launch in the kernel-launch wrapper.

use hetsim::{Addr, AllocKind, CopyKind, Device, MemHook};

use crate::smt::Smt;

/// A user-level object description, as produced by the expansion of the
/// `#pragma xpl diagnostic` arguments (paper §III-B): target address,
/// access expression, and element size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XplAllocData {
    /// Address the expression points to.
    pub addr: Addr,
    /// The access expression, e.g. `(dom)->m_p`.
    pub name: String,
    /// `sizeof(*expr)`.
    pub elem_size: u64,
}

impl XplAllocData {
    pub fn new(addr: Addr, name: impl Into<String>, elem_size: u64) -> Self {
        XplAllocData {
            addr,
            name: name.into(),
            elem_size,
        }
    }
}

/// The runtime tracer.
pub struct Tracer {
    /// The shadow memory table. Public so analyses can walk it.
    pub smt: Smt,
    /// When false, trace calls are no-ops (lets harnesses skip warmup).
    pub enabled: bool,
    /// Kernel launches observed this epoch (name, count collapsed).
    pub kernel_log: Vec<String>,
    /// Bases freed this epoch (their shadow lives until `end_epoch`).
    pending_free: Vec<Addr>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            smt: Smt::new(),
            enabled: true,
            kernel_log: Vec::new(),
            pending_free: Vec::new(),
        }
    }

    /// Record a read of `size` bytes at `addr` by `dev` — `traceR`.
    #[inline]
    pub fn trace_r(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, size);
            for w in &mut e.shadow[a..=b] {
                w.record_read(dev);
            }
        }
    }

    /// Record a write — `traceW`.
    #[inline]
    pub fn trace_w(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, size);
            for w in &mut e.shadow[a..=b] {
                w.record_write(dev);
            }
        }
    }

    /// Record a read-modify-write — `traceRW`. The read sees the value
    /// before the write, so order matters.
    #[inline]
    pub fn trace_rw(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, size);
            for w in &mut e.shadow[a..=b] {
                w.record_read(dev);
                w.record_write(dev);
            }
        }
    }

    /// Register user-level names for allocations (the expanded argument
    /// list of `#pragma xpl diagnostic`). Unknown addresses are ignored,
    /// matching the paper's "not tracked ⇒ ignored" rule.
    pub fn register_names(&mut self, objects: &[XplAllocData]) {
        for o in objects {
            self.smt.set_label(o.addr, &o.name);
        }
    }

    /// Shorthand for a single name.
    pub fn name(&mut self, addr: Addr, name: &str) {
        self.smt.set_label(addr, name);
    }

    /// End the current diagnostic epoch: zero all shadow memory, release
    /// shadow entries of allocations freed during the epoch, clear the
    /// kernel log. Called by `tracePrint` after producing output.
    pub fn end_epoch(&mut self) {
        self.smt.reset_shadows();
        self.smt.purge_dead();
        self.pending_free.clear();
        self.kernel_log.clear();
    }

    /// Number of allocations currently tracked.
    pub fn tracked(&self) -> usize {
        self.smt.len()
    }
}

impl MemHook for Tracer {
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind) {
        if self.enabled {
            self.smt.insert(base, size, kind);
        }
    }

    fn on_free(&mut self, base: Addr) {
        if self.enabled && self.smt.remove_defer(base) {
            self.pending_free.push(base);
        }
    }

    fn on_read(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_r(dev, addr, size);
    }

    fn on_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_w(dev, addr, size);
    }

    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_rw(dev, addr, size);
    }

    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) {
        if !self.enabled || bytes == 0 {
            return;
        }
        // Paper §III-C: "Memory transfers from CPU to GPU are recorded as
        // writes by the CPU, while memory transfers from GPU to CPU are
        // recorded as reads by the CPU."
        match kind {
            CopyKind::HostToDevice => {
                if let Some(e) = self.smt.lookup_mut(dst) {
                    let (a, b) = e.word_span(dst, bytes as u32);
                    for w in &mut e.shadow[a..=b] {
                        w.record_write(Device::Cpu);
                    }
                    e.copied_in.push((dst - e.base, bytes));
                }
            }
            CopyKind::DeviceToHost => {
                if let Some(e) = self.smt.lookup_mut(src) {
                    let (a, b) = e.word_span(src, bytes as u32);
                    for w in &mut e.shadow[a..=b] {
                        w.record_read(Device::Cpu);
                    }
                    e.copied_out.push((src - e.base, bytes));
                }
            }
            CopyKind::DeviceToDevice | CopyKind::HostToHost => {
                // Same-side copies move no data across the interconnect;
                // record plain access on both operands.
                if let Some(e) = self.smt.lookup_mut(src) {
                    let (a, b) = e.word_span(src, bytes as u32);
                    let dev = if kind == CopyKind::HostToHost {
                        Device::Cpu
                    } else {
                        Device::GPU0
                    };
                    for w in &mut e.shadow[a..=b] {
                        w.record_read(dev);
                    }
                }
                if let Some(e) = self.smt.lookup_mut(dst) {
                    let (a, b) = e.word_span(dst, bytes as u32);
                    let dev = if kind == CopyKind::HostToHost {
                        Device::Cpu
                    } else {
                        Device::GPU0
                    };
                    for w in &mut e.shadow[a..=b] {
                        w.record_write(dev);
                    }
                }
            }
        }
    }

    fn on_kernel_launch(&mut self, name: &str) {
        if self.enabled {
            self.kernel_log.push(name.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::AccessFlags;

    const GPU: Device = Device::GPU0;

    fn tracer_with_alloc(size: u64) -> (Tracer, Addr) {
        let mut t = Tracer::new();
        let base = 0x10_0000;
        t.on_alloc(base, size, AllocKind::Managed);
        (t, base)
    }

    #[test]
    fn read_write_update_shadow_words() {
        let (mut t, base) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, base, 8); // words 0 and 1
        t.trace_r(GPU, base + 4, 4); // word 1
        let e = t.smt.lookup(base).unwrap();
        assert!(e.shadow[0].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[1].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[1].get(AccessFlags::R_CG));
        assert!(!e.shadow[2].touched());
    }

    #[test]
    fn untracked_addresses_ignored() {
        let (mut t, _) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, 0xDEAD_0000, 4); // no crash, no effect
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn rmw_is_read_then_write() {
        let (mut t, base) = tracer_with_alloc(16);
        // GPU increments a value last written by the CPU.
        t.trace_w(Device::Cpu, base, 4);
        t.trace_rw(GPU, base, 4);
        let e = t.smt.lookup(base).unwrap();
        // The read saw CPU origin (C>G), then the GPU became last writer.
        assert!(e.shadow[0].get(AccessFlags::R_CG));
        assert!(e.shadow[0].get(AccessFlags::GPU_WROTE));
        assert!(e.shadow[0].get(AccessFlags::LAST_WRITER_GPU));
    }

    #[test]
    fn h2d_memcpy_recorded_as_cpu_writes_on_dst() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 256, AllocKind::Host);
        t.on_alloc(0x20_0000, 256, AllocKind::Device(0));
        t.on_memcpy(0x20_0000, 0x10_0000, 128, CopyKind::HostToDevice);
        let e = t.smt.lookup(0x20_0000).unwrap();
        assert!(e.shadow[0].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[31].get(AccessFlags::CPU_WROTE));
        assert!(!e.shadow[32].touched());
        assert_eq!(e.copied_in, vec![(0, 128)]);
    }

    #[test]
    fn d2h_memcpy_recorded_as_cpu_reads_of_src() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 256, AllocKind::Device(0));
        t.on_alloc(0x20_0000, 256, AllocKind::Host);
        // GPU wrote the buffer first.
        t.trace_w(GPU, 0x10_0000, 256);
        t.on_memcpy(0x20_0000, 0x10_0000, 256, CopyKind::DeviceToHost);
        let e = t.smt.lookup(0x10_0000).unwrap();
        // CPU reads of GPU-written values: G>C.
        assert!(e.shadow[0].get(AccessFlags::R_GC));
        assert_eq!(e.copied_out, vec![(0, 256)]);
    }

    #[test]
    fn epoch_reset_clears_everything() {
        let (mut t, base) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, base, 4);
        t.on_kernel_launch("k1");
        t.on_free(base);
        assert_eq!(t.tracked(), 1); // deferred
        t.end_epoch();
        assert_eq!(t.tracked(), 0);
        assert!(t.kernel_log.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (mut t, base) = tracer_with_alloc(64);
        t.enabled = false;
        t.trace_w(Device::Cpu, base, 4);
        t.on_kernel_launch("k");
        let e = t.smt.lookup(base).unwrap();
        assert!(!e.shadow[0].touched());
        assert!(t.kernel_log.is_empty());
    }

    #[test]
    fn register_names_labels_known_allocs_only() {
        let (mut t, base) = tracer_with_alloc(64);
        t.register_names(&[
            XplAllocData::new(base, "dom", 8),
            XplAllocData::new(0xBAD, "ghost", 8),
        ]);
        assert_eq!(t.smt.lookup(base).unwrap().display_name(), "dom");
    }
}
