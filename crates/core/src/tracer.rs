//! The tracer: XPlacer's runtime bookkeeping (paper §III-C).
//!
//! Implements [`hetsim::MemHook`], so attaching a [`Tracer`] to a
//! [`hetsim::Machine`] corresponds to running the source-instrumented
//! binary: every heap read/write lands in `traceR`/`traceW`/`traceRW`,
//! every allocation in the wrapped `cudaMalloc*`, every copy in the
//! wrapped `cudaMemcpy`, every launch in the kernel-launch wrapper.

use hetsim::{AccessKind, Addr, AllocKind, CopyKind, Device, MemHook};

use crate::smt::{Smt, WORD_BYTES};

/// A user-level object description, as produced by the expansion of the
/// `#pragma xpl diagnostic` arguments (paper §III-B): target address,
/// access expression, and element size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XplAllocData {
    /// Address the expression points to.
    pub addr: Addr,
    /// The access expression, e.g. `(dom)->m_p`.
    pub name: String,
    /// `sizeof(*expr)`.
    pub elem_size: u64,
}

impl XplAllocData {
    pub fn new(addr: Addr, name: impl Into<String>, elem_size: u64) -> Self {
        XplAllocData {
            addr,
            name: name.into(),
            elem_size,
        }
    }
}

/// The runtime tracer.
pub struct Tracer {
    /// The shadow memory table. Public so analyses can walk it.
    pub smt: Smt,
    /// When false, trace calls are no-ops (lets harnesses skip warmup).
    pub enabled: bool,
    /// Kernel launches observed this epoch (name, count collapsed).
    pub kernel_log: Vec<String>,
    /// Bases freed this epoch (their shadow lives until `end_epoch`).
    pending_free: Vec<Addr>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            smt: Smt::new(),
            enabled: true,
            kernel_log: Vec::new(),
            pending_free: Vec::new(),
        }
    }

    /// Record a read of `size` bytes at `addr` by `dev` — `traceR`.
    #[inline]
    pub fn trace_r(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, u64::from(size));
            for w in &mut e.shadow[a..=b] {
                w.record_read(dev);
            }
        }
    }

    /// Record a write — `traceW`.
    #[inline]
    pub fn trace_w(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, u64::from(size));
            for w in &mut e.shadow[a..=b] {
                w.record_write(dev);
            }
        }
    }

    /// Record a read-modify-write — `traceRW`. The read sees the value
    /// before the write, so order matters.
    #[inline]
    pub fn trace_rw(&mut self, dev: Device, addr: Addr, size: u32) {
        if !self.enabled {
            return;
        }
        if let Some(e) = self.smt.lookup_mut(addr) {
            let (a, b) = e.word_span(addr, u64::from(size));
            for w in &mut e.shadow[a..=b] {
                w.record_read(dev);
                w.record_write(dev);
            }
        }
    }

    /// Vectorized `traceR` over `count` contiguous elements of
    /// `elem_size` bytes: one SMT lookup for the whole range, one pass
    /// over the word span, with an early exit when every word already
    /// carries the read bit this access would set. Reads are idempotent
    /// per word, so the single pass is bit-identical to `count`
    /// individual `trace_r` calls.
    pub fn trace_r_range(&mut self, dev: Device, addr: Addr, elem_size: u32, count: u64) {
        if !self.enabled || count == 0 || elem_size == 0 {
            return;
        }
        let bytes = u64::from(elem_size).saturating_mul(count);
        let Some(e) = self.smt.lookup_mut(addr) else {
            return;
        };
        if addr + bytes > e.base + e.size {
            // Range spills past this allocation: fall back to per-element
            // tracing so out-of-entry elements get the same "untracked ⇒
            // ignored" treatment they would per word.
            for i in 0..count {
                self.trace_r(dev, addr + i * u64::from(elem_size), elem_size);
            }
            return;
        }
        let (a, b) = e.word_span(addr, bytes);
        if e.shadow[a..=b].iter().all(|w| w.read_saturated(dev)) {
            return;
        }
        for w in &mut e.shadow[a..=b] {
            w.record_read(dev);
        }
    }

    /// Vectorized `traceW`. Writes by one device are idempotent per
    /// word, so a single pass is exact for any alignment.
    pub fn trace_w_range(&mut self, dev: Device, addr: Addr, elem_size: u32, count: u64) {
        if !self.enabled || count == 0 || elem_size == 0 {
            return;
        }
        let bytes = u64::from(elem_size).saturating_mul(count);
        let Some(e) = self.smt.lookup_mut(addr) else {
            return;
        };
        if addr + bytes > e.base + e.size {
            for i in 0..count {
                self.trace_w(dev, addr + i * u64::from(elem_size), elem_size);
            }
            return;
        }
        let (a, b) = e.word_span(addr, bytes);
        if e.shadow[a..=b].iter().all(|w| w.write_saturated(dev)) {
            return;
        }
        for w in &mut e.shadow[a..=b] {
            w.record_write(dev);
        }
    }

    /// Vectorized `traceRW`. A read-modify-write is *not* idempotent
    /// when two elements straddle one shadow word (the second element's
    /// read sees the first element's write and records a same-device
    /// read), so the single `record_read`+`record_write` pass is only
    /// used when each word belongs to exactly one element — i.e. the
    /// range is word-aligned with a word-multiple element size.
    /// Unaligned ranges fall back to per-element tracing.
    pub fn trace_rw_range(&mut self, dev: Device, addr: Addr, elem_size: u32, count: u64) {
        if !self.enabled || count == 0 || elem_size == 0 {
            return;
        }
        let bytes = u64::from(elem_size).saturating_mul(count);
        let aligned =
            addr.is_multiple_of(WORD_BYTES) && u64::from(elem_size).is_multiple_of(WORD_BYTES);
        let fits = match self.smt.lookup_mut(addr) {
            Some(e) => addr + bytes <= e.base + e.size,
            None => return,
        };
        if !aligned || !fits {
            for i in 0..count {
                self.trace_rw(dev, addr + i * u64::from(elem_size), elem_size);
            }
            return;
        }
        let e = self.smt.lookup_mut(addr).expect("entry just found");
        let (a, b) = e.word_span(addr, bytes);
        // At saturation both the read and the write are no-ops, so the
        // early exit is exact even though RMW mutates the origin.
        if e.shadow[a..=b].iter().all(|w| w.rw_saturated(dev)) {
            return;
        }
        for w in &mut e.shadow[a..=b] {
            w.record_read(dev);
            w.record_write(dev);
        }
    }

    /// Register user-level names for allocations (the expanded argument
    /// list of `#pragma xpl diagnostic`). Unknown addresses are ignored,
    /// matching the paper's "not tracked ⇒ ignored" rule.
    pub fn register_names(&mut self, objects: &[XplAllocData]) {
        for o in objects {
            self.smt.set_label(o.addr, &o.name);
        }
    }

    /// Shorthand for a single name.
    pub fn name(&mut self, addr: Addr, name: &str) {
        self.smt.set_label(addr, name);
    }

    /// End the current diagnostic epoch: zero all shadow memory, release
    /// shadow entries of allocations freed during the epoch, clear the
    /// kernel log. Called by `tracePrint` after producing output.
    pub fn end_epoch(&mut self) {
        self.smt.reset_shadows();
        self.smt.purge_dead();
        self.pending_free.clear();
        self.kernel_log.clear();
    }

    /// Number of allocations currently tracked.
    pub fn tracked(&self) -> usize {
        self.smt.len()
    }
}

impl MemHook for Tracer {
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind) {
        if self.enabled {
            self.smt.insert(base, size, kind);
        }
    }

    fn on_free(&mut self, base: Addr) {
        if self.enabled && self.smt.remove_defer(base) {
            self.pending_free.push(base);
        }
    }

    fn on_read(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_r(dev, addr, size);
    }

    fn on_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_w(dev, addr, size);
    }

    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.trace_rw(dev, addr, size);
    }

    fn on_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        match kind {
            AccessKind::Read => self.trace_r_range(dev, addr, elem_size, count),
            AccessKind::Write => self.trace_w_range(dev, addr, elem_size, count),
            AccessKind::ReadWrite => self.trace_rw_range(dev, addr, elem_size, count),
        }
    }

    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) {
        if !self.enabled || bytes == 0 {
            return;
        }
        // Paper §III-C: "Memory transfers from CPU to GPU are recorded as
        // writes by the CPU, while memory transfers from GPU to CPU are
        // recorded as reads by the CPU."
        match kind {
            CopyKind::HostToDevice => {
                if let Some(e) = self.smt.lookup_mut(dst) {
                    let (a, b) = e.word_span(dst, bytes);
                    for w in &mut e.shadow[a..=b] {
                        w.record_write(Device::Cpu);
                    }
                    e.copied_in.push((dst - e.base, bytes));
                }
            }
            CopyKind::DeviceToHost => {
                if let Some(e) = self.smt.lookup_mut(src) {
                    let (a, b) = e.word_span(src, bytes);
                    for w in &mut e.shadow[a..=b] {
                        w.record_read(Device::Cpu);
                    }
                    e.copied_out.push((src - e.base, bytes));
                }
            }
            CopyKind::DeviceToDevice | CopyKind::HostToHost => {
                // Same-side copies move no data across the interconnect;
                // record plain access on both operands.
                if let Some(e) = self.smt.lookup_mut(src) {
                    let (a, b) = e.word_span(src, bytes);
                    let dev = if kind == CopyKind::HostToHost {
                        Device::Cpu
                    } else {
                        Device::GPU0
                    };
                    for w in &mut e.shadow[a..=b] {
                        w.record_read(dev);
                    }
                }
                if let Some(e) = self.smt.lookup_mut(dst) {
                    let (a, b) = e.word_span(dst, bytes);
                    let dev = if kind == CopyKind::HostToHost {
                        Device::Cpu
                    } else {
                        Device::GPU0
                    };
                    for w in &mut e.shadow[a..=b] {
                        w.record_write(dev);
                    }
                }
            }
        }
    }

    fn on_kernel_launch(&mut self, name: &str) {
        if self.enabled {
            self.kernel_log.push(name.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::AccessFlags;

    const GPU: Device = Device::GPU0;

    fn tracer_with_alloc(size: u64) -> (Tracer, Addr) {
        let mut t = Tracer::new();
        let base = 0x10_0000;
        t.on_alloc(base, size, AllocKind::Managed);
        (t, base)
    }

    #[test]
    fn read_write_update_shadow_words() {
        let (mut t, base) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, base, 8); // words 0 and 1
        t.trace_r(GPU, base + 4, 4); // word 1
        let e = t.smt.lookup(base).unwrap();
        assert!(e.shadow[0].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[1].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[1].get(AccessFlags::R_CG));
        assert!(!e.shadow[2].touched());
    }

    #[test]
    fn untracked_addresses_ignored() {
        let (mut t, _) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, 0xDEAD_0000, 4); // no crash, no effect
        assert_eq!(t.tracked(), 1);
    }

    #[test]
    fn rmw_is_read_then_write() {
        let (mut t, base) = tracer_with_alloc(16);
        // GPU increments a value last written by the CPU.
        t.trace_w(Device::Cpu, base, 4);
        t.trace_rw(GPU, base, 4);
        let e = t.smt.lookup(base).unwrap();
        // The read saw CPU origin (C>G), then the GPU became last writer.
        assert!(e.shadow[0].get(AccessFlags::R_CG));
        assert!(e.shadow[0].get(AccessFlags::GPU_WROTE));
        assert!(e.shadow[0].get(AccessFlags::LAST_WRITER_GPU));
    }

    #[test]
    fn h2d_memcpy_recorded_as_cpu_writes_on_dst() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 256, AllocKind::Host);
        t.on_alloc(0x20_0000, 256, AllocKind::Device(0));
        t.on_memcpy(0x20_0000, 0x10_0000, 128, CopyKind::HostToDevice);
        let e = t.smt.lookup(0x20_0000).unwrap();
        assert!(e.shadow[0].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[31].get(AccessFlags::CPU_WROTE));
        assert!(!e.shadow[32].touched());
        assert_eq!(e.copied_in, vec![(0, 128)]);
    }

    #[test]
    fn d2h_memcpy_recorded_as_cpu_reads_of_src() {
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 256, AllocKind::Device(0));
        t.on_alloc(0x20_0000, 256, AllocKind::Host);
        // GPU wrote the buffer first.
        t.trace_w(GPU, 0x10_0000, 256);
        t.on_memcpy(0x20_0000, 0x10_0000, 256, CopyKind::DeviceToHost);
        let e = t.smt.lookup(0x10_0000).unwrap();
        // CPU reads of GPU-written values: G>C.
        assert!(e.shadow[0].get(AccessFlags::R_GC));
        assert_eq!(e.copied_out, vec![(0, 256)]);
    }

    #[test]
    fn epoch_reset_clears_everything() {
        let (mut t, base) = tracer_with_alloc(64);
        t.trace_w(Device::Cpu, base, 4);
        t.on_kernel_launch("k1");
        t.on_free(base);
        assert_eq!(t.tracked(), 1); // deferred
        t.end_epoch();
        assert_eq!(t.tracked(), 0);
        assert!(t.kernel_log.is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (mut t, base) = tracer_with_alloc(64);
        t.enabled = false;
        t.trace_w(Device::Cpu, base, 4);
        t.on_kernel_launch("k");
        let e = t.smt.lookup(base).unwrap();
        assert!(!e.shadow[0].touched());
        assert!(t.kernel_log.is_empty());
    }

    #[test]
    fn memcpy_over_4_gib_is_not_truncated() {
        // `bytes` ≥ 4 GiB used to be cast to u32 before word_span, so a
        // (1<<32)+4 byte copy silently shadowed only the first word.
        let mut t = Tracer::new();
        t.on_alloc(0x10_0000, 64, AllocKind::Device(0));
        t.on_alloc(0x20_0000, 64, AllocKind::Host);
        let huge = (1u64 << 32) + 4;
        t.on_memcpy(0x10_0000, 0x20_0000, huge, CopyKind::HostToDevice);
        let e = t.smt.lookup(0x10_0000).unwrap();
        // Clamped to the allocation: all 16 words written, not just one.
        assert!(e.shadow[15].get(AccessFlags::CPU_WROTE));
        assert_eq!(e.copied_in, vec![(0, huge)]);

        t.on_memcpy(0x20_0000, 0x10_0000, huge, CopyKind::DeviceToHost);
        let e = t.smt.lookup(0x10_0000).unwrap();
        assert!(e.shadow[15].get(AccessFlags::R_CC));
    }

    /// Replays `ops` on two tracers — per-element on one, ranged on the
    /// other — and asserts identical shadow bytes.
    fn assert_range_equiv(size: u64, ops: &[(AccessKind, Device, u64, u32, u64)]) {
        let (mut per, base) = tracer_with_alloc(size);
        let (mut rng, _) = tracer_with_alloc(size);
        for &(kind, dev, off, elem, count) in ops {
            for i in 0..count {
                let a = base + off + i * u64::from(elem);
                match kind {
                    AccessKind::Read => per.trace_r(dev, a, elem),
                    AccessKind::Write => per.trace_w(dev, a, elem),
                    AccessKind::ReadWrite => per.trace_rw(dev, a, elem),
                }
            }
            match kind {
                AccessKind::Read => rng.trace_r_range(dev, base + off, elem, count),
                AccessKind::Write => rng.trace_w_range(dev, base + off, elem, count),
                AccessKind::ReadWrite => rng.trace_rw_range(dev, base + off, elem, count),
            }
        }
        let a: Vec<u8> = per
            .smt
            .lookup(base)
            .unwrap()
            .shadow
            .iter()
            .map(|f| f.0)
            .collect();
        let b: Vec<u8> = rng
            .smt
            .lookup(base)
            .unwrap()
            .shadow
            .iter()
            .map(|f| f.0)
            .collect();
        assert_eq!(a, b, "ops: {ops:?}");
    }

    #[test]
    fn range_trace_matches_per_element() {
        use AccessKind::*;
        // Aligned word-multiple elements: the vectorized pass.
        assert_range_equiv(
            256,
            &[(Write, Device::Cpu, 0, 4, 64), (Read, GPU, 0, 4, 64)],
        );
        assert_range_equiv(
            256,
            &[(Write, GPU, 16, 8, 20), (ReadWrite, Device::Cpu, 16, 8, 20)],
        );
        // Sub-word elements straddling shadow words (RMW falls back).
        assert_range_equiv(64, &[(ReadWrite, GPU, 0, 2, 32)]);
        assert_range_equiv(64, &[(Read, Device::Cpu, 1, 1, 63), (Write, GPU, 3, 2, 30)]);
        // Unaligned base with word-multiple element.
        assert_range_equiv(64, &[(ReadWrite, Device::Cpu, 2, 4, 15)]);
        // Mixed devices over the same span: origin flips mid-history.
        assert_range_equiv(
            128,
            &[
                (Write, Device::Cpu, 0, 4, 32),
                (ReadWrite, GPU, 0, 4, 32),
                (Read, Device::Cpu, 0, 4, 32),
                (Read, GPU, 64, 4, 16),
            ],
        );
    }

    #[test]
    fn range_trace_is_idempotent_at_saturation() {
        use AccessKind::*;
        // Re-running a saturated range (early-exit path) must match two
        // per-element passes exactly.
        assert_range_equiv(
            128,
            &[
                (Write, GPU, 0, 4, 32),
                (Write, GPU, 0, 4, 32),
                (Read, Device::Cpu, 0, 8, 16),
                (Read, Device::Cpu, 0, 8, 16),
                (ReadWrite, GPU, 0, 4, 32),
                (ReadWrite, GPU, 0, 4, 32),
            ],
        );
    }

    #[test]
    fn range_spilling_past_allocation_matches_per_element_clamp() {
        // 64-byte alloc, range asks for 32 elements of 4 bytes starting
        // at offset 32: the last 24 elements are untracked and ignored.
        assert_range_equiv(64, &[(AccessKind::Write, Device::Cpu, 32, 4, 32)]);
        assert_range_equiv(64, &[(AccessKind::ReadWrite, GPU, 32, 4, 32)]);
    }

    #[test]
    fn hook_range_seam_dispatches_by_kind() {
        let (mut t, base) = tracer_with_alloc(64);
        t.on_access_range(Device::Cpu, base, 4, 4, AccessKind::Write);
        t.on_access_range(GPU, base, 4, 4, AccessKind::Read);
        t.on_access_range(GPU, base + 16, 4, 4, AccessKind::ReadWrite);
        let e = t.smt.lookup(base).unwrap();
        assert!(e.shadow[0].get(AccessFlags::CPU_WROTE));
        assert!(e.shadow[3].get(AccessFlags::R_CG));
        assert!(e.shadow[4].get(AccessFlags::GPU_WROTE));
        assert!(e.shadow[4].get(AccessFlags::R_CC) || e.shadow[4].get(AccessFlags::R_CG));
        assert!(!e.shadow[8].touched());
    }

    #[test]
    fn register_names_labels_known_allocs_only() {
        let (mut t, base) = tracer_with_alloc(64);
        t.register_names(&[
            XplAllocData::new(base, "dom", 8),
            XplAllocData::new(0xBAD, "ghost", 8),
        ]);
        assert_eq!(t.smt.lookup(base).unwrap().display_name(), "dom");
    }
}
