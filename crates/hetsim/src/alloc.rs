//! Simulated address space: a bump allocator handing out page-aligned
//! ranges, each backed by real bytes so workloads compute verifiable
//! results.

use std::collections::BTreeMap;

use crate::error::{SimError, SimResult};
use crate::types::{Addr, AllocKind};

/// First address ever handed out; everything below it (including null)
/// faults as unallocated.
pub const HEAP_BASE: Addr = 0x10_0000;

/// One live or freed allocation.
#[derive(Debug)]
pub struct Allocation {
    /// Base address (what the allocating call returned).
    pub base: Addr,
    /// Size in bytes as requested.
    pub size: u64,
    /// Which API family produced it.
    pub kind: AllocKind,
    /// Backing bytes (zero-initialized; deterministic stand-in for
    /// whatever garbage real memory would contain).
    pub data: Vec<u8>,
    /// False once freed. Freed entries are kept so use-after-free and
    /// double-free are reported precisely.
    pub live: bool,
    /// Monotonic id, in allocation order.
    pub serial: u64,
}

impl Allocation {
    /// Whether `addr..addr+len` lies inside this allocation.
    #[inline]
    pub fn contains(&self, addr: Addr, len: u64) -> bool {
        addr >= self.base && addr + len <= self.base + self.size
    }

    /// Exclusive end address.
    #[inline]
    pub fn end(&self) -> Addr {
        self.base + self.size
    }
}

/// The address space of the simulated node. All devices share one virtual
/// address space, as under CUDA unified addressing.
pub struct AddressSpace {
    allocs: BTreeMap<Addr, Allocation>,
    next: Addr,
    next_serial: u64,
    align: u64,
    /// Base of the most recently touched allocation — workloads stream, so
    /// this hits almost always and skips the tree walk.
    last_hit: Addr,
}

impl AddressSpace {
    /// Create an empty address space whose allocations are aligned to
    /// `align` bytes (the machine passes its page size so distinct
    /// allocations never share a page).
    pub fn new(align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        AddressSpace {
            allocs: BTreeMap::new(),
            next: HEAP_BASE,
            next_serial: 0,
            align,
            last_hit: 0,
        }
    }

    /// Allocate `size` bytes (zero-size allocations occupy one alignment
    /// unit so they still have a unique base).
    pub fn alloc(&mut self, size: u64, kind: AllocKind) -> SimResult<Addr> {
        let base = self.next;
        let span = size.max(1).div_ceil(self.align) * self.align;
        let (next, overflow) = base.overflowing_add(span);
        if overflow {
            return Err(SimError::OutOfMemory { requested: size });
        }
        self.next = next;
        let serial = self.next_serial;
        self.next_serial += 1;
        self.allocs.insert(
            base,
            Allocation {
                base,
                size,
                kind,
                data: vec![0u8; size as usize],
                live: true,
                serial,
            },
        );
        Ok(base)
    }

    /// Free the allocation with base address `base`. Returns its size.
    /// Backing bytes are dropped; the tombstone entry remains for
    /// diagnostics.
    pub fn free(&mut self, base: Addr) -> SimResult<u64> {
        match self.allocs.get_mut(&base) {
            None => Err(SimError::BadFree { addr: base }),
            Some(a) if !a.live => Err(SimError::DoubleFree { base }),
            Some(a) => {
                a.live = false;
                a.data = Vec::new();
                if self.last_hit == base {
                    self.last_hit = 0;
                }
                Ok(a.size)
            }
        }
    }

    /// Find the live allocation containing `addr..addr+len`.
    pub fn find(&self, addr: Addr, len: u64) -> SimResult<&Allocation> {
        // Fast path: same allocation as last time.
        if self.last_hit != 0 {
            if let Some(a) = self.allocs.get(&self.last_hit) {
                if a.live && a.contains(addr, len) {
                    return Ok(a);
                }
            }
        }
        self.find_slow(addr, len)
    }

    #[cold]
    fn find_slow(&self, addr: Addr, len: u64) -> SimResult<&Allocation> {
        let (_, a) = self
            .allocs
            .range(..=addr)
            .next_back()
            .ok_or(SimError::Unallocated { addr })?;
        if !a.live {
            if addr < a.end() {
                return Err(SimError::UseAfterFree { addr });
            }
            return Err(SimError::Unallocated { addr });
        }
        if !a.contains(addr, len) {
            if addr < a.end() {
                return Err(SimError::OutOfBounds { addr, size: len });
            }
            return Err(SimError::Unallocated { addr });
        }
        Ok(a)
    }

    /// Like [`find`](Self::find) but remembers the hit for the fast path
    /// and returns a mutable allocation.
    pub fn find_mut(&mut self, addr: Addr, len: u64) -> SimResult<&mut Allocation> {
        // Resolve the base first (immutably), then re-borrow mutably.
        let base = self.find(addr, len)?.base;
        self.last_hit = base;
        Ok(self.allocs.get_mut(&base).expect("just found"))
    }

    /// Copy `out.len()` bytes starting at `addr` into `out`.
    pub fn read_bytes(&mut self, addr: Addr, out: &mut [u8]) -> SimResult<()> {
        let len = out.len() as u64;
        let a = self.find_mut(addr, len)?;
        let off = (addr - a.base) as usize;
        out.copy_from_slice(&a.data[off..off + out.len()]);
        Ok(())
    }

    /// Write `src` into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, src: &[u8]) -> SimResult<()> {
        let len = src.len() as u64;
        let a = self.find_mut(addr, len)?;
        let off = (addr - a.base) as usize;
        a.data[off..off + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (the data side of `memcpy`).
    /// Overlapping ranges behave like `memmove`.
    pub fn copy_bytes(&mut self, dst: Addr, src: Addr, len: u64) -> SimResult<()> {
        if len == 0 {
            return Ok(());
        }
        let mut buf = vec![0u8; len as usize];
        self.read_bytes(src, &mut buf)?;
        self.write_bytes(dst, &buf)
    }

    /// Iterate over all live allocations in address order.
    pub fn iter_live(&self) -> impl Iterator<Item = &Allocation> {
        self.allocs.values().filter(|a| a.live)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.iter_live().count()
    }

    /// Total bytes in live allocations.
    pub fn live_bytes(&self) -> u64 {
        self.iter_live().map(|a| a.size).sum()
    }

    /// Alignment (== machine page size).
    pub fn alignment(&self) -> u64 {
        self.align
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(4096)
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut s = space();
        let a = s.alloc(100, AllocKind::Managed).unwrap();
        let b = s.alloc(5000, AllocKind::Host).unwrap();
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 4096);
    }

    #[test]
    fn zero_size_allocations_get_unique_bases() {
        let mut s = space();
        let a = s.alloc(0, AllocKind::Managed).unwrap();
        let b = s.alloc(0, AllocKind::Managed).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = space();
        let a = s.alloc(64, AllocKind::Managed).unwrap();
        s.write_bytes(a + 8, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        s.read_bytes(a + 8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    fn fresh_memory_is_zeroed() {
        let mut s = space();
        let a = s.alloc(16, AllocKind::Device(0)).unwrap();
        let mut out = [0xFFu8; 16];
        s.read_bytes(a, &mut out).unwrap();
        assert_eq!(out, [0u8; 16]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut s = space();
        let a = s.alloc(16, AllocKind::Managed).unwrap();
        let mut out = [0u8; 4];
        let err = s.read_bytes(a + 14, &mut out).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn unallocated_detected() {
        let mut s = space();
        let mut out = [0u8; 4];
        assert!(matches!(
            s.read_bytes(0x10, &mut out).unwrap_err(),
            SimError::Unallocated { .. }
        ));
    }

    #[test]
    fn use_after_free_detected() {
        let mut s = space();
        let a = s.alloc(32, AllocKind::Managed).unwrap();
        s.free(a).unwrap();
        let mut out = [0u8; 4];
        assert_eq!(
            s.read_bytes(a, &mut out).unwrap_err(),
            SimError::UseAfterFree { addr: a }
        );
    }

    #[test]
    fn double_free_and_bad_free_detected() {
        let mut s = space();
        let a = s.alloc(32, AllocKind::Managed).unwrap();
        s.free(a).unwrap();
        assert_eq!(s.free(a).unwrap_err(), SimError::DoubleFree { base: a });
        assert_eq!(
            s.free(a + 8).unwrap_err(),
            SimError::BadFree { addr: a + 8 }
        );
    }

    #[test]
    fn copy_bytes_moves_data() {
        let mut s = space();
        let a = s.alloc(32, AllocKind::Host).unwrap();
        let b = s.alloc(32, AllocKind::Device(0)).unwrap();
        s.write_bytes(a, &[9u8; 32]).unwrap();
        s.copy_bytes(b, a, 32).unwrap();
        let mut out = [0u8; 32];
        s.read_bytes(b, &mut out).unwrap();
        assert_eq!(out, [9u8; 32]);
    }

    #[test]
    fn live_accounting() {
        let mut s = space();
        let a = s.alloc(10, AllocKind::Managed).unwrap();
        let _b = s.alloc(20, AllocKind::Managed).unwrap();
        assert_eq!(s.live_count(), 2);
        assert_eq!(s.live_bytes(), 30);
        s.free(a).unwrap();
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.live_bytes(), 20);
    }

    #[test]
    fn find_cache_survives_free() {
        let mut s = space();
        let a = s.alloc(16, AllocKind::Managed).unwrap();
        let mut out = [0u8; 1];
        s.read_bytes(a, &mut out).unwrap(); // primes last_hit
        s.free(a).unwrap();
        assert!(s.read_bytes(a, &mut out).is_err());
    }
}
