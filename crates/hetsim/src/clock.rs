//! Simulated time: a host timeline plus CUDA-style streams whose work can
//! overlap with the host and with each other.
//!
//! Model: the host clock `now` advances as host code executes. Enqueuing
//! work on a stream schedules it at `max(now, stream tail)`; synchronizing
//! advances `now` to the stream's tail. This is exactly enough to express
//! the compute/transfer overlap the paper exploits for Pathfinder (Fig 11).

/// Identifier of a stream created by [`Clock::create_stream`]. Stream 0 is
/// the default stream and always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// The default stream (synchronous CUDA calls run here).
pub const DEFAULT_STREAM: StreamId = StreamId(0);

/// Host timeline + stream tails, all in nanoseconds.
#[derive(Debug, Clone)]
pub struct Clock {
    now: f64,
    streams: Vec<f64>,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    pub fn new() -> Self {
        Clock {
            now: 0.0,
            streams: vec![0.0],
        }
    }

    /// Current host time.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance the host clock by `dt` nanoseconds (host work).
    #[inline]
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time step");
        self.now += dt;
    }

    /// Create a new, initially idle stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(self.now);
        StreamId(self.streams.len() - 1)
    }

    /// Number of streams (including the default stream).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Enqueue `dur` nanoseconds of work on `s`; returns its completion
    /// time. The host does not block.
    pub fn enqueue(&mut self, s: StreamId, dur: f64) -> f64 {
        debug_assert!(dur >= 0.0);
        let tail = &mut self.streams[s.0];
        let start = tail.max(self.now);
        *tail = start + dur;
        *tail
    }

    /// Block the host until everything enqueued on `s` has completed.
    pub fn sync_stream(&mut self, s: StreamId) {
        self.now = self.now.max(self.streams[s.0]);
    }

    /// Block the host until every stream has drained
    /// (`cudaDeviceSynchronize`).
    pub fn sync_all(&mut self) {
        for &t in &self.streams {
            self.now = self.now.max(t);
        }
    }

    /// Completion time of the last op enqueued on `s`.
    pub fn stream_tail(&self, s: StreamId) -> f64 {
        self.streams[s.0]
    }

    /// Tail of every stream, indexed by [`StreamId`] (slot 0 is the
    /// default stream). The per-stream timeline state: entry `i` is the
    /// completion time of the last op enqueued on stream `i`.
    pub fn stream_tails(&self) -> &[f64] {
        &self.streams
    }

    /// Reset time to zero and drop all non-default streams.
    pub fn reset(&mut self) {
        self.now = 0.0;
        self.streams.clear();
        self.streams.push(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_advance() {
        let mut c = Clock::new();
        c.advance(10.0);
        c.advance(5.0);
        assert_eq!(c.now(), 15.0);
    }

    #[test]
    fn sequential_enqueue_on_one_stream_serializes() {
        let mut c = Clock::new();
        let s = c.create_stream();
        assert_eq!(c.enqueue(s, 100.0), 100.0);
        assert_eq!(c.enqueue(s, 50.0), 150.0);
        assert_eq!(c.now(), 0.0); // host did not block
        c.sync_stream(s);
        assert_eq!(c.now(), 150.0);
    }

    #[test]
    fn two_streams_overlap() {
        let mut c = Clock::new();
        let a = c.create_stream();
        let b = c.create_stream();
        c.enqueue(a, 100.0);
        c.enqueue(b, 80.0);
        c.sync_all();
        // Overlapped: total is the max, not the sum.
        assert_eq!(c.now(), 100.0);
    }

    #[test]
    fn enqueue_after_host_progress_starts_at_now() {
        let mut c = Clock::new();
        let s = c.create_stream();
        c.advance(42.0);
        assert_eq!(c.enqueue(s, 10.0), 52.0);
    }

    #[test]
    fn pathfinder_style_pipeline() {
        // Kernel i on compute stream overlaps copy i+1 on copy stream.
        let mut c = Clock::new();
        let compute = c.create_stream();
        let copy = c.create_stream();
        let (kernel_ns, copy_ns, iters) = (100.0, 60.0, 5);
        // Initial copy must finish before the first kernel.
        c.enqueue(copy, copy_ns);
        c.sync_stream(copy);
        for _ in 0..iters {
            c.enqueue(compute, kernel_ns);
            c.enqueue(copy, copy_ns);
            // Next kernel waits for both its input copy and the prior kernel.
            c.sync_stream(copy);
            // (host-side wait models the event dependency)
        }
        c.sync_all();
        // Copies hide behind kernels: total ≈ first copy + n kernels,
        // rather than n*(kernel+copy).
        assert!(c.now() < (kernel_ns + copy_ns) * iters as f64);
        assert!(c.now() >= copy_ns + kernel_ns * iters as f64 - 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Clock::new();
        let s = c.create_stream();
        c.enqueue(s, 10.0);
        c.advance(3.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.stream_count(), 1);
    }

    #[test]
    fn stream_tails_exposes_per_stream_state() {
        let mut c = Clock::new();
        let a = c.create_stream();
        let b = c.create_stream();
        c.enqueue(a, 100.0);
        c.enqueue(b, 80.0);
        assert_eq!(c.stream_tails(), &[0.0, 100.0, 80.0]);
        // Overlap is visible: both tails exceed the host clock.
        assert!(c.stream_tails()[1..].iter().all(|&t| t > c.now()));
    }

    #[test]
    fn default_stream_exists() {
        let mut c = Clock::new();
        c.enqueue(DEFAULT_STREAM, 7.0);
        c.sync_stream(DEFAULT_STREAM);
        assert_eq!(c.now(), 7.0);
    }
}
