//! Error type for simulated memory operations.

use crate::types::{Addr, Device};

/// Failure modes of the simulated memory system. These mirror the bugs a
/// real CUDA program would hit (illegal address, host dereference of a
/// `cudaMalloc` pointer, double free, ...), so the interpreter can surface
/// them as program errors instead of crashing the tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Address does not fall inside any live allocation.
    Unallocated { addr: Addr },
    /// Address belongs to an allocation that was already freed.
    UseAfterFree { addr: Addr },
    /// `free` called twice on the same base address.
    DoubleFree { base: Addr },
    /// `free` called with a pointer that is not an allocation base.
    BadFree { addr: Addr },
    /// Access runs past the end of its allocation.
    OutOfBounds { addr: Addr, size: u64 },
    /// A device touched memory it has no path to (e.g. CPU dereferencing a
    /// `cudaMalloc` pointer, or a GPU dereferencing host heap memory).
    IllegalAccess { device: Device, addr: Addr },
    /// `cudaMemAdvise` on memory that is not managed.
    AdviseOnUnmanaged { addr: Addr },
    /// A `memcpy` whose direction does not match the allocation kinds of
    /// its operands.
    BadCopyDirection { dst: Addr, src: Addr },
    /// The simulated allocator ran out of address space.
    OutOfMemory { requested: u64 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unallocated { addr } => {
                write!(f, "access to unallocated address 0x{addr:x}")
            }
            SimError::UseAfterFree { addr } => {
                write!(f, "use after free at 0x{addr:x}")
            }
            SimError::DoubleFree { base } => write!(f, "double free of 0x{base:x}"),
            SimError::BadFree { addr } => {
                write!(f, "free of 0x{addr:x} which is not an allocation base")
            }
            SimError::OutOfBounds { addr, size } => {
                write!(f, "access of {size} bytes at 0x{addr:x} runs out of bounds")
            }
            SimError::IllegalAccess { device, addr } => {
                write!(f, "{device} has no access path to 0x{addr:x}")
            }
            SimError::AdviseOnUnmanaged { addr } => {
                write!(f, "cudaMemAdvise on non-managed memory at 0x{addr:x}")
            }
            SimError::BadCopyDirection { dst, src } => write!(
                f,
                "memcpy direction does not match operands (dst=0x{dst:x}, src=0x{src:x})"
            ),
            SimError::OutOfMemory { requested } => {
                write!(
                    f,
                    "simulated address space exhausted ({requested} bytes requested)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type SimResult<T> = Result<T, SimError>;
