//! The structured event stream: every driver-level action the simulator
//! takes, stamped with its simulated-clock time.
//!
//! Where [`crate::stats::Stats`] aggregates *how many* faults and
//! migrations a run took, the event stream records *when* each one
//! happened and on which stream — the raw material for timeline traces
//! (`chrome://tracing`), per-phase breakdowns, and heatmaps. Events are
//! delivered through [`MemHook::on_event`](crate::hook::MemHook::on_event)
//! so any hook can observe them; [`EventLog`] is the standard recorder, a
//! bounded ring buffer that drops the oldest events under pressure rather
//! than growing without bound.

use std::collections::VecDeque;
use std::rc::Rc;

use crate::clock::{StreamId, DEFAULT_STREAM};
use crate::hook::MemHook;
use crate::types::{AccessKind, Addr, AllocKind, CopyKind, Device, MemAdvise};

/// One simulator action. Span-like events (kernels, copies, prefetches)
/// carry their own `[start_ns, end_ns]` interval; point events are located
/// solely by the [`TimedEvent`] timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A heap allocation.
    Alloc {
        base: Addr,
        bytes: u64,
        kind: AllocKind,
    },
    /// An allocation was freed.
    Free { base: Addr },
    /// A managed-memory access faulted (`write` distinguishes the paper's
    /// read vs write fault groups).
    PageFault { dev: Device, page: u64, write: bool },
    /// A page migrated to `to` (on-demand; prefetch traffic is reported
    /// as [`Event::Prefetch`]).
    Migration { page: u64, to: Device, bytes: u64 },
    /// A ReadMostly page was duplicated into `to`.
    ReadDup { page: u64, to: Device, bytes: u64 },
    /// A write invalidated `copies` duplicated copies of `page`.
    Invalidate { page: u64, copies: u32 },
    /// Oversubscription evicted `pages` pages (`bytes` of GPU residency
    /// released). `writeback_pages`/`writeback_bytes` count the dirty
    /// subset that additionally migrated back to the host — that traffic
    /// is folded into `Stats::migrations_d2h`/`bytes_migrated` but gets no
    /// separate [`Event::Migration`], so consumers reconstructing totals
    /// from the stream must read it from here.
    Evict {
        pages: u32,
        bytes: u64,
        writeback_pages: u32,
        writeback_bytes: u64,
    },
    /// An explicit `cudaMemcpy`/`cudaMemcpyAsync`.
    Memcpy {
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
        start_ns: f64,
        end_ns: f64,
    },
    /// `cudaMemAdvise` over a range.
    Advise {
        addr: Addr,
        bytes: u64,
        advice: MemAdvise,
    },
    /// `cudaMemPrefetchAsync` over a range. `bytes` is the requested
    /// range; `pages`/`bytes_moved` are what actually migrated (each page
    /// counted as a migration in `Stats`, with no separate
    /// [`Event::Migration`] emitted).
    Prefetch {
        addr: Addr,
        bytes: u64,
        pages: u32,
        bytes_moved: u64,
        to: Device,
        stream: StreamId,
        start_ns: f64,
        end_ns: f64,
    },
    /// A kernel entered execution (host-side launch point).
    KernelBegin { name: String },
    /// A kernel completed; the span is its scheduled execution interval on
    /// `stream`.
    KernelEnd {
        name: String,
        stream: StreamId,
        start_ns: f64,
        end_ns: f64,
    },
}

impl Event {
    /// The `[start_ns, end_ns]` interval of a span event (kernel, memcpy,
    /// prefetch); `None` for point events, which are located solely by the
    /// [`TimedEvent`] stamp. Dependency-DAG consumers use this to place
    /// stream-resident work without re-deriving spans from begin/end pairs.
    pub fn span(&self) -> Option<(f64, f64)> {
        match self {
            Event::Memcpy {
                start_ns, end_ns, ..
            }
            | Event::Prefetch {
                start_ns, end_ns, ..
            }
            | Event::KernelEnd {
                start_ns, end_ns, ..
            } => Some((*start_ns, *end_ns)),
            _ => None,
        }
    }

    /// The stream the event itself executed on, when the event carries one
    /// (asynchronous spans); point events inherit their causing context's
    /// stream ([`AttrCtx::stream`]).
    pub fn stream(&self) -> Option<StreamId> {
        match self {
            Event::Memcpy { stream, .. }
            | Event::Prefetch { stream, .. }
            | Event::KernelEnd { stream, .. } => Some(*stream),
            _ => None,
        }
    }

    /// The managed page the event concerns, for the fault → migration →
    /// access causality chain (`None` for range- or span-level events).
    pub fn page(&self) -> Option<u64> {
        match self {
            Event::PageFault { page, .. }
            | Event::Migration { page, .. }
            | Event::ReadDup { page, .. }
            | Event::Invalidate { page, .. } => Some(*page),
            _ => None,
        }
    }

    /// Stable lowercase tag for grouping and serialization.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Alloc { .. } => "alloc",
            Event::Free { .. } => "free",
            Event::PageFault { .. } => "page_fault",
            Event::Migration { .. } => "migration",
            Event::ReadDup { .. } => "read_dup",
            Event::Invalidate { .. } => "invalidate",
            Event::Evict { .. } => "evict",
            Event::Memcpy { .. } => "memcpy",
            Event::Advise { .. } => "advise",
            Event::Prefetch { .. } => "prefetch",
            Event::KernelBegin { .. } => "kernel_begin",
            Event::KernelEnd { .. } => "kernel_end",
        }
    }
}

/// Attribution context: *who caused* an event. The machine stamps every
/// event with the execution context that was active when it fired, so
/// downstream profilers can charge costs to (kernel × allocation) pairs
/// without re-deriving spans from the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrCtx {
    /// Kernel executing when the event fired; `None` means host code.
    /// Shared `Rc<str>` so per-event stamping stays allocation-free.
    pub kernel: Option<Rc<str>>,
    /// Monotonic launch sequence number distinguishing repeat launches of
    /// the same kernel name (0 when `kernel` is `None`).
    pub launch_seq: u64,
    /// Stream the causing context ran on.
    pub stream: StreamId,
    /// Base address of the allocation the event concerns, when known.
    pub alloc: Option<Addr>,
}

impl AttrCtx {
    /// Host context: no kernel, default stream, no allocation.
    pub fn host() -> Self {
        AttrCtx {
            kernel: None,
            launch_seq: 0,
            stream: DEFAULT_STREAM,
            alloc: None,
        }
    }

    /// Kernel name as a plain `&str`, if any.
    pub fn kernel_name(&self) -> Option<&str> {
        self.kernel.as_deref()
    }
}

impl Default for AttrCtx {
    fn default() -> Self {
        Self::host()
    }
}

/// An [`Event`] stamped with the simulated time (ns) it was recorded at.
/// For span events the stamp equals `end_ns`; for events raised inside a
/// kernel it is the launch time plus the serial driver cost accumulated so
/// far (the machine only settles the kernel's total duration at the end).
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    pub t_ns: f64,
    /// Simulated nanoseconds this event cost the run: the serial driver
    /// charge for point events, the span duration for span events, zero
    /// for free bookkeeping events (advice, kernel-begin markers).
    pub cost_ns: f64,
    /// Who caused the event.
    pub ctx: AttrCtx,
    pub event: Event,
}

impl TimedEvent {
    /// The stream this event's work executed on: the span's own stream for
    /// asynchronous span events, the causing context's stream otherwise.
    /// This is the timeline key dependency-DAG builders order events by.
    pub fn effective_stream(&self) -> StreamId {
        self.event.stream().unwrap_or(self.ctx.stream)
    }
}

/// Bounded ring-buffer recorder for the event stream. Attach it to a
/// [`Machine`](crate::machine::Machine) (alone, or alongside a tracer via
/// [`FanoutHook`](crate::hook::FanoutHook)); it observes passively and
/// never alters simulation results or timing.
#[derive(Debug, Clone)]
pub struct EventLog {
    buf: VecDeque<TimedEvent>,
    cap: usize,
    total: u64,
    dropped: u64,
}

impl EventLog {
    /// Default ring capacity — enough for every workload in this repo
    /// while bounding memory for adversarial access patterns.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A ring holding at most `cap` events (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 1, "event log capacity must be at least 1");
        EventLog {
            buf: VecDeque::with_capacity(cap.min(4096)),
            cap,
            total: 0,
            dropped: 0,
        }
    }

    fn record(&mut self, ev: &TimedEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev.clone());
        self.total += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events recorded over the log's lifetime (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events evicted from the ring by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events with the given [`Event::kind_name`].
    pub fn count_of(&self, kind: &str) -> usize {
        self.buf
            .iter()
            .filter(|e| e.event.kind_name() == kind)
            .count()
    }

    /// Forget everything (capacity is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.total = 0;
        self.dropped = 0;
    }
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MemHook for EventLog {
    // The log listens only to the structured stream; the per-word
    // callbacks would flood the ring and are already covered by Stats.
    fn on_alloc(&mut self, _base: Addr, _size: u64, _kind: AllocKind) {}
    fn on_free(&mut self, _base: Addr) {}
    fn on_read(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    fn on_write(&mut self, _dev: Device, _addr: Addr, _size: u32) {}
    // Override the default per-element decomposition with a no-op: the
    // log ignores word traffic, so through a fanout it must not pay O(n)
    // empty calls per bulk range either.
    fn on_access_range(&mut self, _: Device, _: Addr, _: u32, _: u64, _: AccessKind) {}
    fn on_memcpy(&mut self, _dst: Addr, _src: Addr, _bytes: u64, _kind: CopyKind) {}
    fn on_kernel_launch(&mut self, _name: &str) {}

    fn on_event(&mut self, ev: &TimedEvent) {
        self.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64) -> TimedEvent {
        TimedEvent {
            t_ns: t,
            cost_ns: 0.0,
            ctx: AttrCtx::host(),
            event: Event::Free { base: t as Addr },
        }
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5 {
            MemHook::on_event(&mut log, &ev(i as f64));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 5);
        assert_eq!(log.dropped(), 2);
        let ts: Vec<f64> = log.events().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn count_of_filters_by_kind() {
        let mut log = EventLog::new();
        MemHook::on_event(&mut log, &ev(1.0));
        MemHook::on_event(
            &mut log,
            &TimedEvent {
                t_ns: 2.0,
                cost_ns: 0.0,
                ctx: AttrCtx::host(),
                event: Event::KernelBegin { name: "k".into() },
            },
        );
        assert_eq!(log.count_of("free"), 1);
        assert_eq!(log.count_of("kernel_begin"), 1);
        assert_eq!(log.count_of("memcpy"), 0);
    }

    #[test]
    fn clear_resets_counters() {
        let mut log = EventLog::with_capacity(1);
        MemHook::on_event(&mut log, &ev(1.0));
        MemHook::on_event(&mut log, &ev(2.0));
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 0);
        assert_eq!(log.dropped(), 0);
        assert_eq!(log.capacity(), 1);
    }

    #[test]
    fn word_level_callbacks_are_ignored() {
        let mut log = EventLog::new();
        log.on_read(Device::Cpu, 0x1000, 8);
        log.on_write(Device::Cpu, 0x1000, 8);
        log.on_kernel_launch("k");
        assert!(log.is_empty());
    }

    #[test]
    fn kind_names_are_stable() {
        let e = Event::Migration {
            page: 1,
            to: Device::GPU0,
            bytes: 4096,
        };
        assert_eq!(e.kind_name(), "migration");
    }

    #[test]
    fn dag_breadcrumbs_expose_span_stream_and_page() {
        let k = Event::KernelEnd {
            name: "k".into(),
            stream: StreamId(3),
            start_ns: 10.0,
            end_ns: 25.0,
        };
        assert_eq!(k.span(), Some((10.0, 25.0)));
        assert_eq!(k.stream(), Some(StreamId(3)));
        assert_eq!(k.page(), None);

        let f = Event::PageFault {
            dev: Device::GPU0,
            page: 7,
            write: true,
        };
        assert_eq!(f.span(), None);
        assert_eq!(f.stream(), None);
        assert_eq!(f.page(), Some(7));

        let te = TimedEvent {
            t_ns: 1.0,
            cost_ns: 0.0,
            ctx: AttrCtx {
                stream: StreamId(9),
                ..AttrCtx::host()
            },
            event: f,
        };
        assert_eq!(te.effective_stream(), StreamId(9));
        let te_span = TimedEvent {
            t_ns: 25.0,
            cost_ns: 15.0,
            ctx: AttrCtx::host(),
            event: k,
        };
        assert_eq!(te_span.effective_stream(), StreamId(3));
    }
}
