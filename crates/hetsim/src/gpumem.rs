//! Finite GPU physical memory with eviction.
//!
//! Two victim-selection policies:
//!
//! * [`EvictionPolicy::Fifo`] — evict the least-recently *inserted* page.
//!   Deterministic and simple, but pathological under cyclic access: the
//!   victim is exactly the page about to be reused.
//! * [`EvictionPolicy::Random`] (machine default, seeded, deterministic) —
//!   evict a uniformly random resident page. This matches the observed
//!   behaviour of the CUDA driver under slight oversubscription far
//!   better: when the working set exceeds capacity by a few percent,
//!   the miss rate is a few percent, not 100 % (the regime of the
//!   paper's Smith-Waterman input 46000).
//!
//! Recency is only updated on (re)insertion — i.e. on a fault — never on
//! plain accesses, so the hot path stays O(1).

use std::collections::{HashMap, VecDeque};

/// Victim selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict in insertion order.
    Fifo,
    /// Evict a seeded-random resident page.
    Random,
}

/// Residency tracker for one GPU.
///
/// Insertion order is kept exact (the conformance FIFO tests pin it down)
/// without O(n) removals: `order` is a queue of `(seq, page)` entries and
/// `index` maps each resident page to the sequence number of its *live*
/// entry. Removal just drops the index entry, leaving a tombstone in the
/// queue; tombstones are skipped during victim selection and compacted
/// away once they outnumber live entries.
#[derive(Debug)]
pub struct GpuMemory {
    capacity_pages: u64,
    policy: EvictionPolicy,
    /// Resident pages in exact insertion order, possibly interleaved with
    /// tombstones (entries whose seq no longer matches `index`).
    order: VecDeque<(u64, u64)>,
    /// page → seq of its live entry in `order`.
    index: HashMap<u64, u64>,
    /// Next insertion sequence number.
    next_seq: u64,
    /// xorshift state for Random policy (deterministic).
    rng: u64,
}

impl GpuMemory {
    /// Create a tracker for a device holding `capacity_bytes` of memory in
    /// pages of `page_size` bytes, using the [`EvictionPolicy::Random`]
    /// policy. At least one page of capacity is always granted.
    pub fn new(capacity_bytes: u64, page_size: u64) -> Self {
        Self::with_policy(capacity_bytes, page_size, EvictionPolicy::Random)
    }

    /// Create with an explicit policy.
    pub fn with_policy(capacity_bytes: u64, page_size: u64, policy: EvictionPolicy) -> Self {
        GpuMemory {
            capacity_pages: (capacity_bytes / page_size).max(1),
            policy,
            order: VecDeque::new(),
            index: HashMap::new(),
            next_seq: 0,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// Whether `page` currently occupies device memory.
    pub fn resident(&self, page: u64) -> bool {
        self.index.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn len(&self) -> u64 {
        self.index.len() as u64
    }

    /// Whether no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Device capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity_pages
    }

    /// Active policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Whether a queue entry still represents a resident page.
    fn live(&self, entry: (u64, u64)) -> bool {
        self.index.get(&entry.1) == Some(&entry.0)
    }

    /// Make `page` resident (or refresh its insertion recency), evicting
    /// other pages if capacity is exceeded. Returns the evicted pages.
    pub fn insert(&mut self, page: u64) -> Vec<u64> {
        self.touch(page);
        let mut evicted = Vec::new();
        while self.index.len() as u64 > self.capacity_pages {
            let victim = match self.policy {
                // Oldest live entry, skipping the just-inserted page.
                EvictionPolicy::Fifo => self
                    .order
                    .iter()
                    .copied()
                    .find(|&e| self.live(e) && e.1 != page)
                    .map(|e| e.1),
                EvictionPolicy::Random => {
                    // Up to a few tries to dodge tombstones and the
                    // just-inserted page, then fall back to a scan.
                    let mut pick = None;
                    for _ in 0..8 {
                        let i = (self.next_rand() % self.order.len() as u64) as usize;
                        let e = self.order[i];
                        if self.live(e) && e.1 != page {
                            pick = Some(e.1);
                            break;
                        }
                    }
                    pick.or_else(|| {
                        self.order
                            .iter()
                            .copied()
                            .find(|&e| self.live(e) && e.1 != page)
                            .map(|e| e.1)
                    })
                }
            };
            match victim {
                Some(v) => {
                    self.release(v);
                    evicted.push(v);
                }
                None => break,
            }
        }
        evicted
    }

    /// Refresh insertion recency of `page`, inserting it if absent. Does
    /// not evict.
    pub fn touch(&mut self, page: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Any previous entry for this page becomes a tombstone.
        self.index.insert(page, seq);
        self.order.push_back((seq, page));
        self.maybe_compact();
    }

    /// Drop `page` from device memory (migrated away or invalidated).
    pub fn release(&mut self, page: u64) {
        self.index.remove(&page);
        // The queue entry stays as a tombstone until compaction.
        self.maybe_compact();
    }

    /// Keep tombstones bounded: once they outnumber live entries, rebuild
    /// the queue from live entries only (order preserved). Amortized O(1).
    fn maybe_compact(&mut self) {
        if self.order.len() >= 8 && self.order.len() > 2 * self.index.len() {
            let mut kept = VecDeque::with_capacity(self.index.len());
            for &e in &self.order {
                if self.index.get(&e.1) == Some(&e.0) {
                    kept.push_back(e);
                }
            }
            self.order = kept;
        }
    }

    /// Drop everything (e.g. after a reset).
    pub fn clear(&mut self) {
        self.order.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo(pages: u64) -> GpuMemory {
        GpuMemory::with_policy(pages * 64, 64, EvictionPolicy::Fifo)
    }

    #[test]
    fn insert_until_capacity_no_eviction() {
        let mut g = fifo(4);
        for p in 0..4 {
            assert!(g.insert(p).is_empty());
        }
        assert_eq!(g.len(), 4);
        assert!(g.resident(0) && g.resident(3));
    }

    #[test]
    fn fifo_overflow_evicts_oldest() {
        let mut g = fifo(2);
        assert!(g.insert(10).is_empty());
        assert!(g.insert(11).is_empty());
        let ev = g.insert(12);
        assert_eq!(ev, vec![10]);
        assert!(!g.resident(10));
        assert!(g.resident(11) && g.resident(12));
    }

    #[test]
    fn fifo_reinsert_refreshes_recency() {
        let mut g = fifo(2);
        g.insert(1);
        g.insert(2);
        g.insert(1); // 1 is now most recent
        let ev = g.insert(3);
        assert_eq!(ev, vec![2]);
        assert!(g.resident(1));
    }

    #[test]
    fn release_frees_capacity() {
        let mut g = fifo(2);
        g.insert(1);
        g.insert(2);
        g.release(1);
        assert_eq!(g.len(), 1);
        assert!(g.insert(3).is_empty());
    }

    #[test]
    fn never_evicts_the_just_inserted_page() {
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Random] {
            let mut g = GpuMemory::with_policy(64, 64, policy);
            g.insert(7);
            let ev = g.insert(8);
            assert_eq!(ev, vec![7]);
            assert!(g.resident(8));
        }
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut g = GpuMemory::with_policy(8 * 64, 64, EvictionPolicy::Random);
            let mut all_evicted = Vec::new();
            for p in 0..64 {
                all_evicted.extend(g.insert(p));
            }
            all_evicted
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_policy_keeps_capacity_invariant() {
        let mut g = GpuMemory::with_policy(16 * 64, 64, EvictionPolicy::Random);
        for p in 0..1000 {
            g.insert(p % 37);
            assert!(g.len() <= 16);
        }
    }

    #[test]
    fn slight_overrun_misses_only_slightly() {
        // Cyclic sweep over capacity+2 pages: a sane policy must not
        // degenerate to missing on every touch (the reason the machine
        // defaults to Random — matching the driver's behaviour for the
        // paper's barely-oversubscribed Smith-Waterman input).
        let mut g = GpuMemory::with_policy(16 * 64, 64, EvictionPolicy::Random);
        let mut faults = 0u64;
        let mut touches = 0u64;
        for _round in 0..50 {
            for p in 0..18u64 {
                touches += 1;
                if !g.resident(p) {
                    faults += 1;
                    g.insert(p);
                }
            }
        }
        assert!(
            faults < touches / 2,
            "random policy missed {faults} of {touches} touches"
        );
    }

    #[test]
    fn minimum_one_page_capacity() {
        let g = GpuMemory::new(10, 64);
        assert_eq!(g.capacity(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut g = fifo(4);
        g.insert(1);
        g.insert(2);
        g.clear();
        assert!(g.is_empty());
        assert!(!g.resident(1));
    }

    #[test]
    fn default_policy_is_random() {
        assert_eq!(GpuMemory::new(64, 64).policy(), EvictionPolicy::Random);
    }
}
