//! The instrumentation hook: the seam where XPlacer's runtime attaches.
//!
//! In the paper, the ROSE pass rewrites source so every heap access calls
//! `traceR`/`traceW`/`traceRW` and every CUDA call goes through a wrapper.
//! Here the simulated machine plays the role of the instrumented binary:
//! when a hook is attached it invokes these callbacks at exactly the points
//! the instrumented source would — per heap word access, per allocation,
//! per copy, per kernel launch. Running with no hook attached corresponds
//! to the uninstrumented baseline (Table III measures the difference).

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::StreamId;
use crate::event::TimedEvent;
use crate::types::{AccessKind, Addr, AllocKind, CopyKind, Device};

/// Observer of simulated memory events.
pub trait MemHook {
    /// A heap allocation of `size` bytes at `base` via `kind`.
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind);

    /// `free`/`cudaFree` of the allocation at `base`.
    fn on_free(&mut self, base: Addr);

    /// A read of `size` bytes at `addr` by `dev` (maps to `traceR`).
    fn on_read(&mut self, dev: Device, addr: Addr, size: u32);

    /// A write of `size` bytes at `addr` by `dev` (maps to `traceW`).
    fn on_write(&mut self, dev: Device, addr: Addr, size: u32);

    /// A read-modify-write (maps to `traceRW`).
    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.on_read(dev, addr, size);
        self.on_write(dev, addr, size);
    }

    /// A contiguous range access: `count` elements of `elem_size` bytes
    /// starting at `addr`, all performed by `dev` with the same access
    /// kind. This is the machine's bulk fast path (`read_range` and
    /// friends); the default implementation decomposes into the per-word
    /// callbacks above, so a hook that does not override it observes
    /// exactly the sequence the per-word path would have delivered.
    fn on_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        for i in 0..count {
            let a = addr + i * elem_size as u64;
            match kind {
                AccessKind::Read => self.on_read(dev, a, elem_size),
                AccessKind::Write => self.on_write(dev, a, elem_size),
                AccessKind::ReadWrite => self.on_read_write(dev, a, elem_size),
            }
        }
    }

    /// An explicit `cudaMemcpy`.
    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind);

    /// A kernel launch (maps to the `replace kernel-launch` wrapper).
    fn on_kernel_launch(&mut self, name: &str);

    /// A kernel completed.
    fn on_kernel_end(&mut self, name: &str) {
        let _ = name;
    }

    /// A timestamped structured event (fault, migration, kernel span, ...).
    /// Fired in addition to the per-kind callbacks above; hooks that only
    /// care about word accesses can ignore it. See [`crate::event::Event`].
    fn on_event(&mut self, ev: &TimedEvent) {
        let _ = ev;
    }

    /// A `cudaMemcpy` with ordering context: the stream it was issued on
    /// and whether the host blocked for its completion. The machine calls
    /// *this* entry point; the default forwards to the plain
    /// [`on_memcpy`](Self::on_memcpy) so existing hooks are unaffected.
    fn on_memcpy_ctx(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
        blocking: bool,
    ) {
        let _ = (stream, blocking);
        self.on_memcpy(dst, src, bytes, kind);
    }

    /// A kernel launch with ordering context: the stream it runs on and
    /// its global launch sequence number. Defaults to the plain
    /// [`on_kernel_launch`](Self::on_kernel_launch).
    fn on_kernel_launch_ctx(&mut self, name: &str, stream: StreamId, seq: u64) {
        let _ = (stream, seq);
        self.on_kernel_launch(name);
    }

    /// A kernel completed; `blocking` says whether the host waited for it
    /// (a synchronous launch) or it retired asynchronously on its stream.
    /// Defaults to the plain [`on_kernel_end`](Self::on_kernel_end).
    fn on_kernel_end_ctx(&mut self, name: &str, stream: StreamId, blocking: bool) {
        let _ = (stream, blocking);
        self.on_kernel_end(name);
    }

    /// `cudaStreamSynchronize(stream)`: the host joined with everything
    /// previously enqueued on `stream`.
    fn on_stream_sync(&mut self, stream: StreamId) {
        let _ = stream;
    }

    /// `cudaDeviceSynchronize()`: the host joined with every stream.
    fn on_device_sync(&mut self) {}

    /// A harness write that bypasses the simulated access path (`poke`) —
    /// input setup, not program behavior. Validity checkers treat it as
    /// initialization; placement tracers ignore it.
    fn on_debug_write(&mut self, addr: Addr, bytes: u64) {
        let _ = (addr, bytes);
    }

    /// The interpreter is about to execute the statement at `line:col`
    /// (1-based MiniCU source position). Lets checkers attribute the next
    /// accesses to a source location.
    fn on_site(&mut self, line: u32, col: u32) {
        let _ = (line, col);
    }

    /// A human-readable name (the declared variable) for the allocation
    /// at `base`, reported right after its [`on_alloc`](Self::on_alloc).
    fn on_alloc_label(&mut self, base: Addr, label: &str) {
        let _ = (base, label);
    }
}

/// Broadcasts every callback to any number of inner hooks, in attachment
/// order — the way to run the XPlacer tracer and an [`EventLog`]
/// (`crate::event::EventLog`) side by side on one machine.
#[derive(Default)]
pub struct FanoutHook {
    hooks: Vec<Rc<RefCell<dyn MemHook>>>,
}

impl FanoutHook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an initial set of hooks.
    pub fn from_hooks(hooks: Vec<Rc<RefCell<dyn MemHook>>>) -> Self {
        FanoutHook { hooks }
    }

    /// Append a hook; it observes after every previously pushed hook.
    pub fn push(&mut self, hook: Rc<RefCell<dyn MemHook>>) {
        self.hooks.push(hook);
    }

    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl MemHook for FanoutHook {
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind) {
        for h in &self.hooks {
            h.borrow_mut().on_alloc(base, size, kind);
        }
    }
    fn on_free(&mut self, base: Addr) {
        for h in &self.hooks {
            h.borrow_mut().on_free(base);
        }
    }
    fn on_read(&mut self, dev: Device, addr: Addr, size: u32) {
        for h in &self.hooks {
            h.borrow_mut().on_read(dev, addr, size);
        }
    }
    fn on_write(&mut self, dev: Device, addr: Addr, size: u32) {
        for h in &self.hooks {
            h.borrow_mut().on_write(dev, addr, size);
        }
    }
    // Forwarded as one call (not the read+write decomposition) so inner
    // hooks with a custom RMW handler still see it.
    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        for h in &self.hooks {
            h.borrow_mut().on_read_write(dev, addr, size);
        }
    }
    // Forwarded as one range call so inner hooks with a vectorized range
    // handler (e.g. the tracer) keep their fast path through a fanout.
    fn on_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        for h in &self.hooks {
            h.borrow_mut()
                .on_access_range(dev, addr, elem_size, count, kind);
        }
    }
    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) {
        for h in &self.hooks {
            h.borrow_mut().on_memcpy(dst, src, bytes, kind);
        }
    }
    fn on_kernel_launch(&mut self, name: &str) {
        for h in &self.hooks {
            h.borrow_mut().on_kernel_launch(name);
        }
    }
    fn on_kernel_end(&mut self, name: &str) {
        for h in &self.hooks {
            h.borrow_mut().on_kernel_end(name);
        }
    }
    fn on_event(&mut self, ev: &TimedEvent) {
        for h in &self.hooks {
            h.borrow_mut().on_event(ev);
        }
    }
    // The ctx variants forward as ctx calls so inner hooks that use the
    // ordering context still receive it through a fanout.
    fn on_memcpy_ctx(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
        blocking: bool,
    ) {
        for h in &self.hooks {
            h.borrow_mut()
                .on_memcpy_ctx(dst, src, bytes, kind, stream, blocking);
        }
    }
    fn on_kernel_launch_ctx(&mut self, name: &str, stream: StreamId, seq: u64) {
        for h in &self.hooks {
            h.borrow_mut().on_kernel_launch_ctx(name, stream, seq);
        }
    }
    fn on_kernel_end_ctx(&mut self, name: &str, stream: StreamId, blocking: bool) {
        for h in &self.hooks {
            h.borrow_mut().on_kernel_end_ctx(name, stream, blocking);
        }
    }
    fn on_stream_sync(&mut self, stream: StreamId) {
        for h in &self.hooks {
            h.borrow_mut().on_stream_sync(stream);
        }
    }
    fn on_device_sync(&mut self) {
        for h in &self.hooks {
            h.borrow_mut().on_device_sync();
        }
    }
    fn on_debug_write(&mut self, addr: Addr, bytes: u64) {
        for h in &self.hooks {
            h.borrow_mut().on_debug_write(addr, bytes);
        }
    }
    fn on_site(&mut self, line: u32, col: u32) {
        for h in &self.hooks {
            h.borrow_mut().on_site(line, col);
        }
    }
    fn on_alloc_label(&mut self, base: Addr, label: &str) {
        for h in &self.hooks {
            h.borrow_mut().on_alloc_label(base, label);
        }
    }
}

/// Self-overhead accounting for one observer: how much *wall-clock* time
/// the simulation spent inside its callbacks, and how often it was called.
/// The simulated clock never sees this time (observers are pure); the
/// meter exists so a run can report what its own instrumentation cost —
/// the Table III question, asked of the observers instead of the tracer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HookMeter {
    /// Callback invocations forwarded to the inner hook.
    pub calls: u64,
    /// Wall-clock nanoseconds spent inside those callbacks.
    pub wall_ns: u64,
}

impl HookMeter {
    /// Mean wall nanoseconds per forwarded callback (0 when never called).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.calls as f64
        }
    }
}

/// Wraps another hook and meters the wall time spent in its callbacks.
/// Forwards range and RMW callbacks as single calls so the inner hook's
/// fast paths survive the wrapping.
pub struct MeteredHook {
    inner: Rc<RefCell<dyn MemHook>>,
    meter: Rc<RefCell<HookMeter>>,
}

impl MeteredHook {
    /// Wrap `inner`; the returned meter handle stays readable after the
    /// hook has been attached to a machine.
    pub fn new(inner: Rc<RefCell<dyn MemHook>>) -> (Self, Rc<RefCell<HookMeter>>) {
        let meter = Rc::new(RefCell::new(HookMeter::default()));
        (
            MeteredHook {
                inner,
                meter: meter.clone(),
            },
            meter,
        )
    }

    fn timed(&self, f: impl FnOnce(&mut dyn MemHook)) {
        let t0 = std::time::Instant::now();
        f(&mut *self.inner.borrow_mut());
        let mut m = self.meter.borrow_mut();
        m.calls += 1;
        m.wall_ns += t0.elapsed().as_nanos() as u64;
    }
}

impl MemHook for MeteredHook {
    fn on_alloc(&mut self, base: Addr, size: u64, kind: AllocKind) {
        self.timed(|h| h.on_alloc(base, size, kind));
    }
    fn on_free(&mut self, base: Addr) {
        self.timed(|h| h.on_free(base));
    }
    fn on_read(&mut self, dev: Device, addr: Addr, size: u32) {
        self.timed(|h| h.on_read(dev, addr, size));
    }
    fn on_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.timed(|h| h.on_write(dev, addr, size));
    }
    fn on_read_write(&mut self, dev: Device, addr: Addr, size: u32) {
        self.timed(|h| h.on_read_write(dev, addr, size));
    }
    fn on_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u32,
        count: u64,
        kind: AccessKind,
    ) {
        self.timed(|h| h.on_access_range(dev, addr, elem_size, count, kind));
    }
    fn on_memcpy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) {
        self.timed(|h| h.on_memcpy(dst, src, bytes, kind));
    }
    fn on_kernel_launch(&mut self, name: &str) {
        self.timed(|h| h.on_kernel_launch(name));
    }
    fn on_kernel_end(&mut self, name: &str) {
        self.timed(|h| h.on_kernel_end(name));
    }
    fn on_event(&mut self, ev: &TimedEvent) {
        self.timed(|h| h.on_event(ev));
    }
    fn on_memcpy_ctx(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
        blocking: bool,
    ) {
        self.timed(|h| h.on_memcpy_ctx(dst, src, bytes, kind, stream, blocking));
    }
    fn on_kernel_launch_ctx(&mut self, name: &str, stream: StreamId, seq: u64) {
        self.timed(|h| h.on_kernel_launch_ctx(name, stream, seq));
    }
    fn on_kernel_end_ctx(&mut self, name: &str, stream: StreamId, blocking: bool) {
        self.timed(|h| h.on_kernel_end_ctx(name, stream, blocking));
    }
    fn on_stream_sync(&mut self, stream: StreamId) {
        self.timed(|h| h.on_stream_sync(stream));
    }
    fn on_device_sync(&mut self) {
        self.timed(|h| h.on_device_sync());
    }
    fn on_debug_write(&mut self, addr: Addr, bytes: u64) {
        self.timed(|h| h.on_debug_write(addr, bytes));
    }
    fn on_site(&mut self, line: u32, col: u32) {
        self.timed(|h| h.on_site(line, col));
    }
    fn on_alloc_label(&mut self, base: Addr, label: &str) {
        self.timed(|h| h.on_alloc_label(base, label));
    }
}

/// A hook that counts events — useful for tests and overhead ablations.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CountingHook {
    pub allocs: u64,
    pub frees: u64,
    pub reads: u64,
    pub writes: u64,
    pub rmws: u64,
    pub memcpys: u64,
    pub launches: u64,
    pub kernel_ends: u64,
}

impl MemHook for CountingHook {
    fn on_alloc(&mut self, _base: Addr, _size: u64, _kind: AllocKind) {
        self.allocs += 1;
    }
    fn on_free(&mut self, _base: Addr) {
        self.frees += 1;
    }
    fn on_read(&mut self, _dev: Device, _addr: Addr, _size: u32) {
        self.reads += 1;
    }
    fn on_write(&mut self, _dev: Device, _addr: Addr, _size: u32) {
        self.writes += 1;
    }
    fn on_read_write(&mut self, _dev: Device, _addr: Addr, _size: u32) {
        self.rmws += 1;
    }
    fn on_memcpy(&mut self, _dst: Addr, _src: Addr, _bytes: u64, _kind: CopyKind) {
        self.memcpys += 1;
    }
    fn on_kernel_launch(&mut self, _name: &str) {
        self.launches += 1;
    }
    fn on_kernel_end(&mut self, _name: &str) {
        self.kernel_ends += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_hook_counts() {
        let mut h = CountingHook::default();
        h.on_alloc(0x1000, 64, AllocKind::Managed);
        h.on_read(Device::Cpu, 0x1000, 4);
        h.on_write(Device::GPU0, 0x1004, 4);
        h.on_read_write(Device::Cpu, 0x1008, 4);
        h.on_memcpy(0x2000, 0x1000, 64, CopyKind::HostToDevice);
        h.on_kernel_launch("k");
        h.on_kernel_end("k");
        h.on_free(0x1000);
        assert_eq!(
            h,
            CountingHook {
                allocs: 1,
                frees: 1,
                reads: 1,
                writes: 1,
                rmws: 1,
                memcpys: 1,
                launches: 1,
                kernel_ends: 1,
            }
        );
    }

    #[test]
    fn kernel_end_is_symmetric_with_launch() {
        let mut h = CountingHook::default();
        for _ in 0..3 {
            h.on_kernel_launch("k");
            h.on_kernel_end("k");
        }
        assert_eq!(h.launches, 3);
        assert_eq!(h.kernel_ends, 3);
    }

    #[test]
    fn fanout_broadcasts_to_all_hooks() {
        let a = Rc::new(RefCell::new(CountingHook::default()));
        let b = Rc::new(RefCell::new(CountingHook::default()));
        let mut f = FanoutHook::new();
        f.push(a.clone());
        f.push(b.clone());
        assert_eq!(f.len(), 2);
        f.on_alloc(0x1000, 64, AllocKind::Managed);
        f.on_read_write(Device::Cpu, 0x1000, 8);
        f.on_kernel_launch("k");
        f.on_kernel_end("k");
        for h in [&a, &b] {
            let c = h.borrow();
            assert_eq!(c.allocs, 1);
            // Forwarded as one RMW, not decomposed into read + write.
            assert_eq!((c.rmws, c.reads, c.writes), (1, 0, 0));
            assert_eq!((c.launches, c.kernel_ends), (1, 1));
        }
    }

    #[test]
    fn fanout_forwards_structured_events() {
        use crate::event::{Event, EventLog};
        let a = Rc::new(RefCell::new(EventLog::new()));
        let b = Rc::new(RefCell::new(EventLog::new()));
        let mut f = FanoutHook::from_hooks(vec![a.clone(), b.clone()]);
        f.on_event(&TimedEvent {
            t_ns: 5.0,
            cost_ns: 0.0,
            ctx: crate::event::AttrCtx::host(),
            event: Event::Free { base: 0x1000 },
        });
        assert_eq!(a.borrow().len(), 1);
        assert_eq!(b.borrow().len(), 1);
    }

    #[test]
    fn default_access_range_decomposes_per_element() {
        let mut h = CountingHook::default();
        h.on_access_range(Device::Cpu, 0x1000, 8, 5, AccessKind::Read);
        h.on_access_range(Device::GPU0, 0x2000, 4, 3, AccessKind::Write);
        h.on_access_range(Device::Cpu, 0x3000, 4, 2, AccessKind::ReadWrite);
        assert_eq!((h.reads, h.writes, h.rmws), (5, 3, 2));
    }

    #[test]
    fn fanout_forwards_access_range_as_one_call() {
        // A hook that overrides on_access_range must see the single range
        // call through a fanout, not the per-word decomposition.
        #[derive(Default)]
        struct RangeSpy {
            ranges: Vec<(Device, Addr, u32, u64, AccessKind)>,
            words: u64,
        }
        impl MemHook for RangeSpy {
            fn on_alloc(&mut self, _: Addr, _: u64, _: AllocKind) {}
            fn on_free(&mut self, _: Addr) {}
            fn on_read(&mut self, _: Device, _: Addr, _: u32) {
                self.words += 1;
            }
            fn on_write(&mut self, _: Device, _: Addr, _: u32) {
                self.words += 1;
            }
            fn on_access_range(&mut self, dev: Device, addr: Addr, es: u32, n: u64, k: AccessKind) {
                self.ranges.push((dev, addr, es, n, k));
            }
            fn on_memcpy(&mut self, _: Addr, _: Addr, _: u64, _: CopyKind) {}
            fn on_kernel_launch(&mut self, _: &str) {}
        }
        let spy = Rc::new(RefCell::new(RangeSpy::default()));
        let count = Rc::new(RefCell::new(CountingHook::default()));
        let mut f = FanoutHook::from_hooks(vec![spy.clone(), count.clone()]);
        f.on_access_range(Device::GPU0, 0x4000, 4, 7, AccessKind::Read);
        let s = spy.borrow();
        assert_eq!(
            s.ranges,
            vec![(Device::GPU0, 0x4000, 4, 7, AccessKind::Read)]
        );
        assert_eq!(s.words, 0);
        // The non-overriding hook still sees the per-word decomposition.
        assert_eq!(count.borrow().reads, 7);
    }

    #[test]
    fn metered_hook_forwards_and_accounts() {
        let inner = Rc::new(RefCell::new(CountingHook::default()));
        let (metered, meter) = MeteredHook::new(inner.clone());
        let mut h = metered;
        h.on_alloc(0x1000, 64, AllocKind::Managed);
        h.on_access_range(Device::Cpu, 0x1000, 8, 4, AccessKind::Read);
        h.on_kernel_launch("k");
        h.on_free(0x1000);
        // The inner hook saw everything (range decomposed by its default).
        let c = inner.borrow();
        assert_eq!((c.allocs, c.reads, c.launches, c.frees), (1, 4, 1, 1));
        // The meter counted one call per *forwarded* callback, not per
        // decomposed word.
        assert_eq!(meter.borrow().calls, 4);
        assert!(meter.borrow().mean_ns() >= 0.0);
    }

    #[test]
    fn default_rmw_decomposes_into_read_and_write() {
        // A hook that doesn't override on_read_write sees a read + a write.
        struct RW(u64, u64);
        impl MemHook for RW {
            fn on_alloc(&mut self, _: Addr, _: u64, _: AllocKind) {}
            fn on_free(&mut self, _: Addr) {}
            fn on_read(&mut self, _: Device, _: Addr, _: u32) {
                self.0 += 1;
            }
            fn on_write(&mut self, _: Device, _: Addr, _: u32) {
                self.1 += 1;
            }
            fn on_memcpy(&mut self, _: Addr, _: Addr, _: u64, _: CopyKind) {}
            fn on_kernel_launch(&mut self, _: &str) {}
        }
        let mut h = RW(0, 0);
        h.on_read_write(Device::Cpu, 0x1000, 8);
        assert_eq!((h.0, h.1), (1, 1));
    }
}
