//! # hetsim — a deterministic heterogeneous CPU/GPU node simulator
//!
//! Substrate for the XPlacer reproduction: a cost-model simulator of a
//! CPU + GPU compute node with CUDA-style unified memory, standing in for
//! the Intel+Pascal, Intel+Volta, and IBM Power9+Volta testbeds of the
//! paper's evaluation (§IV).
//!
//! What it models:
//!
//! * a shared virtual address space with real backing bytes (workloads
//!   compute verifiable results);
//! * `cudaMallocManaged` / `cudaMalloc` / host-heap allocation families;
//! * a page-granular unified-memory driver: on-demand migration,
//!   read-duplication, remote mappings, and all four `cudaMemAdvise`
//!   policies (§II-B);
//! * finite GPU physical memory with eviction (oversubscription);
//! * explicit `cudaMemcpy` (sync and async) and streams whose work
//!   overlaps, plus a kernel-launch cost model;
//! * an instrumentation [`hook`] seam where the XPlacer runtime attaches —
//!   the simulated analogue of the paper's source-instrumented binary.
//!
//! ```
//! use hetsim::{Machine, platform, MemAdvise};
//!
//! let mut m = Machine::new(platform::intel_pascal());
//! let data = m.alloc_managed::<f64>(1024);
//! m.mem_advise(data, MemAdvise::SetReadMostly);
//! for i in 0..1024 {
//!     m.st(data, i, i as f64); // host initializes
//! }
//! m.launch("sum", 1024, |t, m| {
//!     let _ = m.ld(data, t); // GPU reads (duplicates pages, no ping-pong)
//! });
//! println!("simulated time: {} ns, faults: {}", m.elapsed_ns(), m.stats.faults());
//! ```

pub mod alloc;
pub mod clock;
pub mod error;
pub mod event;
pub mod gpumem;
pub mod hook;
pub mod machine;
pub mod platform;
pub mod stats;
pub mod types;
pub mod unified;

pub use clock::{StreamId, DEFAULT_STREAM};
pub use error::{SimError, SimResult};
pub use event::{AttrCtx, Event, EventLog, TimedEvent};
pub use hook::{CountingHook, FanoutHook, HookMeter, MemHook, MeteredHook};
pub use machine::Machine;
pub use platform::{Interconnect, Platform};
pub use stats::Stats;
pub use types::{
    AccessKind, Addr, AllocKind, CopyKind, Device, DeviceSet, MemAdvise, Scalar, SimTime, TPtr,
};
