//! The simulated heterogeneous node: address space + UM driver + GPU
//! memory + clock, behind a CUDA-flavoured API.
//!
//! Workloads and the MiniCU interpreter drive this facade. Every heap
//! access is costed by the platform model and (when a hook is attached)
//! reported to the XPlacer runtime, mirroring what the paper's
//! source-instrumented binaries do on real hardware.

use std::cell::RefCell;
use std::rc::Rc;

use crate::alloc::{AddressSpace, Allocation};
use crate::clock::{Clock, StreamId, DEFAULT_STREAM};
use crate::error::{SimError, SimResult};
use crate::event::{AttrCtx, Event, TimedEvent};
use crate::gpumem::GpuMemory;
use crate::hook::{FanoutHook, MemHook};
use crate::platform::Platform;
use crate::stats::Stats;
use crate::types::{AccessKind, Addr, AllocKind, CopyKind, Device, MemAdvise, Scalar, TPtr};
use crate::unified::UmDriver;

/// Bandwidth of copies that stay on one side (host↔host, device↔device),
/// in bytes per nanosecond.
const LOCAL_COPY_BW: f64 = 50.0;

/// Fixed cost of one allocation call.
const ALLOC_NS: f64 = 1_500.0;

/// What the machine is currently executing.
enum ExecMode {
    /// Host code: accesses come from the CPU and advance the host clock
    /// directly.
    Host,
    /// Inside a kernel on `dev`: word/compute costs accumulate into a
    /// parallelizable bucket, driver costs into a serial bucket; the total
    /// is charged when the kernel ends. `stream` is where the kernel was
    /// launched — recorded so events raised inside the kernel carry it.
    Kernel {
        dev: Device,
        stream: StreamId,
        par_ns: f64,
        serial_ns: f64,
    },
}

/// The simulated node.
pub struct Machine {
    pf: Platform,
    mem: AddressSpace,
    um: UmDriver,
    gpus: Vec<GpuMemory>,
    /// Event counters (public: harnesses read them directly).
    pub stats: Stats,
    clock: Clock,
    hook: Option<Rc<RefCell<dyn MemHook>>>,
    mode: ExecMode,
    /// Name of the kernel between `kernel_begin` and its completion,
    /// shared into every event the kernel raises (`Rc` keeps per-event
    /// attribution allocation-free).
    cur_kernel: Option<Rc<str>>,
    /// Monotonic kernel-launch counter; `cur_seq` is the sequence number
    /// of the kernel currently executing (0 on the host).
    launch_seq: u64,
    cur_seq: u64,
    /// Whether range accesses take the bulk fast path (one driver
    /// resolution per page) or decompose into the per-word protocol.
    bulk: bool,
}

impl Machine {
    /// Build a node with one GPU from a platform preset.
    pub fn new(platform: Platform) -> Self {
        Self::with_gpus(platform, 1)
    }

    /// Build a node with `n_gpus` GPUs.
    pub fn with_gpus(platform: Platform, n_gpus: usize) -> Self {
        assert!(n_gpus >= 1, "at least one GPU");
        let gpus = (0..n_gpus)
            .map(|_| GpuMemory::new(platform.gpu_mem_bytes, platform.page_size))
            .collect();
        Machine {
            mem: AddressSpace::new(platform.page_size),
            um: UmDriver::new(platform.page_size),
            gpus,
            stats: Stats::default(),
            clock: Clock::new(),
            hook: None,
            mode: ExecMode::Host,
            cur_kernel: None,
            launch_seq: 0,
            cur_seq: 0,
            bulk: true,
            pf: platform,
        }
    }

    /// Disable (or re-enable) the bulk fast path: with bulk off, the
    /// range APIs decompose into the exact per-word scalar protocol.
    /// This is the reference mode the conformance suite compares the
    /// fast path against.
    pub fn set_bulk_enabled(&mut self, on: bool) {
        self.bulk = on;
    }

    /// Whether range accesses take the bulk fast path.
    pub fn bulk_enabled(&self) -> bool {
        self.bulk
    }

    /// The platform this node models.
    pub fn platform(&self) -> &Platform {
        &self.pf
    }

    /// Shrink/grow GPU 0's physical memory (used by the oversubscription
    /// experiments). Clears current residency.
    pub fn set_gpu_mem_bytes(&mut self, bytes: u64) {
        self.pf.gpu_mem_bytes = bytes;
        self.gpus[0] = GpuMemory::new(bytes, self.pf.page_size);
    }

    /// Attach an instrumentation hook (the XPlacer tracer). The caller
    /// keeps its own `Rc` to inspect the hook afterwards.
    ///
    /// Returns the previously attached hook, if any — attaching *replaces*
    /// rather than stacks. To observe with several hooks at once use
    /// [`add_hook`](Self::add_hook) (or attach a
    /// [`FanoutHook`](crate::hook::FanoutHook) explicitly).
    pub fn attach_hook(
        &mut self,
        hook: Rc<RefCell<dyn MemHook>>,
    ) -> Option<Rc<RefCell<dyn MemHook>>> {
        self.hook.replace(hook)
    }

    /// Attach `hook` *alongside* any existing hook: if one is already
    /// attached, both are composed behind a
    /// [`FanoutHook`](crate::hook::FanoutHook) and observe every event in
    /// attachment order.
    pub fn add_hook(&mut self, hook: Rc<RefCell<dyn MemHook>>) {
        match self.hook.take() {
            None => self.hook = Some(hook),
            Some(prev) => {
                let fan = FanoutHook::from_hooks(vec![prev, hook]);
                self.hook = Some(Rc::new(RefCell::new(fan)));
            }
        }
    }

    /// Detach the hook; subsequent execution is "uninstrumented".
    pub fn detach_hook(&mut self) {
        self.hook = None;
    }

    /// Whether a hook is attached.
    pub fn is_instrumented(&self) -> bool {
        self.hook.is_some()
    }

    /// Attribution context of the current execution mode, tagged with the
    /// allocation the event concerns (if known).
    fn cur_ctx(&self, alloc: Option<Addr>) -> AttrCtx {
        match &self.mode {
            ExecMode::Host => AttrCtx {
                kernel: None,
                launch_seq: 0,
                stream: DEFAULT_STREAM,
                alloc,
            },
            ExecMode::Kernel { stream, .. } => AttrCtx {
                kernel: self.cur_kernel.clone(),
                launch_seq: self.cur_seq,
                stream: *stream,
                alloc,
            },
        }
    }

    /// Deliver a structured event to the hook, stamped with `t_ns`, its
    /// serial cost, and the current attribution context.
    #[inline]
    fn emit(&self, t_ns: f64, cost_ns: f64, alloc: Option<Addr>, event: Event) {
        if self.hook.is_some() {
            self.emit_with(t_ns, cost_ns, self.cur_ctx(alloc), event);
        }
    }

    /// Deliver an event with an explicitly built context (used where the
    /// causing context is no longer current, e.g. the kernel-end span).
    #[inline]
    fn emit_with(&self, t_ns: f64, cost_ns: f64, ctx: AttrCtx, event: Event) {
        if let Some(h) = &self.hook {
            h.borrow_mut().on_event(&TimedEvent {
                t_ns,
                cost_ns,
                ctx,
                event,
            });
        }
    }

    // ------------------------------------------------------------------
    // Allocation API
    // ------------------------------------------------------------------

    /// `cudaMallocManaged`: unified memory visible to every device.
    pub fn alloc_managed<T: Scalar>(&mut self, len: usize) -> TPtr<T> {
        self.try_malloc((len * T::SIZE) as u64, AllocKind::Managed)
            .map(|a| TPtr::new(a, len))
            .expect("managed allocation failed")
    }

    /// `cudaMalloc` on GPU 0: device memory.
    pub fn alloc_device<T: Scalar>(&mut self, len: usize) -> TPtr<T> {
        self.try_malloc((len * T::SIZE) as u64, AllocKind::Device(0))
            .map(|a| TPtr::new(a, len))
            .expect("device allocation failed")
    }

    /// Host heap allocation (`malloc`/`new`).
    pub fn alloc_host<T: Scalar>(&mut self, len: usize) -> TPtr<T> {
        self.try_malloc((len * T::SIZE) as u64, AllocKind::Host)
            .map(|a| TPtr::new(a, len))
            .expect("host allocation failed")
    }

    /// Raw allocation entry point (the interpreter's `cudaMalloc` et al.).
    pub fn try_malloc(&mut self, bytes: u64, kind: AllocKind) -> SimResult<Addr> {
        let base = self.mem.alloc(bytes, kind)?;
        self.um
            .register_alloc(base, bytes, kind == AllocKind::Managed);
        self.stats.allocs += 1;
        self.clock.advance(ALLOC_NS);
        if let Some(h) = &self.hook {
            h.borrow_mut().on_alloc(base, bytes, kind);
            self.emit(
                self.clock.now(),
                ALLOC_NS,
                Some(base),
                Event::Alloc { base, bytes, kind },
            );
        }
        Ok(base)
    }

    /// Free any allocation by its base address.
    pub fn try_free(&mut self, base: Addr) -> SimResult<()> {
        let size = self.mem.free(base)?;
        self.um.release_range(base, size, &mut self.gpus);
        self.stats.frees += 1;
        self.clock.advance(ALLOC_NS);
        if let Some(h) = &self.hook {
            h.borrow_mut().on_free(base);
            self.emit(self.clock.now(), ALLOC_NS, Some(base), Event::Free { base });
        }
        Ok(())
    }

    /// Free a typed pointer (panics on double free — programmer error in a
    /// workload).
    pub fn free<T: Scalar>(&mut self, p: TPtr<T>) {
        self.try_free(p.addr).expect("free failed");
    }

    // ------------------------------------------------------------------
    // Advice & explicit transfer
    // ------------------------------------------------------------------

    /// `cudaMemAdvise` over a typed range.
    pub fn mem_advise<T: Scalar>(&mut self, p: TPtr<T>, advice: MemAdvise) {
        self.try_mem_advise(p.addr, p.bytes(), advice)
            .expect("mem_advise failed");
    }

    /// `cudaMemAdvise` over a raw byte range.
    pub fn try_mem_advise(&mut self, addr: Addr, bytes: u64, advice: MemAdvise) -> SimResult<()> {
        let a = self.mem.find(addr, bytes.max(1))?;
        if a.kind != AllocKind::Managed {
            return Err(SimError::AdviseOnUnmanaged { addr });
        }
        let alloc_base = a.base;
        self.um.advise(addr, bytes, advice);
        self.emit(
            self.clock.now(),
            0.0,
            Some(alloc_base),
            Event::Advise {
                addr,
                bytes,
                advice,
            },
        );
        Ok(())
    }

    /// `cudaMemPrefetchAsync`: proactively migrate a managed range to
    /// `dst` on `stream`, avoiding later on-demand faults.
    pub fn try_mem_prefetch(
        &mut self,
        addr: Addr,
        bytes: u64,
        dst: Device,
        stream: StreamId,
    ) -> SimResult<()> {
        let a = self.mem.find(addr, bytes.max(1))?;
        if a.kind != AllocKind::Managed {
            return Err(SimError::AdviseOnUnmanaged { addr });
        }
        let alloc_base = a.base;
        let po = self
            .um
            .prefetch(&self.pf, &mut self.gpus, &mut self.stats, addr, bytes, dst);
        let cost = po.cost_ns();
        let end = self.clock.enqueue(stream, cost);
        self.emit(
            end,
            po.transfer_ns,
            Some(alloc_base),
            Event::Prefetch {
                addr,
                bytes,
                pages: po.pages,
                bytes_moved: po.bytes_moved,
                to: dst,
                stream,
                start_ns: end - cost,
                end_ns: end,
            },
        );
        if po.evictions > 0 {
            // Room had to be made at the destination; report it the same
            // way fault-path evictions are, so stream consumers see all
            // eviction traffic as `Evict` events.
            self.emit(
                end,
                po.evict_writeback_ns,
                Some(alloc_base),
                Event::Evict {
                    pages: po.evictions,
                    bytes: po.evictions as u64 * self.pf.page_size,
                    writeback_pages: po.writeback_pages,
                    writeback_bytes: po.writeback_bytes,
                },
            );
        }
        Ok(())
    }

    /// Typed wrapper over [`try_mem_prefetch`](Self::try_mem_prefetch) on
    /// the default stream.
    pub fn mem_prefetch<T: Scalar>(&mut self, p: TPtr<T>, dst: Device) {
        self.try_mem_prefetch(p.addr, p.bytes(), dst, crate::clock::DEFAULT_STREAM)
            .expect("mem_prefetch failed");
        self.clock.sync_stream(crate::clock::DEFAULT_STREAM);
    }

    /// Synchronous `cudaMemcpy` of `bytes`.
    pub fn try_memcpy(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
    ) -> SimResult<()> {
        self.validate_copy(dst, src, bytes, kind)?;
        self.mem.copy_bytes(dst, src, bytes)?;
        let dur = self.copy_cost(bytes, kind);
        let start = self.clock.now();
        self.clock.advance(dur);
        self.record_copy(
            dst,
            src,
            bytes,
            kind,
            DEFAULT_STREAM,
            start,
            start + dur,
            true,
        );
        Ok(())
    }

    /// `cudaMemcpyAsync` on a stream; the host continues immediately.
    pub fn try_memcpy_async(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
    ) -> SimResult<()> {
        self.validate_copy(dst, src, bytes, kind)?;
        // Data effects are applied eagerly; only the time is deferred.
        self.mem.copy_bytes(dst, src, bytes)?;
        let dur = self.copy_cost(bytes, kind);
        let staged = self.pf.async_pageable_copy_serializes && kind.crosses_interconnect();
        let end = if staged {
            // Pageable-memory staging: the "async" copy blocks the host.
            self.clock.advance(dur);
            self.clock.now()
        } else {
            self.clock.enqueue(stream, dur)
        };
        self.record_copy(dst, src, bytes, kind, stream, end - dur, end, staged);
        Ok(())
    }

    /// Typed convenience wrapper over [`try_memcpy`](Self::try_memcpy).
    pub fn memcpy<T: Scalar>(&mut self, dst: TPtr<T>, src: TPtr<T>, elems: usize, kind: CopyKind) {
        self.try_memcpy(dst.addr, src.addr, (elems * T::SIZE) as u64, kind)
            .expect("memcpy failed");
    }

    /// Typed convenience wrapper over
    /// [`try_memcpy_async`](Self::try_memcpy_async).
    pub fn memcpy_async<T: Scalar>(
        &mut self,
        dst: TPtr<T>,
        src: TPtr<T>,
        elems: usize,
        kind: CopyKind,
        stream: StreamId,
    ) {
        self.try_memcpy_async(dst.addr, src.addr, (elems * T::SIZE) as u64, kind, stream)
            .expect("memcpy_async failed");
    }

    fn copy_cost(&self, bytes: u64, kind: CopyKind) -> f64 {
        if kind.crosses_interconnect() {
            self.pf.memcpy_latency_ns + self.pf.xfer_ns(bytes)
        } else {
            self.pf.memcpy_latency_ns * 0.1 + bytes as f64 / LOCAL_COPY_BW
        }
    }

    fn validate_copy(&mut self, dst: Addr, src: Addr, bytes: u64, kind: CopyKind) -> SimResult<()> {
        if bytes == 0 {
            return Ok(());
        }
        let dk = self.mem.find(dst, bytes)?.kind;
        let sk = self.mem.find(src, bytes)?.kind;
        let dev_side = |k: AllocKind| matches!(k, AllocKind::Device(_));
        let host_side = |k: AllocKind| k == AllocKind::Host;
        let ok = match kind {
            // Managed memory is reachable from either side, so it only
            // conflicts with the *opposite* explicit kind.
            CopyKind::HostToDevice => !dev_side(sk) && !host_side(dk),
            CopyKind::DeviceToHost => !host_side(sk) && !dev_side(dk),
            CopyKind::DeviceToDevice => !host_side(sk) && !host_side(dk),
            CopyKind::HostToHost => !dev_side(sk) && !dev_side(dk),
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::BadCopyDirection { dst, src })
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_copy(
        &mut self,
        dst: Addr,
        src: Addr,
        bytes: u64,
        kind: CopyKind,
        stream: StreamId,
        start_ns: f64,
        end_ns: f64,
        blocking: bool,
    ) {
        match kind {
            CopyKind::HostToDevice => self.stats.memcpy_h2d += 1,
            CopyKind::DeviceToHost => self.stats.memcpy_d2h += 1,
            _ => {}
        }
        self.stats.memcpy_bytes += bytes;
        if let Some(h) = &self.hook {
            h.borrow_mut()
                .on_memcpy_ctx(dst, src, bytes, kind, stream, blocking);
            // Charge the copy to the destination allocation (zero-byte
            // copies may not resolve to one).
            let alloc = self.mem.find(dst, 1).ok().map(|a| a.base);
            self.emit(
                end_ns,
                end_ns - start_ns,
                alloc,
                Event::Memcpy {
                    dst,
                    src,
                    bytes,
                    kind,
                    stream,
                    start_ns,
                    end_ns,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Word accesses
    // ------------------------------------------------------------------

    #[inline]
    fn cur_dev(&self) -> Device {
        match self.mode {
            ExecMode::Host => Device::Cpu,
            ExecMode::Kernel { dev, .. } => dev,
        }
    }

    /// Validate the access path and charge its cost.
    #[inline]
    fn pre_access(&mut self, dev: Device, addr: Addr, size: u64, write: bool) -> SimResult<()> {
        let a = self.mem.find_mut(addr, size)?;
        let (kind, alloc_base) = (a.kind, a.base);
        let mut serial = 0.0;
        match kind {
            AllocKind::Managed => {
                let page = self.pf.page_of(addr);
                let out =
                    self.um
                        .access(&self.pf, &mut self.gpus, &mut self.stats, dev, page, write);
                serial = out.serial_ns();
                if self.hook.is_some() {
                    self.emit_access_events(dev, page, write, alloc_base, &out);
                }
            }
            AllocKind::Device(g) => {
                if dev != Device::Gpu(g) {
                    return Err(SimError::IllegalAccess { device: dev, addr });
                }
            }
            AllocKind::Host => {
                if dev != Device::Cpu {
                    return Err(SimError::IllegalAccess { device: dev, addr });
                }
            }
        }
        self.charge(self.word_ns(dev), serial);
        match (dev, write) {
            (Device::Cpu, false) => self.stats.cpu_reads += 1,
            (Device::Cpu, true) => self.stats.cpu_writes += 1,
            (Device::Gpu(_), false) => self.stats.gpu_reads += 1,
            (Device::Gpu(_), true) => self.stats.gpu_writes += 1,
        }
        Ok(())
    }

    /// Local word cost of one access by `dev`.
    #[inline]
    fn word_ns(&self, dev: Device) -> f64 {
        match dev {
            Device::Cpu => self.pf.cpu_word_ns,
            Device::Gpu(_) => self.pf.gpu_word_ns,
        }
    }

    /// Charge one word access: host mode advances the clock, kernel mode
    /// accumulates into the parallel/serial buckets.
    #[inline]
    fn charge(&mut self, word_ns: f64, serial: f64) {
        match &mut self.mode {
            ExecMode::Host => self.clock.advance(word_ns + serial),
            ExecMode::Kernel {
                par_ns, serial_ns, ..
            } => {
                *par_ns += word_ns;
                *serial_ns += serial;
            }
        }
    }

    /// Validate and account a contiguous range access of `count` elements
    /// of `elem_size` bytes starting at `addr`, all by `dev` — the bulk
    /// fast path. The UM driver is resolved once per page group instead
    /// of once per word; per-word cost and stat accounting is replicated
    /// exactly, so the range is indistinguishable from the per-word loop
    /// in stats, simulated time, and emitted events.
    fn pre_access_range(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u64,
        count: u64,
        write: bool,
    ) -> SimResult<()> {
        debug_assert!(count > 0 && elem_size > 0);
        let a = self.mem.find_mut(addr, elem_size.saturating_mul(count))?;
        let (kind, alloc_base) = (a.kind, a.base);
        let word = self.word_ns(dev);
        match kind {
            AllocKind::Managed => {
                let page_size = self.pf.page_size;
                let mut i = 0u64;
                while i < count {
                    let a_i = addr + i * elem_size;
                    let page = self.pf.page_of(a_i);
                    // Elements whose *start* lands on this page form one
                    // group: an element straddling the boundary is driven
                    // by its first page, exactly as the per-word path.
                    let last_in_page = (page + 1) * page_size - 1;
                    let k = ((last_in_page - a_i) / elem_size + 1).min(count - i);
                    let (out, tail_ns) = self.um.access_range(
                        &self.pf,
                        &mut self.gpus,
                        &mut self.stats,
                        dev,
                        page,
                        write,
                        k,
                    );
                    if self.hook.is_some() {
                        self.emit_access_events(dev, page, write, alloc_base, &out);
                    }
                    // Replicate the per-word charge sequence so simulated
                    // time stays bit-identical to the scalar path.
                    self.charge(word, out.serial_ns());
                    for _ in 1..k {
                        self.charge(word, tail_ns);
                    }
                    i += k;
                }
            }
            AllocKind::Device(g) => {
                if dev != Device::Gpu(g) {
                    return Err(SimError::IllegalAccess { device: dev, addr });
                }
                for _ in 0..count {
                    self.charge(word, 0.0);
                }
            }
            AllocKind::Host => {
                if dev != Device::Cpu {
                    return Err(SimError::IllegalAccess { device: dev, addr });
                }
                for _ in 0..count {
                    self.charge(word, 0.0);
                }
            }
        }
        match (dev, write) {
            (Device::Cpu, false) => self.stats.cpu_reads += count,
            (Device::Cpu, true) => self.stats.cpu_writes += count,
            (Device::Gpu(_), false) => self.stats.gpu_reads += count,
            (Device::Gpu(_), true) => self.stats.gpu_writes += count,
        }
        Ok(())
    }

    /// Report the driver actions of one managed access as structured
    /// events. Inside a kernel the stamp is the launch-time clock plus the
    /// serial driver cost accumulated so far — the clock itself only
    /// advances when the kernel's total duration settles at its end.
    fn emit_access_events(
        &self,
        dev: Device,
        page: u64,
        write: bool,
        alloc_base: Addr,
        out: &crate::unified::AccessOutcome,
    ) {
        let t = match &self.mode {
            ExecMode::Host => self.clock.now(),
            ExecMode::Kernel { serial_ns, .. } => self.clock.now() + serial_ns,
        };
        let alloc = Some(alloc_base);
        if out.fault {
            self.emit(
                t,
                out.fault_service_ns,
                alloc,
                Event::PageFault { dev, page, write },
            );
        }
        if out.duplicated {
            self.emit(
                t,
                out.transfer_ns,
                alloc,
                Event::ReadDup {
                    page,
                    to: dev,
                    bytes: self.pf.page_size,
                },
            );
        }
        if out.migrated {
            self.emit(
                t,
                out.transfer_ns,
                alloc,
                Event::Migration {
                    page,
                    to: dev,
                    bytes: self.pf.page_size,
                },
            );
        }
        if out.invalidations > 0 {
            self.emit(
                t,
                out.invalidate_ns,
                alloc,
                Event::Invalidate {
                    page,
                    copies: out.invalidations,
                },
            );
        }
        if out.evictions > 0 {
            self.emit(
                t,
                out.evict_writeback_ns,
                alloc,
                Event::Evict {
                    pages: out.evictions,
                    bytes: out.evictions as u64 * self.pf.page_size,
                    writeback_pages: out.writeback_pages,
                    writeback_bytes: out.evicted_bytes,
                },
            );
        }
    }

    /// Read a scalar at a raw address on the current device.
    pub fn try_read_scalar<T: Scalar>(&mut self, addr: Addr) -> SimResult<T> {
        let dev = self.cur_dev();
        self.pre_access(dev, addr, T::SIZE as u64, false)?;
        let mut buf = [0u8; 16];
        self.mem.read_bytes(addr, &mut buf[..T::SIZE])?;
        if let Some(h) = &self.hook {
            h.borrow_mut().on_read(dev, addr, T::SIZE as u32);
        }
        Ok(T::load_le(&buf[..T::SIZE]))
    }

    /// Write a scalar at a raw address on the current device.
    pub fn try_write_scalar<T: Scalar>(&mut self, addr: Addr, v: T) -> SimResult<()> {
        let dev = self.cur_dev();
        self.pre_access(dev, addr, T::SIZE as u64, true)?;
        let mut buf = [0u8; 16];
        v.store_le(&mut buf[..T::SIZE]);
        self.mem.write_bytes(addr, &buf[..T::SIZE])?;
        if let Some(h) = &self.hook {
            h.borrow_mut().on_write(dev, addr, T::SIZE as u32);
        }
        Ok(())
    }

    /// Read-modify-write a scalar at a raw address (one `traceRW` event).
    pub fn try_rmw_scalar<T: Scalar>(
        &mut self,
        addr: Addr,
        f: impl FnOnce(T) -> T,
    ) -> SimResult<T> {
        let dev = self.cur_dev();
        // A RMW is one round trip plus a write: charge both directions.
        self.pre_access(dev, addr, T::SIZE as u64, true)?;
        let mut buf = [0u8; 16];
        self.mem.read_bytes(addr, &mut buf[..T::SIZE])?;
        let old = T::load_le(&buf[..T::SIZE]);
        let new = f(old);
        new.store_le(&mut buf[..T::SIZE]);
        self.mem.write_bytes(addr, &buf[..T::SIZE])?;
        match dev {
            Device::Cpu => self.stats.cpu_reads += 1,
            Device::Gpu(_) => self.stats.gpu_reads += 1,
        }
        if let Some(h) = &self.hook {
            h.borrow_mut().on_read_write(dev, addr, T::SIZE as u32);
        }
        Ok(new)
    }

    /// Load element `i` of `p` (panics on access errors — these are bugs
    /// in the simulated program, surfaced loudly in workloads).
    #[inline]
    pub fn ld<T: Scalar>(&mut self, p: TPtr<T>, i: usize) -> T {
        match self.try_read_scalar(p.at(i)) {
            Ok(v) => v,
            Err(e) => panic!("load {p:?}[{i}]: {e}"),
        }
    }

    /// Store `v` into element `i` of `p`.
    #[inline]
    pub fn st<T: Scalar>(&mut self, p: TPtr<T>, i: usize, v: T) {
        if let Err(e) = self.try_write_scalar(p.at(i), v) {
            panic!("store {p:?}[{i}]: {e}");
        }
    }

    /// Read-modify-write element `i` of `p`, returning the new value.
    #[inline]
    pub fn rmw<T: Scalar>(&mut self, p: TPtr<T>, i: usize, f: impl FnOnce(T) -> T) -> T {
        match self.try_rmw_scalar(p.at(i), f) {
            Ok(v) => v,
            Err(e) => panic!("rmw {p:?}[{i}]: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Bulk range accesses (the fast path)
    // ------------------------------------------------------------------

    /// Bulk read: `count` elements of `elem_size` bytes starting at
    /// `addr`, on the current device. Accounting and hook notification
    /// only — pair with the typed wrappers ([`ld_range`](Self::ld_range)
    /// et al.) to also move data.
    pub fn read_range(&mut self, addr: Addr, elem_size: u64, count: u64) -> SimResult<()> {
        self.access_range(addr, elem_size, count, AccessKind::Read)
    }

    /// Bulk write counterpart of [`read_range`](Self::read_range).
    pub fn write_range(&mut self, addr: Addr, elem_size: u64, count: u64) -> SimResult<()> {
        self.access_range(addr, elem_size, count, AccessKind::Write)
    }

    /// Bulk read-modify-write counterpart of
    /// [`read_range`](Self::read_range): each element is charged like one
    /// [`try_rmw_scalar`](Self::try_rmw_scalar).
    pub fn rw_range(&mut self, addr: Addr, elem_size: u64, count: u64) -> SimResult<()> {
        self.access_range(addr, elem_size, count, AccessKind::ReadWrite)
    }

    /// Shared entry point of the range APIs. With bulk enabled (the
    /// default) the UM driver is resolved once per page and the hook
    /// sees one `on_access_range`; with bulk disabled the range
    /// decomposes into the exact per-word scalar protocol.
    pub fn access_range(
        &mut self,
        addr: Addr,
        elem_size: u64,
        count: u64,
        kind: AccessKind,
    ) -> SimResult<()> {
        if count == 0 || elem_size == 0 {
            return Ok(());
        }
        let dev = self.cur_dev();
        if !self.bulk {
            return self.access_range_per_word(dev, addr, elem_size, count, kind);
        }
        self.pre_access_range(dev, addr, elem_size, count, kind.writes())?;
        if kind == AccessKind::ReadWrite {
            // The read half of a RMW is a stat, not an extra word charge
            // (matching try_rmw_scalar).
            match dev {
                Device::Cpu => self.stats.cpu_reads += count,
                Device::Gpu(_) => self.stats.gpu_reads += count,
            }
        }
        if let Some(h) = &self.hook {
            h.borrow_mut()
                .on_access_range(dev, addr, elem_size as u32, count, kind);
        }
        Ok(())
    }

    /// Reference decomposition of a range access into the per-word
    /// scalar protocol, byte-for-byte identical to an element-by-element
    /// `ld`/`st`/`rmw` loop. The conformance suite runs workloads both
    /// ways and asserts equality.
    fn access_range_per_word(
        &mut self,
        dev: Device,
        addr: Addr,
        elem_size: u64,
        count: u64,
        kind: AccessKind,
    ) -> SimResult<()> {
        for i in 0..count {
            let a = addr + i * elem_size;
            self.pre_access(dev, a, elem_size, kind.writes())?;
            if kind == AccessKind::ReadWrite {
                match dev {
                    Device::Cpu => self.stats.cpu_reads += 1,
                    Device::Gpu(_) => self.stats.gpu_reads += 1,
                }
            }
            if let Some(h) = &self.hook {
                let mut h = h.borrow_mut();
                match kind {
                    AccessKind::Read => h.on_read(dev, a, elem_size as u32),
                    AccessKind::Write => h.on_write(dev, a, elem_size as u32),
                    AccessKind::ReadWrite => h.on_read_write(dev, a, elem_size as u32),
                }
            }
        }
        Ok(())
    }

    /// Load `count` consecutive elements of `p` starting at index
    /// `start` — the bulk counterpart of [`ld`](Self::ld).
    pub fn ld_range<T: Scalar>(&mut self, p: TPtr<T>, start: usize, count: usize) -> Vec<T> {
        if count == 0 {
            return Vec::new();
        }
        if let Err(e) = self.read_range(p.at(start), T::SIZE as u64, count as u64) {
            panic!("ld_range {p:?}[{start}..{}]: {e}", start + count);
        }
        let mut buf = vec![0u8; count * T::SIZE];
        self.mem
            .read_bytes(p.at(start), &mut buf)
            .expect("ld_range read");
        buf.chunks_exact(T::SIZE).map(T::load_le).collect()
    }

    /// Store `vals` into consecutive elements of `p` starting at index
    /// `start` — the bulk counterpart of [`st`](Self::st).
    pub fn st_range<T: Scalar>(&mut self, p: TPtr<T>, start: usize, vals: &[T]) {
        if vals.is_empty() {
            return;
        }
        if let Err(e) = self.write_range(p.at(start), T::SIZE as u64, vals.len() as u64) {
            panic!("st_range {p:?}[{start}..{}]: {e}", start + vals.len());
        }
        let mut buf = vec![0u8; vals.len() * T::SIZE];
        for (chunk, v) in buf.chunks_exact_mut(T::SIZE).zip(vals) {
            v.store_le(chunk);
        }
        self.mem
            .write_bytes(p.at(start), &buf)
            .expect("st_range write");
    }

    /// Store `v` into `count` consecutive elements of `p` starting at
    /// index `start` (a bulk memset-style sweep).
    pub fn fill<T: Scalar>(&mut self, p: TPtr<T>, start: usize, count: usize, v: T) {
        if count == 0 {
            return;
        }
        if let Err(e) = self.write_range(p.at(start), T::SIZE as u64, count as u64) {
            panic!("fill {p:?}[{start}..{}]: {e}", start + count);
        }
        let mut buf = vec![0u8; count * T::SIZE];
        for chunk in buf.chunks_exact_mut(T::SIZE) {
            v.store_le(chunk);
        }
        self.mem.write_bytes(p.at(start), &buf).expect("fill write");
    }

    /// Read-modify-write `count` consecutive elements of `p` starting at
    /// index `start`; `f` maps (element index, old value) to the new
    /// value — the bulk counterpart of [`rmw`](Self::rmw).
    pub fn rmw_range<T: Scalar>(
        &mut self,
        p: TPtr<T>,
        start: usize,
        count: usize,
        mut f: impl FnMut(usize, T) -> T,
    ) {
        if count == 0 {
            return;
        }
        if let Err(e) = self.rw_range(p.at(start), T::SIZE as u64, count as u64) {
            panic!("rmw_range {p:?}[{start}..{}]: {e}", start + count);
        }
        let mut buf = vec![0u8; count * T::SIZE];
        self.mem
            .read_bytes(p.at(start), &mut buf)
            .expect("rmw_range read");
        for (i, chunk) in buf.chunks_exact_mut(T::SIZE).enumerate() {
            f(start + i, T::load_le(chunk)).store_le(chunk);
        }
        self.mem
            .write_bytes(p.at(start), &buf)
            .expect("rmw_range write");
    }

    /// Account `ops` arithmetic operations on the current device.
    #[inline]
    pub fn compute(&mut self, ops: u64) {
        match &mut self.mode {
            ExecMode::Host => self.clock.advance(ops as f64 * self.pf.cpu_flop_ns),
            ExecMode::Kernel { par_ns, dev, .. } => {
                debug_assert!(dev.is_gpu());
                *par_ns += ops as f64 * self.pf.gpu_flop_ns;
            }
        }
    }

    // ------------------------------------------------------------------
    // Un-costed debug access (peek/poke)
    // ------------------------------------------------------------------

    /// Read backing bytes without costing, tracing, or paging — for test
    /// assertions and building inputs.
    pub fn peek<T: Scalar>(&mut self, p: TPtr<T>, i: usize) -> T {
        let mut buf = [0u8; 16];
        self.mem
            .read_bytes(p.at(i), &mut buf[..T::SIZE])
            .expect("peek failed");
        T::load_le(&buf[..T::SIZE])
    }

    /// Byte-level [`peek`](Self::peek): fill `out` from backing memory
    /// without costing, tracing, or paging. Pair with the `*_range`
    /// accounting APIs when moving data for an already-charged range.
    pub fn peek_bytes(&mut self, addr: Addr, out: &mut [u8]) -> SimResult<()> {
        self.mem.read_bytes(addr, out)
    }

    /// Byte-level [`poke`](Self::poke): write `src` to backing memory
    /// without costing, tracing, or paging.
    pub fn poke_bytes(&mut self, addr: Addr, src: &[u8]) -> SimResult<()> {
        self.mem.write_bytes(addr, src)?;
        if let Some(h) = &self.hook {
            h.borrow_mut().on_debug_write(addr, src.len() as u64);
        }
        Ok(())
    }

    /// Write backing bytes without costing, tracing, or paging.
    pub fn poke<T: Scalar>(&mut self, p: TPtr<T>, i: usize, v: T) {
        let mut buf = [0u8; 16];
        v.store_le(&mut buf[..T::SIZE]);
        self.mem
            .write_bytes(p.at(i), &buf[..T::SIZE])
            .expect("poke failed");
        if let Some(h) = &self.hook {
            h.borrow_mut().on_debug_write(p.at(i), T::SIZE as u64);
        }
    }

    /// Tell the attached hook which source statement (1-based `line:col`)
    /// the upcoming accesses belong to. Free when no hook is attached.
    pub fn note_site(&mut self, line: u32, col: u32) {
        if let Some(h) = &self.hook {
            h.borrow_mut().on_site(line, col);
        }
    }

    /// Tell the attached hook the variable name behind the allocation at
    /// `base` (for human-readable diagnostics).
    pub fn note_alloc_label(&mut self, base: Addr, label: &str) {
        if let Some(h) = &self.hook {
            h.borrow_mut().on_alloc_label(base, label);
        }
    }

    // ------------------------------------------------------------------
    // Kernels
    // ------------------------------------------------------------------

    /// Launch a kernel of `threads` threads synchronously on GPU 0. The
    /// body runs once per thread with the machine in GPU execution mode.
    pub fn launch(
        &mut self,
        name: &str,
        threads: usize,
        mut body: impl FnMut(usize, &mut Machine),
    ) {
        self.run_kernel(name, DEFAULT_STREAM, threads, &mut body);
        self.kernel_finish_sync();
    }

    /// Launch a kernel asynchronously on `stream`; the host continues.
    pub fn launch_async(
        &mut self,
        stream: StreamId,
        name: &str,
        threads: usize,
        mut body: impl FnMut(usize, &mut Machine),
    ) {
        self.run_kernel(name, stream, threads, &mut body);
        self.kernel_finish_async(stream);
    }

    fn run_kernel(
        &mut self,
        name: &str,
        stream: StreamId,
        threads: usize,
        body: &mut dyn FnMut(usize, &mut Machine),
    ) {
        self.kernel_begin_on(name, stream);
        for t in 0..threads {
            body(t, self);
        }
    }

    /// Enter GPU execution mode explicitly (used by drivers that cannot
    /// express the kernel as one closure, like the MiniCU interpreter).
    /// Pair with [`kernel_finish`](Self::kernel_finish).
    pub fn kernel_begin(&mut self, name: &str) {
        self.kernel_begin_on(name, DEFAULT_STREAM);
    }

    /// [`kernel_begin`](Self::kernel_begin) with an explicit stream, so
    /// events raised inside the kernel are attributed to it.
    pub fn kernel_begin_on(&mut self, name: &str, stream: StreamId) {
        assert!(
            matches!(self.mode, ExecMode::Host),
            "kernel launched from inside a kernel"
        );
        self.stats.kernel_launches += 1;
        self.launch_seq += 1;
        self.cur_seq = self.launch_seq;
        self.cur_kernel = Some(Rc::from(name));
        let t = self.clock.now();
        self.mode = ExecMode::Kernel {
            dev: Device::GPU0,
            stream,
            par_ns: 0.0,
            serial_ns: 0.0,
        };
        if let Some(h) = &self.hook {
            h.borrow_mut()
                .on_kernel_launch_ctx(name, stream, self.cur_seq);
            // Mode is already Kernel, so the begin marker carries the
            // kernel's own attribution context.
            self.emit(
                t,
                0.0,
                None,
                Event::KernelBegin {
                    name: name.to_string(),
                },
            );
        }
    }

    /// Leave GPU execution mode, returning the kernel's duration (without
    /// advancing the clock — callers decide sync vs async). No completion
    /// hook or span event fires; use
    /// [`kernel_finish_sync`](Self::kernel_finish_sync) /
    /// [`kernel_finish_async`](Self::kernel_finish_async) for the normal
    /// paths, or this directly to abandon a kernel (e.g. on a trap).
    pub fn kernel_finish(&mut self) -> f64 {
        let (par, serial) = match self.mode {
            ExecMode::Kernel {
                par_ns, serial_ns, ..
            } => (par_ns, serial_ns),
            ExecMode::Host => panic!("kernel_finish outside a kernel"),
        };
        self.mode = ExecMode::Host;
        self.cur_kernel = None;
        self.cur_seq = 0;
        self.pf.kernel_launch_ns + par / self.pf.gpu_parallelism + serial
    }

    /// Complete the current kernel synchronously: the host blocks for its
    /// duration, then the completion hook and span event fire. Returns the
    /// kernel's duration.
    pub fn kernel_finish_sync(&mut self) -> f64 {
        let ctx = self.cur_ctx(None);
        let dur = self.kernel_finish();
        let start = self.clock.now();
        self.clock.advance(dur);
        self.finish_hooks(ctx, start, start + dur, true);
        dur
    }

    /// Complete the current kernel asynchronously on `stream`: its
    /// duration is enqueued there and the host continues. Returns the
    /// kernel's duration.
    pub fn kernel_finish_async(&mut self, stream: StreamId) -> f64 {
        let mut ctx = self.cur_ctx(None);
        ctx.stream = stream;
        let dur = self.kernel_finish();
        let end = self.clock.enqueue(stream, dur);
        self.finish_hooks(ctx, end - dur, end, false);
        dur
    }

    fn finish_hooks(&mut self, ctx: AttrCtx, start_ns: f64, end_ns: f64, blocking: bool) {
        if let Some(h) = &self.hook {
            let name = ctx.kernel_name().unwrap_or_default().to_string();
            let stream = ctx.stream;
            h.borrow_mut().on_kernel_end_ctx(&name, stream, blocking);
            // The span carries the kernel's own context so its total cost
            // folds under the kernel even though the machine is back in
            // host mode by now.
            self.emit_with(
                end_ns,
                end_ns - start_ns,
                ctx,
                Event::KernelEnd {
                    name,
                    stream,
                    start_ns,
                    end_ns,
                },
            );
        }
    }

    /// Advance the host clock by an externally computed duration (e.g. a
    /// kernel finished via [`kernel_finish`](Self::kernel_finish)).
    pub fn advance_ns(&mut self, dt: f64) {
        self.clock.advance(dt);
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Current host time in nanoseconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Create a new stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.clock.create_stream()
    }

    /// Number of streams (including the default stream).
    pub fn stream_count(&self) -> usize {
        self.clock.stream_count()
    }

    /// Per-stream timeline state: entry `i` is the completion time of the
    /// last op enqueued on stream `i` (see [`Clock::stream_tails`]).
    pub fn stream_tails(&self) -> &[f64] {
        self.clock.stream_tails()
    }

    /// Block the host on one stream (`cudaStreamSynchronize`). Charges the
    /// host-side driver cost of the call on top of the waiting itself.
    pub fn sync_stream(&mut self, s: StreamId) {
        self.clock.sync_stream(s);
        self.clock.advance(self.pf.stream_sync_ns);
        if let Some(h) = &self.hook {
            h.borrow_mut().on_stream_sync(s);
        }
    }

    /// `cudaDeviceSynchronize`: drain all streams, then report total time.
    pub fn elapsed_ns(&mut self) -> f64 {
        self.clock.sync_all();
        if let Some(h) = &self.hook {
            h.borrow_mut().on_device_sync();
        }
        self.clock.now()
    }

    /// Reset clock and counters (allocations survive).
    pub fn reset_metrics(&mut self) {
        self.clock.reset();
        self.stats.reset();
    }

    /// Access the address space (diagnostics / interpreter).
    pub fn address_space(&self) -> &AddressSpace {
        &self.mem
    }

    /// Find the allocation containing `addr` (for the interpreter's
    /// pointer arithmetic checks).
    pub fn find_alloc(&self, addr: Addr) -> SimResult<&Allocation> {
        self.mem.find(addr, 1)
    }

    /// Inspect the UM page state of the page containing `addr`.
    pub fn page_state(&self, addr: Addr) -> &crate::unified::PageState {
        self.um.state(self.pf.page_of(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::CountingHook;
    use crate::platform::{intel_pascal, power9_volta};

    fn m() -> Machine {
        Machine::new(intel_pascal())
    }

    #[test]
    fn host_roundtrip_managed() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(8);
        m.st(p, 3, 2.5);
        assert_eq!(m.ld(p, 3), 2.5);
        assert_eq!(m.stats.cpu_writes, 1);
        assert_eq!(m.stats.cpu_reads, 1);
    }

    #[test]
    fn kernel_accesses_count_as_gpu() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(16);
        m.launch("init", 16, |t, m| {
            m.st(p, t, t as f64);
        });
        assert_eq!(m.stats.gpu_writes, 16);
        assert_eq!(m.stats.kernel_launches, 1);
        assert_eq!(m.peek(p, 7), 7.0);
    }

    #[test]
    fn cpu_cannot_touch_device_memory() {
        let mut m = m();
        let p = m.alloc_device::<f64>(4);
        assert!(matches!(
            m.try_read_scalar::<f64>(p.addr),
            Err(SimError::IllegalAccess { .. })
        ));
    }

    #[test]
    fn gpu_cannot_touch_host_memory() {
        let mut m = m();
        let p = m.alloc_host::<f64>(4);
        let mut err = None;
        m.launch("k", 1, |_, m| {
            err = Some(m.try_read_scalar::<f64>(p.addr));
        });
        assert!(matches!(err, Some(Err(SimError::IllegalAccess { .. }))));
    }

    #[test]
    fn memcpy_h2d_moves_data_and_costs_time() {
        let mut m = m();
        let h = m.alloc_host::<f64>(128);
        let d = m.alloc_device::<f64>(128);
        for i in 0..128 {
            m.poke(h, i, i as f64);
        }
        let t0 = m.now();
        m.memcpy(d, h, 128, CopyKind::HostToDevice);
        assert!(m.now() > t0);
        assert_eq!(m.stats.memcpy_h2d, 1);
        assert_eq!(m.peek(d, 100), 100.0);
    }

    #[test]
    fn memcpy_direction_validated() {
        let mut m = m();
        let h = m.alloc_host::<f64>(4);
        let d = m.alloc_device::<f64>(4);
        assert!(matches!(
            m.try_memcpy(h.addr, d.addr, 32, CopyKind::HostToDevice),
            Err(SimError::BadCopyDirection { .. })
        ));
    }

    #[test]
    fn advise_requires_managed() {
        let mut m = m();
        let h = m.alloc_host::<f64>(4);
        assert!(matches!(
            m.try_mem_advise(h.addr, 32, MemAdvise::SetReadMostly),
            Err(SimError::AdviseOnUnmanaged { .. })
        ));
    }

    #[test]
    fn ping_pong_costs_more_than_read_mostly() {
        // Micro version of the LULESH fix: alternating accesses vs the
        // same pattern under ReadMostly.
        fn run(advise: bool) -> (f64, u64) {
            let mut m = Machine::new(intel_pascal());
            let p = m.alloc_managed::<f64>(8);
            if advise {
                m.mem_advise(p, MemAdvise::SetReadMostly);
            }
            m.st(p, 0, 1.0); // CPU writes once
            m.reset_metrics();
            for _ in 0..50 {
                m.launch("read_dom", 1, |_, m| {
                    let _ = m.ld(p, 0);
                });
                let _ = m.ld(p, 1); // CPU read in between
            }
            (m.elapsed_ns(), m.stats.faults())
        }
        let (t_base, f_base) = run(false);
        let (t_rm, f_rm) = run(true);
        assert!(f_rm < f_base);
        assert!(t_rm < t_base / 2.0, "ReadMostly should be >2x faster here");
    }

    #[test]
    fn nvlink_baseline_cheaper_than_pcie_for_alternating() {
        fn run(pf: Platform) -> f64 {
            let mut m = Machine::new(pf);
            let p = m.alloc_managed::<f64>(8);
            m.st(p, 0, 1.0);
            m.reset_metrics();
            for _ in 0..50 {
                m.launch("k", 1, |_, m| {
                    m.st(p, 0, 2.0);
                });
                let _ = m.ld(p, 0);
            }
            m.elapsed_ns()
        }
        let pcie = run(intel_pascal());
        let nvlink = run(power9_volta());
        assert!(nvlink < pcie / 2.0);
    }

    #[test]
    fn hook_sees_all_events() {
        let mut m = m();
        let h = Rc::new(RefCell::new(CountingHook::default()));
        m.attach_hook(h.clone());
        let p = m.alloc_managed::<f64>(4);
        m.st(p, 0, 1.0);
        let _ = m.ld(p, 0);
        m.rmw(p, 0, |v: f64| v + 1.0);
        m.launch("k", 2, |t, m| {
            let _ = m.ld(p, t);
        });
        m.free(p);
        let c = h.borrow();
        assert_eq!(c.allocs, 1);
        assert_eq!(c.frees, 1);
        assert_eq!(c.writes, 1);
        assert_eq!(c.reads, 3); // 1 host + 2 kernel
        assert_eq!(c.rmws, 1);
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn attach_hook_returns_displaced_hook() {
        let mut m = m();
        let a = Rc::new(RefCell::new(CountingHook::default()));
        let b = Rc::new(RefCell::new(CountingHook::default()));
        assert!(m.attach_hook(a.clone()).is_none());
        let prev = m.attach_hook(b.clone()).expect("first hook displaced");
        assert!(Rc::ptr_eq(
            &(prev as Rc<RefCell<dyn MemHook>>),
            &(a as Rc<RefCell<dyn MemHook>>)
        ));
    }

    #[test]
    fn add_hook_composes_instead_of_replacing() {
        let mut m = m();
        let a = Rc::new(RefCell::new(CountingHook::default()));
        let b = Rc::new(RefCell::new(CountingHook::default()));
        m.add_hook(a.clone());
        m.add_hook(b.clone());
        let p = m.alloc_managed::<f64>(4);
        m.st(p, 0, 1.0);
        assert_eq!(a.borrow().writes, 1);
        assert_eq!(b.borrow().writes, 1);
        assert_eq!(a.borrow().allocs, 1);
        assert_eq!(b.borrow().allocs, 1);
    }

    #[test]
    fn event_log_records_faults_migrations_and_kernel_spans() {
        use crate::event::{Event, EventLog};
        let mut m = m();
        let log = Rc::new(RefCell::new(EventLog::new()));
        m.attach_hook(log.clone());
        let p = m.alloc_managed::<f64>(8);
        m.st(p, 0, 1.0); // CPU first touch: no fault
        m.launch("k", 1, |_, m| {
            let _ = m.ld(p, 0); // GPU touch: fault + migration
        });
        m.free(p);
        let log = log.borrow();
        assert_eq!(log.count_of("alloc"), 1);
        assert_eq!(log.count_of("free"), 1);
        assert_eq!(log.count_of("page_fault"), 1);
        assert_eq!(log.count_of("migration"), 1);
        assert_eq!(log.count_of("kernel_begin"), 1);
        assert_eq!(log.count_of("kernel_end"), 1);
        // The kernel span is well-formed and the stream stamp matches.
        let span = log
            .events()
            .find_map(|e| match &e.event {
                Event::KernelEnd {
                    name,
                    stream,
                    start_ns,
                    end_ns,
                } => Some((name.clone(), *stream, *start_ns, *end_ns)),
                _ => None,
            })
            .expect("kernel end span recorded");
        assert_eq!(span.0, "k");
        assert_eq!(span.1, crate::clock::DEFAULT_STREAM);
        assert!(span.3 > span.2, "span must have positive duration");
        // Timestamps never decrease across the recorded stream.
        let ts: Vec<f64> = log.events().map(|e| e.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn event_log_records_memcpy_advise_and_prefetch_spans() {
        use crate::event::{Event, EventLog};
        let mut m = m();
        let log = Rc::new(RefCell::new(EventLog::new()));
        m.attach_hook(log.clone());
        let h = m.alloc_host::<f64>(1024);
        let d = m.alloc_device::<f64>(1024);
        let u = m.alloc_managed::<f64>(1024);
        m.memcpy(d, h, 1024, CopyKind::HostToDevice);
        m.mem_advise(u, MemAdvise::SetReadMostly);
        m.mem_prefetch(u, Device::GPU0);
        let log = log.borrow();
        assert_eq!(log.count_of("memcpy"), 1);
        assert_eq!(log.count_of("advise"), 1);
        assert_eq!(log.count_of("prefetch"), 1);
        for e in log.events() {
            if let Event::Memcpy {
                bytes,
                start_ns,
                end_ns,
                ..
            } = &e.event
            {
                assert_eq!(*bytes, 1024 * 8);
                assert!(end_ns > start_ns);
            }
        }
    }

    #[test]
    fn async_kernel_span_lands_on_its_stream() {
        use crate::event::{Event, EventLog};
        let mut m = m();
        let log = Rc::new(RefCell::new(EventLog::new()));
        m.attach_hook(log.clone());
        let p = m.alloc_device::<f64>(64);
        let s = m.create_stream();
        m.launch_async(s, "akern", 64, |t, m| m.st(p, t, 0.0));
        let t_host = m.now();
        let log = log.borrow();
        let (stream, end) = log
            .events()
            .find_map(|e| match &e.event {
                Event::KernelEnd { stream, end_ns, .. } => Some((*stream, *end_ns)),
                _ => None,
            })
            .unwrap();
        assert_eq!(stream, s);
        assert!(end > t_host, "async work completes after the host moves on");
    }

    #[test]
    fn rmw_applies_function() {
        let mut m = m();
        let p = m.alloc_managed::<i32>(1);
        m.st(p, 0, 41);
        let v = m.rmw(p, 0, |x: i32| x + 1);
        assert_eq!(v, 42);
        assert_eq!(m.peek(p, 0), 42);
    }

    #[test]
    fn kernel_time_scales_with_parallelism_bucket() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(100_000);
        // Touch everything once on the GPU first so later kernels are
        // fault-free.
        m.launch("warm", 100_000, |t, m| m.st(p, t, 0.0));
        m.reset_metrics();
        m.launch("small", 1_000, |t, m| {
            let _ = m.ld(p, t);
        });
        let t_small = m.elapsed_ns();
        m.reset_metrics();
        m.launch("big", 100_000, |t, m| {
            let _ = m.ld(p, t);
        });
        let t_big = m.elapsed_ns();
        assert!(t_big > t_small);
        // 100x the work is far less than 100x the time (fixed launch cost,
        // parallel lanes).
        assert!(t_big < t_small * 100.0);
    }

    #[test]
    fn async_overlap_beats_sync() {
        // Total time for copy+kernel pairs with and without streams.
        fn run(overlap: bool) -> f64 {
            let mut m = Machine::new(intel_pascal());
            let h = m.alloc_host::<f64>(1 << 16);
            let d = m.alloc_device::<f64>(1 << 16);
            let chunk = 1 << 12;
            let copy_s = m.create_stream();
            let comp_s = m.create_stream();
            for it in 0..8 {
                let off = it * chunk;
                if overlap {
                    m.memcpy_async(
                        d.slice(off, chunk),
                        h.slice(off, chunk),
                        chunk,
                        CopyKind::HostToDevice,
                        copy_s,
                    );
                    m.launch_async(comp_s, "work", 4096, |t, m| {
                        let _ = m.ld(d, t % chunk);
                        m.compute(50);
                    });
                } else {
                    m.memcpy(
                        d.slice(off, chunk),
                        h.slice(off, chunk),
                        chunk,
                        CopyKind::HostToDevice,
                    );
                    m.launch("work", 4096, |t, m| {
                        let _ = m.ld(d, t % chunk);
                        m.compute(50);
                    });
                }
            }
            m.elapsed_ns()
        }
        assert!(run(true) < run(false));
    }

    #[test]
    fn prefetch_avoids_kernel_faults() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(64 * 1024); // several pages
        for i in 0..p.len {
            m.st(p, i, 1.0);
        }
        m.reset_metrics();
        m.mem_prefetch(p, Device::GPU0);
        let migrated = m.stats.migrations_h2d;
        assert!(migrated > 0);
        m.launch("k", p.len, |t, m| {
            let _ = m.ld(p, t);
        });
        assert_eq!(m.stats.gpu_faults, 0, "prefetched pages must not fault");
    }

    #[test]
    fn prefetch_requires_managed_memory() {
        let mut m = m();
        let p = m.alloc_device::<f64>(8);
        assert!(matches!(
            m.try_mem_prefetch(
                p.addr,
                p.bytes(),
                Device::GPU0,
                crate::clock::DEFAULT_STREAM
            ),
            Err(SimError::AdviseOnUnmanaged { .. })
        ));
    }

    #[test]
    fn bulk_range_matches_per_word_loop_exactly() {
        // Drive the same mixed host/kernel program through the bulk APIs
        // and the per-word reference decomposition: stats, elapsed time,
        // counted hook callbacks, and loaded data must all be identical.
        fn run(bulk: bool) -> (Stats, f64, CountingHook, Vec<f64>) {
            let mut m = Machine::new(intel_pascal());
            m.set_bulk_enabled(bulk);
            let h = Rc::new(RefCell::new(CountingHook::default()));
            m.attach_hook(h.clone());
            // Big enough to span several pages.
            let n = 3000;
            let p = m.alloc_managed::<f64>(n);
            let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
            m.st_range(p, 0, &vals); // CPU writes (first touch)
            m.launch("sweep", 1, |_, m| {
                let _ = m.ld_range(p, 0, n); // GPU reads: faults + migrations
                m.fill(p, 100, 1000, 7.0); // GPU writes, offset into the array
            });
            m.rmw_range(p, 0, n, |i, v: f64| v + i as f64); // CPU RMW: pulls pages back
            let got = m.ld_range(p, 5, 64);
            let elapsed = m.elapsed_ns();
            let counts = h.borrow().clone();
            (m.stats.clone(), elapsed, counts, got)
        }
        let fast = run(true);
        let slow = run(false);
        assert_eq!(fast.0, slow.0, "stats must match");
        assert_eq!(fast.1, slow.1, "simulated time must match bit-exactly");
        assert_eq!(fast.2, slow.2, "hook callback totals must match");
        assert_eq!(fast.3, slow.3, "loaded data must match");
    }

    #[test]
    fn bulk_range_matches_scalar_loop_on_unmanaged_memory() {
        fn run(bulk: bool) -> (Stats, f64) {
            let mut m = Machine::new(intel_pascal());
            m.set_bulk_enabled(bulk);
            let h = m.alloc_host::<i32>(256);
            let d = m.alloc_device::<i32>(256);
            m.fill(h, 0, 256, 3);
            m.launch("k", 1, |_, m| {
                m.fill(d, 0, 256, 4);
                let _ = m.ld_range(d, 0, 256);
            });
            (m.stats.clone(), m.elapsed_ns())
        }
        assert_eq!(run(true), run(false));
        // And the bulk path agrees with a hand-written scalar loop.
        let mut m = Machine::new(intel_pascal());
        let h = m.alloc_host::<i32>(256);
        for i in 0..256 {
            m.st(h, i, 3);
        }
        let scalar = (m.stats.clone(), m.elapsed_ns());
        let mut m = Machine::new(intel_pascal());
        let h = m.alloc_host::<i32>(256);
        m.fill(h, 0, 256, 3);
        assert_eq!((m.stats.clone(), m.elapsed_ns()), scalar);
    }

    #[test]
    fn bulk_range_rejects_out_of_bounds_and_wrong_device() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(8);
        assert!(m.read_range(p.addr, 8, 9).is_err(), "range past the end");
        assert!(m.read_range(p.addr, 8, 0).is_ok(), "empty range is a no-op");
        let d = m.alloc_device::<f64>(8);
        assert!(matches!(
            m.read_range(d.addr, 8, 4),
            Err(SimError::IllegalAccess { .. })
        ));
        assert_eq!(m.stats.cpu_reads, 0, "failed ranges charge nothing");
    }

    #[test]
    fn bulk_range_emits_same_events_as_per_word() {
        use crate::event::EventLog;
        fn run(bulk: bool) -> Vec<(String, f64)> {
            let mut m = Machine::new(intel_pascal());
            m.set_bulk_enabled(bulk);
            let log = Rc::new(RefCell::new(EventLog::new()));
            m.attach_hook(log.clone());
            let n = 2048;
            let p = m.alloc_managed::<f64>(n);
            m.st_range(p, 0, &vec![1.0; n]);
            m.launch("k", 1, |_, m| {
                let _ = m.ld_range(p, 0, n);
            });
            let _ = m.ld_range(p, 0, n); // CPU pulls the pages back
            let log = log.borrow();
            log.events()
                .map(|e| (e.event.kind_name().to_string(), e.t_ns))
                .collect()
        }
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn page_state_visible() {
        let mut m = m();
        let p = m.alloc_managed::<f64>(4);
        m.st(p, 0, 1.0);
        assert_eq!(m.page_state(p.addr).owner, Device::Cpu);
        m.launch("k", 1, |_, m| m.st(p, 0, 2.0));
        assert_eq!(m.page_state(p.addr).owner, Device::GPU0);
    }
}
