//! Platform presets: the three CPU/GPU combinations of the paper's
//! evaluation (§IV), expressed as cost-model parameters.
//!
//! The absolute values are order-of-magnitude estimates from public
//! documentation (PCIe 3.0 x16 ≈ 12 GB/s effective, NVLink 2.0 ≈ 60 GB/s
//! effective to a Power9, UM fault service ≈ tens of microseconds). The
//! reproduction targets *shapes* — who wins and where the crossovers fall —
//! so only the ratios between parameters matter.

/// Interconnect family between host and GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// PCI Express 3.0 x16 (the two Intel systems).
    Pcie3,
    /// NVLink 2.0 (the IBM Power9 system). Cache-coherent: the CPU can
    /// load/store GPU-resident managed pages directly.
    Nvlink2,
}

/// Cost-model parameters of a simulated heterogeneous node.
///
/// All times are nanoseconds, all bandwidths bytes per nanosecond
/// (1 B/ns = 1 GB/s).
#[derive(Debug, Clone)]
pub struct Platform {
    /// Human-readable platform name as used in the paper's figures.
    pub name: &'static str,
    /// Interconnect family (drives the coherence shortcuts below).
    pub interconnect: Interconnect,
    /// Unified-memory page size in bytes. CUDA migrates in 64 KiB chunks
    /// on the evaluated GPUs.
    pub page_size: u64,
    /// Per-word cost of a CPU access that hits local memory.
    pub cpu_word_ns: f64,
    /// Per-word cost of a GPU access that hits device memory, *per thread*
    /// before dividing by `gpu_parallelism`.
    pub gpu_word_ns: f64,
    /// Effective number of GPU lanes making progress concurrently. Word
    /// and compute costs inside a kernel are divided by this.
    pub gpu_parallelism: f64,
    /// Cost of one CPU arithmetic operation (`compute` hints on the host).
    pub cpu_flop_ns: f64,
    /// Cost of one GPU arithmetic operation per thread (divided by
    /// `gpu_parallelism`).
    pub gpu_flop_ns: f64,
    /// Driver overhead of servicing one page fault (trap, TLB shootdown,
    /// driver bookkeeping) — *excluding* the data movement itself.
    pub fault_ns: f64,
    /// Interconnect bandwidth for page migrations and explicit copies.
    pub link_bw: f64,
    /// Fixed latency of one explicit `cudaMemcpy` call.
    pub memcpy_latency_ns: f64,
    /// Per-word cost of a *remote* access through an established mapping
    /// (AccessedBy / preferred-location mappings; also CPU direct access
    /// over NVLink).
    pub remote_word_ns: f64,
    /// Cost of invalidating one read-duplicated copy on a write to a
    /// ReadMostly page.
    pub invalidate_ns: f64,
    /// Cost of establishing a remote mapping for a page.
    pub map_ns: f64,
    /// GPU physical memory capacity in bytes. Managed pages resident on
    /// the GPU beyond this trigger LRU eviction (oversubscription).
    pub gpu_mem_bytes: u64,
    /// Fixed cost of launching a kernel.
    pub kernel_launch_ns: f64,
    /// Host-side cost of an explicit `cudaStreamSynchronize` (driver call,
    /// event polling). Chunked-overlap schemes pay this once per chunk,
    /// which is why overlapping stops paying off when the interconnect is
    /// fast (Pathfinder on NVLink, paper Fig. 11).
    pub stream_sync_ns: f64,
    /// Whether the CPU can directly load/store GPU-resident managed pages
    /// without migrating them (NVLink address-translation coherence). On
    /// PCIe systems a CPU touch of a GPU-resident page always migrates it
    /// back to the host.
    pub cpu_direct_access_gpu: bool,
    /// Whether `cudaMemcpyAsync` from pageable host memory degenerates to
    /// a synchronous staged copy. True on the Power9 test system — the
    /// reason the paper's overlapped Pathfinder "remains slower on IBM
    /// plus Nvidia Volta" (Fig. 11) despite the faster link.
    pub async_pageable_copy_serializes: bool,
}

// `Machine` is deliberately not `Send` (it shares hooks via
// `Rc<RefCell<..>>`), so parallel evaluation hands each worker thread a
// `Platform` and lets it build its own machine. That contract only works
// while `Platform` stays plain data; this assert turns a field that
// breaks it into a compile error here instead of a confusing bound
// failure in `xplacer-optimize`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Platform>()
};

impl Platform {
    /// Time to move `bytes` across the host/GPU interconnect.
    #[inline]
    pub fn xfer_ns(&self, bytes: u64) -> f64 {
        bytes as f64 / self.link_bw
    }

    /// Full cost of migrating one page: fault service plus data movement.
    #[inline]
    pub fn page_migration_ns(&self) -> f64 {
        self.fault_ns + self.xfer_ns(self.page_size)
    }

    /// Number of the page containing `addr`.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_size
    }
}

/// Intel E5-2695 v4 + Nvidia Pascal P100 over PCIe 3.0 (paper's primary
/// x86 testbed).
pub fn intel_pascal() -> Platform {
    Platform {
        name: "Intel+Pascal",
        interconnect: Interconnect::Pcie3,
        page_size: 64 * 1024,
        cpu_word_ns: 1.2,
        gpu_word_ns: 12.0,
        gpu_parallelism: 1792.0,
        cpu_flop_ns: 0.5,
        gpu_flop_ns: 1.0,
        fault_ns: 25_000.0,
        link_bw: 12.0,
        memcpy_latency_ns: 10_000.0,
        remote_word_ns: 450.0,
        invalidate_ns: 4_000.0,
        map_ns: 6_000.0,
        gpu_mem_bytes: 16 << 30,
        kernel_launch_ns: 8_000.0,
        stream_sync_ns: 9_000.0,
        cpu_direct_access_gpu: false,
        async_pageable_copy_serializes: false,
    }
}

/// Intel E5-2698 v3 + Nvidia Volta V100 over PCIe 3.0 (the third system of
/// Fig. 6). Faster GPU, same interconnect pain.
pub fn intel_volta() -> Platform {
    Platform {
        name: "Intel+Volta",
        interconnect: Interconnect::Pcie3,
        page_size: 64 * 1024,
        cpu_word_ns: 1.3,
        gpu_word_ns: 10.0,
        gpu_parallelism: 2560.0,
        cpu_flop_ns: 0.55,
        gpu_flop_ns: 0.7,
        fault_ns: 30_000.0,
        link_bw: 12.0,
        memcpy_latency_ns: 10_000.0,
        remote_word_ns: 450.0,
        invalidate_ns: 4_000.0,
        map_ns: 6_000.0,
        gpu_mem_bytes: 16 << 30,
        kernel_launch_ns: 7_000.0,
        stream_sync_ns: 9_000.0,
        cpu_direct_access_gpu: false,
        async_pageable_copy_serializes: false,
    }
}

/// IBM Power9 + Nvidia Volta V100 over NVLink 2.0. High interconnect
/// bandwidth, cheap faults, and cache-coherent CPU access to GPU memory —
/// the reason the paper's remedies barely help (or hurt) on this system.
pub fn power9_volta() -> Platform {
    Platform {
        name: "IBM+Volta",
        interconnect: Interconnect::Nvlink2,
        page_size: 64 * 1024,
        cpu_word_ns: 1.4,
        gpu_word_ns: 10.0,
        gpu_parallelism: 2560.0,
        cpu_flop_ns: 0.6,
        gpu_flop_ns: 0.7,
        fault_ns: 6_000.0,
        link_bw: 60.0,
        memcpy_latency_ns: 6_000.0,
        remote_word_ns: 40.0,
        // Coherence invalidations are relatively costlier on the NVLink
        // system (cross-socket TLB shootdowns over the coherent fabric) —
        // the reason ReadMostly is a net loss there (Fig. 6, 0.8x).
        invalidate_ns: 9_000.0,
        map_ns: 3_000.0,
        gpu_mem_bytes: 16 << 30,
        kernel_launch_ns: 7_000.0,
        stream_sync_ns: 9_000.0,
        cpu_direct_access_gpu: true,
        async_pageable_copy_serializes: true,
    }
}

/// The three evaluation platforms in the order the paper's figures list
/// them.
pub fn all_platforms() -> Vec<Platform> {
    vec![intel_pascal(), intel_volta(), power9_volta()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_interconnects() {
        assert_eq!(intel_pascal().interconnect, Interconnect::Pcie3);
        assert_eq!(intel_volta().interconnect, Interconnect::Pcie3);
        assert_eq!(power9_volta().interconnect, Interconnect::Nvlink2);
    }

    #[test]
    fn nvlink_is_meaningfully_faster_than_pcie() {
        let pcie = intel_pascal();
        let nvl = power9_volta();
        assert!(nvl.link_bw >= 4.0 * pcie.link_bw);
        assert!(nvl.fault_ns < pcie.fault_ns / 2.0);
        assert!(nvl.remote_word_ns < pcie.remote_word_ns / 5.0);
        assert!(nvl.cpu_direct_access_gpu);
        assert!(!pcie.cpu_direct_access_gpu);
    }

    #[test]
    fn migration_cost_dominated_by_fault_on_pcie() {
        let p = intel_pascal();
        // One 64 KiB page at 12 B/ns is ~5.5 us of data movement; the fault
        // service adds tens of microseconds on top.
        assert!(p.page_migration_ns() > p.xfer_ns(p.page_size));
        assert!(p.fault_ns > p.xfer_ns(p.page_size));
    }

    #[test]
    fn page_of_is_page_granular() {
        let p = intel_pascal();
        assert_eq!(p.page_of(0), 0);
        assert_eq!(p.page_of(p.page_size - 1), 0);
        assert_eq!(p.page_of(p.page_size), 1);
        assert_eq!(p.page_of(3 * p.page_size + 17), 3);
    }

    #[test]
    fn all_platforms_order_matches_paper() {
        let names: Vec<&str> = all_platforms().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["Intel+Pascal", "Intel+Volta", "IBM+Volta"]);
    }
}
