//! Event counters the simulator accumulates — the simulated analogue of
//! the OS/CUPTI performance counters the paper correlates its diagnostics
//! against (page fault groups, migrated bytes, ...).

/// Counter block. Everything is monotonically increasing until `reset`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Stats {
    /// Page faults taken by the CPU on managed memory.
    pub cpu_faults: u64,
    /// Page faults taken by a GPU on managed memory.
    pub gpu_faults: u64,
    /// Pages migrated host → device.
    pub migrations_h2d: u64,
    /// Pages migrated device → host.
    pub migrations_d2h: u64,
    /// Total bytes moved by page migration (both directions).
    pub bytes_migrated: u64,
    /// Read-duplications performed for ReadMostly pages.
    pub duplications: u64,
    /// Copy invalidations caused by writes to ReadMostly pages.
    pub invalidations: u64,
    /// Pages evicted from GPU memory due to oversubscription.
    pub evictions: u64,
    /// Bytes written back by evictions.
    pub bytes_evicted: u64,
    /// Word accesses served through a remote mapping (no migration).
    pub remote_accesses: u64,
    /// Explicit host→device copies.
    pub memcpy_h2d: u64,
    /// Explicit device→host copies.
    pub memcpy_d2h: u64,
    /// Total bytes moved by explicit copies.
    pub memcpy_bytes: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Word reads performed by the CPU.
    pub cpu_reads: u64,
    /// Word writes performed by the CPU.
    pub cpu_writes: u64,
    /// Word reads performed by GPUs.
    pub gpu_reads: u64,
    /// Word writes performed by GPUs.
    pub gpu_writes: u64,
    /// Live allocations created.
    pub allocs: u64,
    /// Allocations freed.
    pub frees: u64,
}

impl Stats {
    /// Total page faults on either side.
    pub fn faults(&self) -> u64 {
        self.cpu_faults + self.gpu_faults
    }

    /// Total page migrations in either direction.
    pub fn migrations(&self) -> u64 {
        self.migrations_h2d + self.migrations_d2h
    }

    /// Total word accesses from either side.
    pub fn accesses(&self) -> u64 {
        self.cpu_reads + self.cpu_writes + self.gpu_reads + self.gpu_writes
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }

    /// Difference `self - earlier`, for measuring a phase. Saturates at 0
    /// so a reset in between does not underflow.
    pub fn since(&self, earlier: &Stats) -> Stats {
        macro_rules! d {
            ($f:ident) => {
                self.$f.saturating_sub(earlier.$f)
            };
        }
        Stats {
            cpu_faults: d!(cpu_faults),
            gpu_faults: d!(gpu_faults),
            migrations_h2d: d!(migrations_h2d),
            migrations_d2h: d!(migrations_d2h),
            bytes_migrated: d!(bytes_migrated),
            duplications: d!(duplications),
            invalidations: d!(invalidations),
            evictions: d!(evictions),
            bytes_evicted: d!(bytes_evicted),
            remote_accesses: d!(remote_accesses),
            memcpy_h2d: d!(memcpy_h2d),
            memcpy_d2h: d!(memcpy_d2h),
            memcpy_bytes: d!(memcpy_bytes),
            kernel_launches: d!(kernel_launches),
            cpu_reads: d!(cpu_reads),
            cpu_writes: d!(cpu_writes),
            gpu_reads: d!(gpu_reads),
            gpu_writes: d!(gpu_writes),
            allocs: d!(allocs),
            frees: d!(frees),
        }
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "faults: cpu={} gpu={} | migrations: h2d={} d2h={} ({} B) | \
             dup={} inval={} evict={} ({} B) remote={} | \
             memcpy: h2d={} d2h={} ({} B) | kernels={} | \
             accesses: Cr={} Cw={} Gr={} Gw={} | allocs={} frees={}",
            self.cpu_faults,
            self.gpu_faults,
            self.migrations_h2d,
            self.migrations_d2h,
            self.bytes_migrated,
            self.duplications,
            self.invalidations,
            self.evictions,
            self.bytes_evicted,
            self.remote_accesses,
            self.memcpy_h2d,
            self.memcpy_d2h,
            self.memcpy_bytes,
            self.kernel_launches,
            self.cpu_reads,
            self.cpu_writes,
            self.gpu_reads,
            self.gpu_writes,
            self.allocs,
            self.frees,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = Stats {
            cpu_faults: 3,
            gpu_faults: 4,
            migrations_h2d: 1,
            migrations_d2h: 2,
            cpu_reads: 10,
            cpu_writes: 20,
            gpu_reads: 30,
            gpu_writes: 40,
            ..Stats::default()
        };
        assert_eq!(s.faults(), 7);
        assert_eq!(s.migrations(), 3);
        assert_eq!(s.accesses(), 100);
    }

    #[test]
    fn since_subtracts_and_saturates() {
        let a = Stats {
            cpu_faults: 10,
            gpu_reads: 5,
            ..Default::default()
        };
        let mut b = a.clone();
        b.cpu_faults = 25;
        b.gpu_reads = 3; // pretend a reset happened
        let d = b.since(&a);
        assert_eq!(d.cpu_faults, 15);
        assert_eq!(d.gpu_reads, 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = Stats {
            kernel_launches: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, Stats::default());
    }

    #[test]
    fn summary_mentions_key_counters() {
        let s = Stats {
            gpu_faults: 42,
            ..Default::default()
        };
        let txt = s.summary();
        assert!(txt.contains("gpu=42"));
        assert!(txt.contains("kernels=0"));
    }
}
