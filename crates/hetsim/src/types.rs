//! Core identifier and value types shared across the simulator.

use std::marker::PhantomData;

/// A simulated virtual address. Address 0 is the null pointer and never
/// backs an allocation.
pub type Addr = u64;

/// Simulated time in nanoseconds.
pub type SimTime = f64;

/// A processing element of the simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Device {
    /// The host CPU (all cores are modeled as one clock domain).
    Cpu,
    /// A GPU, identified by its CUDA-style device ordinal.
    Gpu(u8),
}

impl Device {
    /// The first (and usually only) GPU of the node.
    pub const GPU0: Device = Device::Gpu(0);

    /// Whether this device is a GPU.
    #[inline]
    pub fn is_gpu(self) -> bool {
        matches!(self, Device::Gpu(_))
    }

    /// Short label used in diagnostics: `C` for CPU, `G` for GPU —
    /// matching the column headers of the paper's Fig. 4.
    pub fn letter(self) -> char {
        match self {
            Device::Cpu => 'C',
            Device::Gpu(_) => 'G',
        }
    }

    #[inline]
    fn bit(self) -> u16 {
        match self {
            Device::Cpu => 0,
            Device::Gpu(g) => 1 + g as u16,
        }
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Cpu => write!(f, "cpu"),
            Device::Gpu(g) => write!(f, "gpu{g}"),
        }
    }
}

/// A small set of devices, stored as a bitmask (bit 0 = CPU, bit `1+g` =
/// GPU `g`). Sixteen bits comfortably cover one CPU plus 15 GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct DeviceSet(u16);

impl DeviceSet {
    /// The empty set.
    pub const EMPTY: DeviceSet = DeviceSet(0);

    /// A set containing a single device.
    #[inline]
    pub fn single(d: Device) -> Self {
        DeviceSet(1 << d.bit())
    }

    /// Insert `d`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, d: Device) -> bool {
        let m = 1 << d.bit();
        let added = self.0 & m == 0;
        self.0 |= m;
        added
    }

    /// Remove `d`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, d: Device) -> bool {
        let m = 1 << d.bit();
        let had = self.0 & m != 0;
        self.0 &= !m;
        had
    }

    /// Whether `d` is in the set.
    #[inline]
    pub fn contains(self, d: Device) -> bool {
        self.0 & (1 << d.bit()) != 0
    }

    /// Number of devices in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Remove every device from the set.
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterate over the devices in the set, CPU first then GPUs in
    /// ascending ordinal.
    pub fn iter(self) -> impl Iterator<Item = Device> {
        (0u16..16).filter_map(move |b| {
            if self.0 & (1 << b) != 0 {
                Some(if b == 0 {
                    Device::Cpu
                } else {
                    Device::Gpu((b - 1) as u8)
                })
            } else {
                None
            }
        })
    }
}

impl FromIterator<Device> for DeviceSet {
    fn from_iter<T: IntoIterator<Item = Device>>(iter: T) -> Self {
        let mut s = DeviceSet::EMPTY;
        for d in iter {
            s.insert(d);
        }
        s
    }
}

/// How an allocation was obtained. Mirrors the CUDA allocation families the
/// paper's runtime distinguishes (§III-A pattern descriptions key off it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// `cudaMallocManaged`: unified memory, accessible from every device,
    /// managed by the on-demand paging driver.
    Managed,
    /// `cudaMalloc`: device memory resident on the given GPU; the host may
    /// only reach it through explicit `memcpy`.
    Device(u8),
    /// `malloc`/`new` on the host heap; the GPU may only reach it through
    /// explicit `memcpy`.
    Host,
}

impl AllocKind {
    /// Printable name matching the originating CUDA/C API.
    pub fn api_name(self) -> &'static str {
        match self {
            AllocKind::Managed => "cudaMallocManaged",
            AllocKind::Device(_) => "cudaMalloc",
            AllocKind::Host => "malloc",
        }
    }
}

/// The flavour of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
    /// A read-modify-write (e.g. `++`, `+=`): counted as both a read and a
    /// write, and treated as a write by the coherence machinery.
    ReadWrite,
}

impl AccessKind {
    #[inline]
    pub fn reads(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::ReadWrite)
    }

    #[inline]
    pub fn writes(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::ReadWrite)
    }
}

/// Direction of an explicit `cudaMemcpy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    HostToDevice,
    DeviceToHost,
    DeviceToDevice,
    HostToHost,
}

impl CopyKind {
    /// Whether the copy crosses the CPU/GPU interconnect.
    pub fn crosses_interconnect(self) -> bool {
        matches!(self, CopyKind::HostToDevice | CopyKind::DeviceToHost)
    }
}

/// `cudaMemAdvise` advice values (§II-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemAdvise {
    /// Data is mostly read; the driver may create read-only copies per
    /// device. A write invalidates all other copies.
    SetReadMostly,
    UnsetReadMostly,
    /// Prefer keeping the data on the given device; faults elsewhere try to
    /// map the data remotely instead of migrating it.
    SetPreferredLocation(Device),
    UnsetPreferredLocation,
    /// Keep the data mapped in the given device's page tables so that its
    /// accesses never fault (they go remote instead).
    SetAccessedBy(Device),
    UnsetAccessedBy(Device),
}

/// Plain-old-data value types that can live in simulated memory.
///
/// Everything is stored little-endian in the backing bytes so results are
/// deterministic and byte-level tools (shadow maps, memcpy) see exactly what
/// a real machine would.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Default + 'static {
    /// Size of the value in bytes.
    const SIZE: usize;
    /// Serialize into `out` (little endian); `out.len() == Self::SIZE`.
    fn store_le(self, out: &mut [u8]);
    /// Deserialize from `b` (little endian); `b.len() == Self::SIZE`.
    fn load_le(b: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn store_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn load_le(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("scalar width"))
            }
        }
    )*};
}

impl_scalar!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// A typed pointer to an array of `T` in simulated memory.
///
/// This is the handle workloads and the interpreter pass around; it is
/// `Copy` so kernels can capture it by value, exactly like a raw device
/// pointer in CUDA.
pub struct TPtr<T> {
    /// Base address of element 0.
    pub addr: Addr,
    /// Number of `T` elements.
    pub len: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for TPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TPtr<T> {}

impl<T> std::fmt::Debug for TPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TPtr(0x{:x}, len={})", self.addr, self.len)
    }
}

impl<T: Scalar> TPtr<T> {
    /// Wrap a raw base address and element count.
    pub fn new(addr: Addr, len: usize) -> Self {
        TPtr {
            addr,
            len,
            _marker: PhantomData,
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Self::new(0, 0)
    }

    /// Whether this is the null pointer.
    pub fn is_null(self) -> bool {
        self.addr == 0
    }

    /// Address of element `i` (unchecked against `len`; the address space
    /// does the bounds check at access time, like real hardware would).
    #[inline]
    pub fn at(self, i: usize) -> Addr {
        self.addr + (i * T::SIZE) as Addr
    }

    /// Size of the pointed-to array in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        (self.len * T::SIZE) as u64
    }

    /// A sub-array starting at element `offset` with `len` elements.
    pub fn slice(self, offset: usize, len: usize) -> Self {
        assert!(offset + len <= self.len, "TPtr::slice out of range");
        TPtr::new(self.at(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_set_insert_remove() {
        let mut s = DeviceSet::EMPTY;
        assert!(s.is_empty());
        assert!(s.insert(Device::Cpu));
        assert!(!s.insert(Device::Cpu));
        assert!(s.insert(Device::Gpu(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Device::Cpu));
        assert!(s.contains(Device::Gpu(0)));
        assert!(!s.contains(Device::Gpu(1)));
        assert!(s.remove(Device::Cpu));
        assert!(!s.remove(Device::Cpu));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn device_set_iter_order() {
        let s: DeviceSet = [Device::Gpu(2), Device::Cpu, Device::Gpu(0)]
            .into_iter()
            .collect();
        let v: Vec<Device> = s.iter().collect();
        assert_eq!(v, vec![Device::Cpu, Device::Gpu(0), Device::Gpu(2)]);
    }

    #[test]
    fn device_letters_match_paper_columns() {
        assert_eq!(Device::Cpu.letter(), 'C');
        assert_eq!(Device::GPU0.letter(), 'G');
    }

    #[test]
    fn access_kind_read_write_flags() {
        assert!(AccessKind::Read.reads() && !AccessKind::Read.writes());
        assert!(!AccessKind::Write.reads() && AccessKind::Write.writes());
        assert!(AccessKind::ReadWrite.reads() && AccessKind::ReadWrite.writes());
    }

    #[test]
    fn scalar_roundtrip_f64() {
        let mut buf = [0u8; 8];
        (1234.5678f64).store_le(&mut buf);
        assert_eq!(f64::load_le(&buf), 1234.5678);
    }

    #[test]
    fn scalar_roundtrip_i32() {
        let mut buf = [0u8; 4];
        (-42i32).store_le(&mut buf);
        assert_eq!(i32::load_le(&buf), -42);
    }

    #[test]
    fn tptr_addressing() {
        let p: TPtr<f64> = TPtr::new(0x1000, 16);
        assert_eq!(p.at(0), 0x1000);
        assert_eq!(p.at(3), 0x1000 + 24);
        assert_eq!(p.bytes(), 128);
        let s = p.slice(4, 4);
        assert_eq!(s.addr, 0x1000 + 32);
        assert_eq!(s.len, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tptr_slice_oob_panics() {
        let p: TPtr<u32> = TPtr::new(0x1000, 4);
        let _ = p.slice(2, 3);
    }

    #[test]
    fn copy_kind_interconnect() {
        assert!(CopyKind::HostToDevice.crosses_interconnect());
        assert!(CopyKind::DeviceToHost.crosses_interconnect());
        assert!(!CopyKind::HostToHost.crosses_interconnect());
        assert!(!CopyKind::DeviceToDevice.crosses_interconnect());
    }
}
