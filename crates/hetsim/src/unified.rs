//! The unified-memory driver: page states, on-demand migration,
//! read-duplication, remote mappings, and the `cudaMemAdvise` policies
//! (paper §II-A/§II-B).
//!
//! This is the component whose hidden data movement the paper's
//! anti-patterns describe: alternating CPU/GPU accesses bounce pages back
//! and forth here, and every bounce costs a fault plus a page transfer.

use crate::alloc::HEAP_BASE;
use crate::gpumem::GpuMemory;
use crate::platform::Platform;
use crate::stats::Stats;
use crate::types::{Device, DeviceSet, MemAdvise};

/// Per-page coherence and advice state.
#[derive(Debug, Clone)]
pub struct PageState {
    /// Whether the page belongs to a `cudaMallocManaged` allocation (only
    /// managed pages participate in UM paging).
    pub managed: bool,
    /// Device holding the authoritative copy.
    pub owner: Device,
    /// Devices holding a valid copy (always includes `owner`).
    pub copies: DeviceSet,
    /// Devices with a remote mapping established (access without
    /// migration, at interconnect word cost).
    pub mapped: DeviceSet,
    /// `cudaMemAdviseSetReadMostly` in effect.
    pub read_mostly: bool,
    /// `cudaMemAdviseSetPreferredLocation` target, if set.
    pub preferred: Option<Device>,
    /// Devices named by `cudaMemAdviseSetAccessedBy`.
    pub accessed_by: DeviceSet,
}

impl Default for PageState {
    fn default() -> Self {
        PageState {
            managed: false,
            owner: Device::Cpu,
            copies: DeviceSet::single(Device::Cpu),
            mapped: DeviceSet::EMPTY,
            read_mostly: false,
            preferred: None,
            accessed_by: DeviceSet::EMPTY,
        }
    }
}

/// Outcome of one driver access, for the caller's accounting.
///
/// The serial cost is decomposed into the buckets a profiler charges to
/// distinct event kinds; [`AccessOutcome::serial_ns`] sums them back into
/// the single charge the machine applies to the clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessOutcome {
    /// Fault-service overhead: fault handling latency plus any mapping
    /// establishment or remote word transfer done *while servicing the
    /// fault* (not the page payload itself).
    pub fault_service_ns: f64,
    /// Page payload movement: the transfer part of a migration or a
    /// ReadMostly duplication.
    pub transfer_ns: f64,
    /// Remote word access over an already-established mapping (no fault).
    pub remote_ns: f64,
    /// Invalidating duplicated copies on a write.
    pub invalidate_ns: f64,
    /// Writing dirty evicted pages back to the host.
    pub evict_writeback_ns: f64,
    /// The access faulted.
    pub fault: bool,
    /// The access was served through a remote mapping.
    pub remote: bool,
    /// The access migrated the page.
    pub migrated: bool,
    /// The access duplicated a ReadMostly page into the accessor.
    pub duplicated: bool,
    /// Duplicated copies invalidated by this write.
    pub invalidations: u32,
    /// Pages evicted from GPU memory to make room.
    pub evictions: u32,
    /// Dirty evicted pages written back to the host.
    pub writeback_pages: u32,
    /// Bytes written back to the host by those evictions (dirty pages).
    pub evicted_bytes: u64,
}

impl AccessOutcome {
    /// Total serial (non-parallelizable) cost in nanoseconds.
    pub fn serial_ns(&self) -> f64 {
        self.fault_service_ns
            + self.transfer_ns
            + self.remote_ns
            + self.invalidate_ns
            + self.evict_writeback_ns
    }

    fn absorb_eviction(&mut self, ev: EvictOutcome) {
        self.evict_writeback_ns += ev.cost_ns;
        self.evictions += ev.pages;
        self.writeback_pages += ev.writeback_pages;
        self.evicted_bytes += ev.writeback_bytes;
    }
}

/// What making a page resident on a GPU evicted along the way.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvictOutcome {
    /// Serial cost of the writebacks.
    pub cost_ns: f64,
    /// Pages evicted (dirty or clean).
    pub pages: u32,
    /// Dirty subset migrated back to the host.
    pub writeback_pages: u32,
    /// Bytes those writebacks moved.
    pub writeback_bytes: u64,
}

/// Outcome of a `cudaMemPrefetchAsync`: the pages moved, the evictions the
/// destination had to make, and the costs of both.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefetchOutcome {
    /// Transfer cost of the prefetched pages themselves.
    pub transfer_ns: f64,
    /// Writeback cost of evictions forced at the destination.
    pub evict_writeback_ns: f64,
    /// Pages the prefetch actually moved (each counted as a migration).
    pub pages: u32,
    /// Bytes those pages moved.
    pub bytes_moved: u64,
    /// Pages evicted at the destination to make room.
    pub evictions: u32,
    /// Dirty evicted subset written back to the host.
    pub writeback_pages: u32,
    /// Bytes those writebacks moved.
    pub writeback_bytes: u64,
}

impl PrefetchOutcome {
    /// Total serial cost to schedule on the stream.
    pub fn cost_ns(&self) -> f64 {
        self.transfer_ns + self.evict_writeback_ns
    }
}

/// The driver: a dense page table covering the bump-allocated heap.
pub struct UmDriver {
    page_size: u64,
    base_page: u64,
    pages: Vec<PageState>,
}

impl UmDriver {
    pub fn new(page_size: u64) -> Self {
        UmDriver {
            page_size,
            base_page: HEAP_BASE / page_size,
            pages: Vec::new(),
        }
    }

    #[inline]
    fn idx(&self, page: u64) -> usize {
        debug_assert!(page >= self.base_page, "page below heap base");
        (page - self.base_page) as usize
    }

    /// Register the pages of a fresh allocation. Managed pages start owned
    /// by the CPU (the allocating side populates them on first touch).
    pub fn register_alloc(&mut self, base: u64, size: u64, managed: bool) {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        let need = self.idx(last) + 1;
        if self.pages.len() < need {
            self.pages.resize_with(need, PageState::default);
        }
        for p in first..=last {
            let i = self.idx(p);
            self.pages[i] = PageState {
                managed,
                ..PageState::default()
            };
        }
    }

    /// Release page state when an allocation is freed; resident copies are
    /// dropped from device memory.
    pub fn release_range(&mut self, base: u64, size: u64, gpus: &mut [GpuMemory]) {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        for p in first..=last {
            let i = self.idx(p);
            if i < self.pages.len() {
                for (g, gpu) in gpus.iter_mut().enumerate() {
                    if self.pages[i].copies.contains(Device::Gpu(g as u8)) {
                        gpu.release(p);
                    }
                }
                self.pages[i] = PageState::default();
            }
        }
    }

    /// Inspect a page's state (test/diagnostic use).
    pub fn state(&self, page: u64) -> &PageState {
        &self.pages[self.idx(page)]
    }

    /// Apply `cudaMemAdvise` to an address range (must be managed — the
    /// caller validates the allocation kind).
    pub fn advise(&mut self, base: u64, size: u64, advice: MemAdvise) {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        for p in first..=last {
            let i = self.idx(p);
            let st = &mut self.pages[i];
            match advice {
                MemAdvise::SetReadMostly => st.read_mostly = true,
                MemAdvise::UnsetReadMostly => {
                    st.read_mostly = false;
                    // Collapse duplicated copies back to the owner.
                    st.copies = DeviceSet::single(st.owner);
                }
                MemAdvise::SetPreferredLocation(d) => st.preferred = Some(d),
                MemAdvise::UnsetPreferredLocation => st.preferred = None,
                MemAdvise::SetAccessedBy(d) => {
                    st.accessed_by.insert(d);
                    // "Causes the data to be always mapped in the specified
                    // processor's page tables" (§II-B).
                    if !st.copies.contains(d) {
                        st.mapped.insert(d);
                    }
                }
                MemAdvise::UnsetAccessedBy(d) => {
                    st.accessed_by.remove(d);
                    st.mapped.remove(d);
                }
            }
        }
    }

    /// Handle one word access by `dev` to managed `page`.
    ///
    /// Returns the serial cost of whatever the driver had to do; the local
    /// word cost itself is charged by the machine.
    pub fn access(
        &mut self,
        pf: &Platform,
        gpus: &mut [GpuMemory],
        stats: &mut Stats,
        dev: Device,
        page: u64,
        write: bool,
    ) -> AccessOutcome {
        let i = self.idx(page);
        let st = &self.pages[i];
        debug_assert!(st.managed, "driver access to unmanaged page");

        // Fast path: local copy, no coherence action needed.
        if st.copies.contains(dev) && (!write || st.copies.len() == 1) {
            if write && st.owner != dev {
                self.pages[i].owner = dev;
            }
            return AccessOutcome::default();
        }

        let mut out = AccessOutcome::default();

        if st.copies.contains(dev) && write {
            // Write to a read-duplicated page: invalidate all other copies
            // ("only the page where the write occurred will be valid").
            let (cost, n) = self.invalidate_others(i, page, dev, pf, gpus, stats);
            out.invalidate_ns += cost;
            out.invalidations = n;
            return out;
        }

        if st.mapped.contains(dev) {
            // Established remote mapping: access over the interconnect,
            // no fault, no migration.
            out.remote_ns += pf.remote_word_ns;
            out.remote = true;
            stats.remote_accesses += 1;
            return out;
        }

        // Fault path.
        out.fault = true;
        match dev {
            Device::Cpu => stats.cpu_faults += 1,
            Device::Gpu(_) => stats.gpu_faults += 1,
        }

        if !write && st.read_mostly {
            // Duplicate a read-only copy into the faulting processor.
            out.fault_service_ns += pf.fault_ns;
            out.transfer_ns += pf.xfer_ns(pf.page_size);
            stats.duplications += 1;
            out.duplicated = true;
            if let Device::Gpu(g) = dev {
                let ev = self.make_resident(i, page, g, pf, gpus, stats);
                out.absorb_eviction(ev);
            }
            let st = &mut self.pages[i];
            st.copies.insert(dev);
            st.mapped.remove(dev);
            return out;
        }

        let preferred_elsewhere = match st.preferred {
            Some(p) => p != dev && st.copies.contains(p),
            None => false,
        };
        if preferred_elsewhere {
            // "The faulting processor will try to directly establish a
            // mapping to the region without causing page migration."
            out.fault_service_ns += pf.fault_ns * 0.25 + pf.map_ns + pf.remote_word_ns;
            out.remote = true;
            stats.remote_accesses += 1;
            self.pages[i].mapped.insert(dev);
            return out;
        }

        if dev == Device::Cpu && pf.cpu_direct_access_gpu && st.owner.is_gpu() {
            // NVLink coherence: the CPU maps GPU-resident pages instead of
            // pulling them back (the key platform difference behind the
            // paper's Fig. 6 IBM results).
            out.fault_service_ns += pf.map_ns + pf.remote_word_ns;
            out.remote = true;
            stats.remote_accesses += 1;
            self.pages[i].mapped.insert(Device::Cpu);
            return out;
        }

        // Default policy: migrate the page to the faulting processor.
        // `page_migration_ns` = fault service + payload transfer; keep the
        // split visible for attribution.
        out.fault_service_ns += pf.fault_ns;
        out.transfer_ns += pf.page_migration_ns() - pf.fault_ns;
        out.migrated = true;
        stats.bytes_migrated += pf.page_size;
        if dev.is_gpu() {
            stats.migrations_h2d += 1;
        } else {
            stats.migrations_d2h += 1;
        }
        // Drop residency of copies that are going away.
        let old_copies = self.pages[i].copies;
        for d in old_copies.iter() {
            if let Device::Gpu(g) = d {
                if d != dev {
                    gpus[g as usize].release(page);
                }
            }
        }
        if let Device::Gpu(g) = dev {
            let ev = self.make_resident(i, page, g, pf, gpus, stats);
            out.absorb_eviction(ev);
        }
        let st = &mut self.pages[i];
        st.owner = dev;
        st.copies = DeviceSet::single(dev);
        st.mapped.remove(dev);
        // AccessedBy devices keep their mappings across migration.
        let accessed_by = st.accessed_by;
        for d in accessed_by.iter() {
            if d != dev {
                self.pages[i].mapped.insert(d);
            }
        }
        out
    }

    /// Handle `words` consecutive word accesses by `dev` to the same
    /// managed `page` — the bulk fast path. The first word goes through
    /// [`UmDriver::access`] in full; after it the page is in a steady
    /// state for this device (a free local hit, or a remote access over
    /// the mapping the first word established), so the whole tail is
    /// resolved here in O(1) instead of re-probing the page map per
    /// word. Returns the first word's outcome plus the serial cost of
    /// *each* tail word (0 for local hits, `remote_word_ns` for remote
    /// mappings); tail stats are already applied.
    #[allow(clippy::too_many_arguments)]
    pub fn access_range(
        &mut self,
        pf: &Platform,
        gpus: &mut [GpuMemory],
        stats: &mut Stats,
        dev: Device,
        page: u64,
        write: bool,
        words: u64,
    ) -> (AccessOutcome, f64) {
        let out = self.access(pf, gpus, stats, dev, page, write);
        if words <= 1 {
            return (out, 0.0);
        }
        let st = self.state(page);
        if st.copies.contains(dev) {
            (out, 0.0)
        } else {
            debug_assert!(st.mapped.contains(dev), "steady state is local or mapped");
            stats.remote_accesses += words - 1;
            (out, pf.remote_word_ns)
        }
    }

    /// Invalidate all copies of page `i` other than `keeper`'s. Returns
    /// the serial cost and the number of copies invalidated.
    fn invalidate_others(
        &mut self,
        i: usize,
        page: u64,
        keeper: Device,
        pf: &Platform,
        gpus: &mut [GpuMemory],
        stats: &mut Stats,
    ) -> (f64, u32) {
        let mut cost = 0.0;
        let mut count = 0u32;
        let copies = self.pages[i].copies;
        for d in copies.iter() {
            if d == keeper {
                continue;
            }
            cost += pf.invalidate_ns;
            stats.invalidations += 1;
            count += 1;
            if let Device::Gpu(g) = d {
                gpus[g as usize].release(page);
            }
        }
        let st = &mut self.pages[i];
        st.copies = DeviceSet::single(keeper);
        st.owner = keeper;
        (cost, count)
    }

    /// Insert `page` into GPU `g`'s memory, handling any evictions that
    /// makes necessary.
    fn make_resident(
        &mut self,
        _i: usize,
        page: u64,
        g: u8,
        pf: &Platform,
        gpus: &mut [GpuMemory],
        stats: &mut Stats,
    ) -> EvictOutcome {
        let evicted = gpus[g as usize].insert(page);
        let mut out = EvictOutcome::default();
        for e in evicted {
            let ei = self.idx(e);
            let st = &mut self.pages[ei];
            stats.evictions += 1;
            out.pages += 1;
            if st.owner == Device::Gpu(g) {
                // Dirty page: write back to host.
                out.cost_ns += pf.xfer_ns(pf.page_size);
                out.writeback_pages += 1;
                out.writeback_bytes += pf.page_size;
                stats.bytes_evicted += pf.page_size;
                stats.migrations_d2h += 1;
                stats.bytes_migrated += pf.page_size;
                st.owner = Device::Cpu;
                st.copies = DeviceSet::single(Device::Cpu);
            } else {
                // Clean duplicated copy: just drop it.
                st.copies.remove(Device::Gpu(g));
                if st.copies.is_empty() {
                    st.copies = DeviceSet::single(st.owner);
                }
            }
        }
        out
    }

    /// `cudaMemPrefetchAsync` semantics: proactively migrate the pages of
    /// a range to `dst` without fault latency. Returns what moved and what
    /// it cost so the caller can schedule it on a stream and report it.
    pub fn prefetch(
        &mut self,
        pf: &Platform,
        gpus: &mut [GpuMemory],
        stats: &mut Stats,
        base: u64,
        size: u64,
        dst: Device,
    ) -> PrefetchOutcome {
        let first = base / self.page_size;
        let last = (base + size.max(1) - 1) / self.page_size;
        let mut out = PrefetchOutcome::default();
        for page in first..=last {
            let i = self.idx(page);
            let st = &self.pages[i];
            if !st.managed || st.copies.contains(dst) {
                continue;
            }
            out.transfer_ns += pf.xfer_ns(pf.page_size);
            out.pages += 1;
            out.bytes_moved += pf.page_size;
            stats.bytes_migrated += pf.page_size;
            if dst.is_gpu() {
                stats.migrations_h2d += 1;
            } else {
                stats.migrations_d2h += 1;
            }
            let old_copies = self.pages[i].copies;
            for d in old_copies.iter() {
                if let Device::Gpu(g) = d {
                    if d != dst {
                        gpus[g as usize].release(page);
                    }
                }
            }
            if let Device::Gpu(g) = dst {
                let ev = self.make_resident(i, page, g, pf, gpus, stats);
                out.evict_writeback_ns += ev.cost_ns;
                out.evictions += ev.pages;
                out.writeback_pages += ev.writeback_pages;
                out.writeback_bytes += ev.writeback_bytes;
            }
            let st = &mut self.pages[i];
            st.owner = dst;
            st.copies = DeviceSet::single(dst);
            st.mapped.remove(dst);
            let accessed_by = st.accessed_by;
            for d in accessed_by.iter() {
                if d != dst {
                    self.pages[i].mapped.insert(d);
                }
            }
        }
        out
    }

    /// Page size this driver was configured with.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::intel_pascal;

    struct Fixture {
        pf: Platform,
        drv: UmDriver,
        gpus: Vec<GpuMemory>,
        stats: Stats,
        base: u64,
    }

    fn fixture() -> Fixture {
        fixture_with_gpu_pages(1024)
    }

    fn fixture_with_gpu_pages(gpu_pages: u64) -> Fixture {
        let pf = intel_pascal();
        let mut drv = UmDriver::new(pf.page_size);
        let gpus = vec![GpuMemory::new(gpu_pages * pf.page_size, pf.page_size)];
        let base = HEAP_BASE;
        drv.register_alloc(base, 4 * pf.page_size, true);
        Fixture {
            pf,
            drv,
            gpus,
            stats: Stats::default(),
            base,
        }
    }

    impl Fixture {
        fn page(&self, n: u64) -> u64 {
            self.base / self.pf.page_size + n
        }
        fn access(&mut self, dev: Device, page: u64, write: bool) -> AccessOutcome {
            self.drv
                .access(&self.pf, &mut self.gpus, &mut self.stats, dev, page, write)
        }
    }

    const GPU: Device = Device::GPU0;

    #[test]
    fn first_cpu_touch_is_free_gpu_touch_faults() {
        let mut f = fixture();
        let p = f.page(0);
        let o = f.access(Device::Cpu, p, true);
        assert_eq!(o, AccessOutcome::default());
        let o = f.access(GPU, p, false);
        assert!(o.fault && o.migrated);
        assert_eq!(f.stats.gpu_faults, 1);
        assert_eq!(f.stats.migrations_h2d, 1);
        assert_eq!(f.drv.state(p).owner, GPU);
    }

    #[test]
    fn repeated_gpu_access_hits_after_migration() {
        let mut f = fixture();
        let p = f.page(0);
        f.access(GPU, p, false);
        let o = f.access(GPU, p, false);
        assert_eq!(o, AccessOutcome::default());
        assert_eq!(f.stats.gpu_faults, 1);
    }

    #[test]
    fn alternating_accesses_ping_pong_pages() {
        // The paper's anti-pattern #1: each side's touch migrates the page.
        let mut f = fixture();
        let p = f.page(0);
        for _ in 0..5 {
            f.access(GPU, p, false);
            f.access(Device::Cpu, p, true);
        }
        assert_eq!(f.stats.gpu_faults, 5);
        assert_eq!(f.stats.cpu_faults, 5);
        assert_eq!(f.stats.migrations(), 10);
    }

    #[test]
    fn read_mostly_duplicates_and_stops_ping_pong() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::SetReadMostly);
        f.access(Device::Cpu, p, false);
        let o = f.access(GPU, p, false);
        assert!(o.fault);
        assert_eq!(f.stats.duplications, 1);
        // Both now read without faults.
        assert_eq!(f.access(Device::Cpu, p, false), AccessOutcome::default());
        assert_eq!(f.access(GPU, p, false), AccessOutcome::default());
        assert!(f.drv.state(p).copies.contains(Device::Cpu));
        assert!(f.drv.state(p).copies.contains(GPU));
    }

    #[test]
    fn write_to_read_mostly_invalidates_other_copies() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::SetReadMostly);
        f.access(Device::Cpu, p, false);
        f.access(GPU, p, false); // duplicate
        let o = f.access(Device::Cpu, p, true); // CPU write invalidates GPU copy
        assert!(o.serial_ns() > 0.0);
        assert_eq!(o.serial_ns(), o.invalidate_ns);
        assert_eq!(f.stats.invalidations, 1);
        assert_eq!(f.drv.state(p).copies.len(), 1);
        assert_eq!(f.drv.state(p).owner, Device::Cpu);
        // GPU read must re-duplicate.
        let o = f.access(GPU, p, false);
        assert!(o.fault);
        assert_eq!(f.stats.duplications, 2);
    }

    #[test]
    fn preferred_location_maps_instead_of_migrating() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv.advise(
            f.base,
            f.pf.page_size,
            MemAdvise::SetPreferredLocation(Device::Cpu),
        );
        f.access(Device::Cpu, p, true);
        let o = f.access(GPU, p, false);
        assert!(o.fault && o.remote && !o.migrated);
        assert_eq!(f.drv.state(p).owner, Device::Cpu);
        // Subsequent GPU accesses go remote without faulting.
        let o = f.access(GPU, p, false);
        assert!(o.remote && !o.fault);
        assert_eq!(f.stats.remote_accesses, 2);
    }

    #[test]
    fn accessed_by_establishes_mapping_without_migration() {
        let mut f = fixture();
        let p = f.page(0);
        f.access(Device::Cpu, p, true);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::SetAccessedBy(GPU));
        let o = f.access(GPU, p, false);
        assert!(o.remote && !o.fault && !o.migrated);
        assert_eq!(f.drv.state(p).owner, Device::Cpu);
    }

    #[test]
    fn accessed_by_mapping_survives_migration() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv.advise(
            f.base,
            f.pf.page_size,
            MemAdvise::SetAccessedBy(Device::Cpu),
        );
        // GPU write migrates the page to the GPU...
        let o = f.access(GPU, p, true);
        assert!(o.migrated);
        // ...but the CPU keeps a mapping, so it reads remotely, no fault.
        let o = f.access(Device::Cpu, p, false);
        assert!(o.remote && !o.fault);
    }

    #[test]
    fn nvlink_cpu_reads_gpu_pages_remotely() {
        let mut f = fixture();
        f.pf = crate::platform::power9_volta();
        let p = f.page(0);
        f.access(GPU, p, true); // GPU-owned now
        let o = f.access(Device::Cpu, p, false);
        assert!(o.remote && !o.migrated);
        assert_eq!(f.drv.state(p).owner, GPU);
        // Second CPU read uses the established mapping without a fault.
        let o = f.access(Device::Cpu, p, false);
        assert!(o.remote && !o.fault);
    }

    #[test]
    fn pcie_cpu_touch_pulls_page_back() {
        let mut f = fixture();
        let p = f.page(0);
        f.access(GPU, p, true);
        let o = f.access(Device::Cpu, p, false);
        assert!(o.migrated);
        assert_eq!(f.drv.state(p).owner, Device::Cpu);
    }

    #[test]
    fn oversubscription_evicts_and_thrashes() {
        let mut f = fixture_with_gpu_pages(2);
        // 4 pages of data, 2 pages of device memory.
        for n in 0..4 {
            let p = f.page(n);
            f.access(GPU, p, true);
        }
        assert!(f.stats.evictions >= 2);
        // Touching page 0 again faults: it was evicted.
        let p0 = f.page(0);
        let o = f.access(GPU, p0, false);
        assert!(o.fault);
        // Evicted dirty pages were written back to the host.
        assert!(f.stats.migrations_d2h >= 2);
    }

    #[test]
    fn unset_read_mostly_collapses_copies() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::SetReadMostly);
        f.access(Device::Cpu, p, false);
        f.access(GPU, p, false);
        assert_eq!(f.drv.state(p).copies.len(), 2);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::UnsetReadMostly);
        assert_eq!(f.drv.state(p).copies.len(), 1);
        assert!(!f.drv.state(p).read_mostly);
    }

    #[test]
    fn prefetch_moves_pages_without_faults() {
        let mut f = fixture();
        let p = f.page(0);
        f.access(Device::Cpu, p, true);
        let (base, size) = (f.base, 2 * f.pf.page_size);
        let po = f
            .drv
            .prefetch(&f.pf, &mut f.gpus, &mut f.stats, base, size, GPU);
        assert!(po.cost_ns() > 0.0);
        assert_eq!(po.pages, 2);
        assert_eq!(po.bytes_moved, 2 * f.pf.page_size);
        assert_eq!(f.stats.gpu_faults, 0, "prefetch must not fault");
        assert_eq!(f.drv.state(p).owner, GPU);
        // Subsequent GPU access is a clean hit.
        let o = f.access(GPU, p, false);
        assert_eq!(o, AccessOutcome::default());
        // Prefetching a range already at the destination is free.
        let po2 = f
            .drv
            .prefetch(&f.pf, &mut f.gpus, &mut f.stats, base, size, GPU);
        assert_eq!(po2, PrefetchOutcome::default());
    }

    #[test]
    fn outcome_reports_duplication_invalidation_and_eviction_detail() {
        let mut f = fixture();
        let p = f.page(0);
        f.drv
            .advise(f.base, f.pf.page_size, MemAdvise::SetReadMostly);
        f.access(Device::Cpu, p, false);
        let o = f.access(GPU, p, false);
        assert!(o.duplicated && o.fault);
        let o = f.access(Device::Cpu, p, true);
        assert_eq!(o.invalidations, 1);
        assert!(!o.duplicated);

        // Oversubscribe: outcome reports the evictions it forced.
        let mut f = fixture_with_gpu_pages(1);
        f.access(GPU, f.page(0), true);
        let o = f.access(GPU, f.page(1), true);
        assert_eq!(o.evictions, 1);
        assert_eq!(o.writeback_pages, 1);
        assert_eq!(o.evicted_bytes, f.pf.page_size, "dirty page written back");
        assert!(o.evict_writeback_ns > 0.0);
    }

    #[test]
    fn access_range_matches_per_word_loop() {
        // The bulk entry point must leave stats and total serial cost
        // exactly where the per-word loop would, across migration,
        // remote-mapping, and read-duplication steady states.
        let scenarios: &[fn(&mut Fixture)] = &[
            |_| {},
            |f| {
                let (base, sz) = (f.base, f.pf.page_size);
                f.drv
                    .advise(base, sz, MemAdvise::SetPreferredLocation(Device::Cpu));
                f.access(Device::Cpu, f.page(0), true);
            },
            |f| {
                let (base, sz) = (f.base, f.pf.page_size);
                f.drv.advise(base, sz, MemAdvise::SetReadMostly);
                f.access(Device::Cpu, f.page(0), false);
            },
        ];
        for (dev, write) in [(GPU, false), (GPU, true), (Device::Cpu, false)] {
            for setup in scenarios {
                let mut a = fixture();
                setup(&mut a);
                let mut b = fixture();
                setup(&mut b);
                let p = a.page(0);
                let words = 9u64;
                let mut serial_a = 0.0;
                for _ in 0..words {
                    serial_a += a.access(dev, p, write).serial_ns();
                }
                let (out, tail) =
                    b.drv
                        .access_range(&b.pf, &mut b.gpus, &mut b.stats, dev, p, write, words);
                let serial_b = out.serial_ns() + tail * (words - 1) as f64;
                assert_eq!(a.stats, b.stats);
                assert_eq!(serial_a, serial_b);
            }
        }
    }

    #[test]
    fn release_range_resets_state() {
        let mut f = fixture();
        let p = f.page(0);
        f.access(GPU, p, true);
        let (base, size) = (f.base, 4 * f.pf.page_size);
        f.drv.release_range(base, size, &mut f.gpus);
        assert!(!f.gpus[0].resident(p));
        assert_eq!(f.drv.state(p).owner, Device::Cpu);
    }
}
