//! Model-based property tests: the simulated address space and machine
//! behave like a reference HashMap memory under arbitrary operation
//! sequences, and simulated time/counters are monotone.

use std::collections::HashMap;

use proptest::prelude::*;

use hetsim::{platform, AllocKind, Machine, TPtr};

#[derive(Debug, Clone)]
enum Op {
    Alloc(u16),
    Free(u8),
    Write(u8, u16, i64),
    Read(u8, u16),
    KernelWrite(u8, u16, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..200).prop_map(Op::Alloc),
        any::<u8>().prop_map(Op::Free),
        (any::<u8>(), any::<u16>(), any::<i64>()).prop_map(|(a, i, v)| Op::Write(a, i, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(a, i)| Op::Read(a, i)),
        (any::<u8>(), any::<u16>(), any::<i64>()).prop_map(|(a, i, v)| Op::KernelWrite(a, i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every value read back equals what the model says; time and the
    /// access counters never decrease.
    #[test]
    fn machine_matches_reference_memory(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut m = Machine::new(platform::intel_pascal());
        // Model: per-allocation value maps.
        let mut live: Vec<(TPtr<i64>, HashMap<usize, i64>)> = Vec::new();
        let mut freed: Vec<TPtr<i64>> = Vec::new();
        let mut last_time = 0.0f64;
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    let p = m.alloc_managed::<i64>(len as usize);
                    live.push((p, HashMap::new()));
                }
                Op::Free(which) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(which as usize % live.len());
                        m.free(p);
                        freed.push(p);
                    }
                }
                Op::Write(which, idx, v) => {
                    if !live.is_empty() {
                        let sel = which as usize % live.len();
                        let (p, model) = &mut live[sel];
                        let i = idx as usize % p.len;
                        m.st(*p, i, v);
                        model.insert(i, v);
                    }
                }
                Op::KernelWrite(which, idx, v) => {
                    if !live.is_empty() {
                        let sel = which as usize % live.len();
                        let (p, model) = &mut live[sel];
                        let i = idx as usize % p.len;
                        let p = *p;
                        m.launch("w", 1, |_, m| m.st(p, i, v));
                        model.insert(i, v);
                    }
                }
                Op::Read(which, idx) => {
                    if !live.is_empty() {
                        let sel = which as usize % live.len();
                        let (p, model) = &live[sel];
                        let i = idx as usize % p.len;
                        let got = m.ld(*p, i);
                        let want = model.get(&i).copied().unwrap_or(0);
                        prop_assert_eq!(got, want, "mismatch at {:?}[{}]", p, i);
                    }
                }
            }
            let now = m.elapsed_ns();
            prop_assert!(now >= last_time, "time went backwards");
            last_time = now;
        }
        // Freed memory faults on access.
        for p in freed {
            prop_assert!(m.try_read_scalar::<i64>(p.addr).is_err());
        }
        // Counter sanity.
        let s = &m.stats;
        prop_assert_eq!(s.migrations_h2d + s.migrations_d2h, s.migrations());
        prop_assert!(s.allocs >= s.frees);
    }

    /// Kind restrictions hold under random kinds: the host can touch
    /// Managed and Host memory only; the GPU Managed and Device only.
    #[test]
    fn access_paths_respect_allocation_kind(kind_sel in 0u8..3, from_gpu in any::<bool>()) {
        let kind = match kind_sel {
            0 => AllocKind::Managed,
            1 => AllocKind::Device(0),
            _ => AllocKind::Host,
        };
        let mut m = Machine::new(platform::intel_pascal());
        let base = m.try_malloc(64, kind).unwrap();
        let result = if from_gpu {
            let mut r = Ok(0.0);
            m.launch("probe", 1, |_, m| {
                r = m.try_read_scalar::<f64>(base);
            });
            r
        } else {
            m.try_read_scalar::<f64>(base)
        };
        let should_work = matches!(
            (kind, from_gpu),
            (AllocKind::Managed, _) | (AllocKind::Host, false) | (AllocKind::Device(_), true)
        );
        prop_assert_eq!(result.is_ok(), should_work, "kind {:?} gpu={}", kind, from_gpu);
    }
}
