//! Multi-GPU behaviour: managed pages migrating between two GPUs, the
//! `cudaMemAdviseSetAccessedBy` use case the paper calls out for systems
//! "containing multiple GPUs with peer-to-peer access enabled" (§II-B),
//! and device-to-device copies.

use hetsim::{platform, CopyKind, Device, Machine, MemAdvise};

const GPU0: Device = Device::Gpu(0);
const GPU1: Device = Device::Gpu(1);

fn two_gpu_machine() -> Machine {
    Machine::with_gpus(platform::intel_pascal(), 2)
}

/// Launch a single-thread kernel on a specific GPU by temporarily using
/// kernel_begin/kernel_finish (the public seam the interpreter uses).
/// The default `launch` always targets GPU 0, so exercise GPU 1 through
/// the driver directly via managed accesses from a kernel context.
#[test]
fn managed_page_bounces_between_gpus() {
    let mut m = two_gpu_machine();
    let p = m.alloc_managed::<f64>(8);
    m.st(p, 0, 1.0); // CPU-owned

    // GPU 0 touches it: migrates there.
    m.launch("g0", 1, |_, m| {
        let _ = m.ld(p, 0);
    });
    assert_eq!(m.page_state(p.addr).owner, GPU0);

    // The CPU pulls it back (PCIe system), then GPU 0 again.
    let _ = m.ld(p, 0);
    assert_eq!(m.page_state(p.addr).owner, Device::Cpu);
    m.launch("g0b", 1, |_, m| m.st(p, 0, 2.0));
    assert_eq!(m.page_state(p.addr).owner, GPU0);
    assert!(m.stats.migrations() >= 3);
}

#[test]
fn accessed_by_keeps_second_gpu_mapped() {
    let mut m = two_gpu_machine();
    let p = m.alloc_managed::<f64>(8);
    m.st(p, 0, 1.0);
    // Advise: GPU 1 always keeps a mapping.
    m.mem_advise(p, MemAdvise::SetAccessedBy(GPU1));
    // GPU 0 takes the page.
    m.launch("g0", 1, |_, m| m.st(p, 0, 2.0));
    assert_eq!(m.page_state(p.addr).owner, GPU0);
    // GPU 1's mapping survived the migration (§II-B: "the mapping will
    // be updated if the data is migrated").
    assert!(m.page_state(p.addr).mapped.contains(GPU1));
}

#[test]
fn device_to_device_copy_between_gpus() {
    let mut m = two_gpu_machine();
    let h = m.alloc_host::<i32>(64);
    let d0 = m.alloc_device::<i32>(64);
    // A second device buffer (GPU 1 allocations share the same address
    // space; kind Device(0) is GPU 0 — emulate GPU 1's buffer with a raw
    // allocation of the same kind family).
    let d1 = m.alloc_device::<i32>(64);
    for i in 0..64 {
        m.poke(h, i, i as i32);
    }
    m.memcpy(d0, h, 64, CopyKind::HostToDevice);
    let t0 = m.now();
    m.memcpy(d1, d0, 64, CopyKind::DeviceToDevice);
    let d2d = m.now() - t0;
    // Peer copies do not cross the host interconnect: cheaper than the
    // H2D copy's fixed latency.
    assert!(d2d < m.platform().memcpy_latency_ns);
    assert_eq!(m.peek(d1, 63), 63);
    assert_eq!(m.stats.memcpy_h2d, 1);
}

#[test]
fn per_gpu_residency_is_tracked_independently() {
    // Two machines with different GPU counts behave identically for
    // single-GPU programs.
    let run = |gpus: usize| {
        let mut m = Machine::with_gpus(platform::intel_pascal(), gpus);
        let p = m.alloc_managed::<f64>(1024);
        for i in 0..1024 {
            m.st(p, i, i as f64);
        }
        m.launch("k", 1024, |t, m| {
            let _ = m.ld(p, t);
        });
        (m.elapsed_ns(), m.stats.clone())
    };
    let (t1, s1) = run(1);
    let (t2, s2) = run(2);
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
}
