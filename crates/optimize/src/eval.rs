//! Candidate evaluation: run a target under a [`Plan`] on a fresh
//! deterministic [`Machine`] and summarize the result.
//!
//! Every evaluation produces two things:
//!
//! * a *cost view* — simulated time, counters, and a [`RunDigest`] of the
//!   attributed profile (the evidence column of the optimizer report);
//! * a *results view* — a [`ResultsFingerprint`] hashing everything the
//!   program can observe (checksums / exit code / plain stdout, plus the
//!   final bytes of every traced allocation). Placement hints must never
//!   change the results view; the search rejects any candidate whose
//!   fingerprint differs from the baseline's.
//!
//! The machine is *not* `Send`, so evaluations never share one: each call
//! builds its own machine from the (Send + Sync) [`Platform`], which is
//! what lets the worker pool in `xplacer_core::par` parallelize safely.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hetsim::{AllocKind, EventLog, Machine, Platform, Stats, DEFAULT_STREAM};
use xplacer_core::{enumerate_candidates, Plan, PlanAction, PlanItem};
use xplacer_instrument::placement::{alloc_sites, AllocSite, SiteKind, SitePlan, SPLIT_SUFFIX};
use xplacer_interp::{run_source, run_source_on};
use xplacer_lang::ast::{Func, Item, Program, Stmt, XplPragma};
use xplacer_obs::{ProfileReport, RunDigest};

/// Event-ring capacity for optimizer evaluations. Smaller than the CLI
/// profiler's ring: candidates only need enough attribution for the
/// evidence diff, and every worker owns one.
const OPT_RING_CAPACITY: usize = 1 << 20;

/// Everything the program can observe about its own execution. Two runs
/// with equal fingerprints computed the same results; placement hints may
/// only change *when pages move*, never this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultsFingerprint {
    /// Workloads: the self-check value. Programs: exit code and a hash
    /// of the plain (uninstrumented) stdout.
    pub check: String,
    /// Final memory contents per traced allocation: `hash/size`, or
    /// `"freed"` for allocations released before the end of the run.
    pub mem: BTreeMap<String, String>,
}

/// The outcome of evaluating one plan.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Simulated wall time of the run.
    pub simulated_ns: f64,
    /// Simulator counters (faults, migrations, traffic).
    pub stats: Stats,
    /// Profile digest, diffable against the baseline's for evidence.
    pub digest: RunDigest,
    /// The results view; must equal the baseline's.
    pub fingerprint: ResultsFingerprint,
}

/// The searchable candidate space, derived from the baseline trace.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// Single-action candidates the search combines into plans.
    pub items: Vec<PlanItem>,
    /// Enumerated candidates dropped because the target cannot apply
    /// them (e.g. `Split` without a rewritable source, or an allocation
    /// that maps to no unconditional source site).
    pub skipped: usize,
    /// For program targets: allocation base → allocation-site index in
    /// `main`, used to turn trace-level plans into source rewrites.
    pub site_of_base: BTreeMap<u64, usize>,
}

/// FNV-1a, the repo's stock dependency-free hash.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Apply a plan's actions to a live machine (workload path). `Split`
/// cannot be expressed as runtime hints — the caller filters it out of
/// workload candidate sets, so hitting one here is an error.
fn apply_plan_to_machine(m: &mut Machine, plan: &Plan) -> Result<(), String> {
    for item in plan.items() {
        match item.action {
            PlanAction::Advise(a) => m
                .try_mem_advise(item.base, item.size, a)
                .map_err(|e| format!("{item}: {e}"))?,
            PlanAction::Prefetch(d) => {
                m.try_mem_prefetch(item.base, item.size, d, DEFAULT_STREAM)
                    .map_err(|e| format!("{item}: {e}"))?;
                m.sync_stream(DEFAULT_STREAM);
            }
            PlanAction::Split => {
                return Err(format!(
                    "{item}: split object requires a source rewrite; \
                     it does not apply to built-in workloads"
                ))
            }
        }
    }
    Ok(())
}

fn hash_alloc(m: &mut Machine, base: u64, size: u64) -> Result<String, String> {
    let mut buf = vec![0u8; size as usize];
    m.peek_bytes(base, &mut buf)
        .map_err(|e| format!("0x{base:x}: {e}"))?;
    Ok(format!("{:016x}/{size}", fnv64(&buf)))
}

/// Evaluate `plan` against a built-in workload. When `want_candidates`
/// is set (the baseline run) the end-of-run shadow state is enumerated
/// into a [`CandidateSet`] with `Split` filtered out.
pub fn eval_workload(
    which: &str,
    pf: &Platform,
    plan: &Plan,
    want_candidates: bool,
) -> Result<(EvalOutcome, Option<CandidateSet>), String> {
    let mut m = Machine::new(pf.clone());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let log = Rc::new(RefCell::new(EventLog::with_capacity(OPT_RING_CAPACITY)));
    m.add_hook(log.clone());

    let mut apply_err: Option<String> = None;
    let (check, names) = xplacer_workloads::run_workload(&mut m, which, |m, names| {
        xplacer_workloads::register_names(&tracer, names);
        if let Err(e) = apply_plan_to_machine(m, plan) {
            apply_err.get_or_insert(e);
        }
    })?;
    if let Some(e) = apply_err {
        return Err(e);
    }

    let elapsed = m.elapsed_ns();
    let stats = m.stats.clone();

    let mut mem = BTreeMap::new();
    for (addr, name) in &names {
        let (base, size) = {
            let a = m.find_alloc(*addr).map_err(|e| format!("{name}: {e}"))?;
            (a.base, a.size)
        };
        mem.insert(name.clone(), hash_alloc(&mut m, base, size)?);
    }
    let fingerprint = ResultsFingerprint {
        check: format!("check={:016x}", check.to_bits()),
        mem,
    };

    let profile = ProfileReport::build(which, pf.name, elapsed, &log.borrow(), &names);
    let digest = RunDigest::from_profile(
        &profile,
        if plan.is_empty() {
            "baseline"
        } else {
            "candidate"
        },
    );

    let candidates = want_candidates.then(|| {
        let all = enumerate_candidates(&tracer.borrow().smt, pf);
        let total = all.len();
        let items: Vec<PlanItem> = all
            .into_iter()
            .filter(|c| c.action != PlanAction::Split)
            .collect();
        CandidateSet {
            skipped: total - items.len(),
            items,
            site_of_base: BTreeMap::new(),
        }
    });

    Ok((
        EvalOutcome {
            simulated_ns: elapsed,
            stats,
            digest,
            fingerprint,
        },
        candidates,
    ))
}

/// Remove `#pragma xpl diagnostic ...` statements from every function
/// body. A diagnostic point calls `Tracer::end_epoch`, which zeroes the
/// shadow state the candidate enumeration reads — a program that ends
/// with a `tracePrint` (most instrumented sources do) would otherwise
/// present an empty access profile and yield no candidates. The optimizer
/// wants the whole-run profile, so it evaluates a pragma-free variant;
/// program-visible behavior is unchanged (diagnostics only print in
/// instrumented runs, whose stdout is not part of the fingerprint).
fn strip_diagnostics(prog: &Program) -> Program {
    fn strip_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
        stmts
            .iter()
            .filter(|s| !matches!(s, Stmt::Pragma(XplPragma::Diagnostic { .. })))
            .map(strip_stmt)
            .collect()
    }
    fn strip_stmt(s: &Stmt) -> Stmt {
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: cond.clone(),
                then_branch: strip_stmts(then_branch),
                else_branch: strip_stmts(else_branch),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: cond.clone(),
                body: strip_stmts(body),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => Stmt::For {
                init: init.clone(),
                cond: cond.clone(),
                step: step.clone(),
                body: strip_stmts(body),
            },
            Stmt::Block(body) => Stmt::Block(strip_stmts(body)),
            other => other.clone(),
        }
    }
    Program {
        items: prog
            .items
            .iter()
            .map(|item| match item {
                Item::Func(f) => Item::Func(Func {
                    body: f.body.as_deref().map(strip_stmts),
                    ..f.clone()
                }),
                other => other.clone(),
            })
            .collect(),
    }
}

/// Map an smt serial to its source-site variable name, validating that
/// the site's allocation form matches what the trace recorded. A `None`
/// means the program uses an allocation form the site scanner does not
/// model, and serial/site alignment cannot be trusted for this entry.
fn site_var(sites: &[AllocSite], serial: u64, kind: AllocKind) -> Option<&str> {
    let s = sites.get(serial as usize)?;
    let aligned = matches!(
        (s.kind, kind),
        (SiteKind::Managed, AllocKind::Managed)
            | (SiteKind::Device, AllocKind::Device(_))
            | (SiteKind::Host, AllocKind::Host)
    );
    aligned.then_some(s.var.as_str())
}

/// Evaluate `plan` against a MiniCU program by rewriting its source
/// (advise/prefetch injection, split-object duplication), then running
/// both an instrumented pass (trace, shadow state, profile) and a plain
/// pass (program-visible stdout, which instrumentation would pollute
/// with diagnostics).
pub fn eval_program(
    name: &str,
    src: &str,
    pf: &Platform,
    plan: &Plan,
    site_of_base: &BTreeMap<u64, usize>,
    want_candidates: bool,
) -> Result<(EvalOutcome, Option<CandidateSet>), String> {
    let prog = xplacer_lang::parser::parse(src).map_err(|e| format!("{name}: {e}"))?;
    // Site indices are position-based, so the strip must happen before
    // `alloc_sites`/`apply_plan` in baseline and candidate runs alike
    // (removing pragma statements never removes or reorders allocation
    // statements, so indices stay aligned either way).
    let prog = strip_diagnostics(&prog);

    let site_plans: Vec<SitePlan> = plan
        .items()
        .iter()
        .map(|it| {
            let site = *site_of_base
                .get(&it.base)
                .ok_or_else(|| format!("{it}: allocation maps to no source site"))?;
            Ok(SitePlan {
                site,
                action: it.action,
                size: it.size,
            })
        })
        .collect::<Result<_, String>>()?;
    let rewritten = xplacer_instrument::placement::apply_plan(&prog, &site_plans)?;
    let new_src = xplacer_lang::unparse(&rewritten);

    let log = Rc::new(RefCell::new(EventLog::with_capacity(OPT_RING_CAPACITY)));
    let mut machine = Machine::new(pf.clone());
    machine.add_hook(log.clone());
    let (out, mut interp) = run_source_on(&new_src, machine, true)
        .map_err(|e| format!("plan `{}`: {e}", plan.describe()))?;

    // Plain pass for the program-visible output: tracePrint diagnostics
    // only exist in instrumented runs, so this stdout is plan-invariant.
    let (plain, _plain_interp) = run_source(&new_src, pf.clone(), false)
        .map_err(|e| format!("plan `{}` (plain run): {e}", plan.describe()))?;

    let sites = alloc_sites(&rewritten);
    let entries: Vec<(u64, u64, u64, AllocKind, bool)> = interp
        .tracer
        .smt
        .iter()
        .map(|e| (e.serial, e.base, e.size, e.kind, e.live))
        .collect();

    // Label every traced allocation with its source variable name. With
    // diagnostics stripped, `tracePrint` never runs to register names, and
    // the source is a better authority anyway: candidate items and profile
    // rows read `data: advise ...` instead of a bare address.
    for &(serial, base, _, kind, _) in &entries {
        if let Some(v) = site_var(&sites, serial, kind) {
            let v = v.to_string();
            interp.tracer.smt.set_label(base, &v);
        }
    }

    let mut mem = BTreeMap::new();
    for &(serial, base, size, kind, live) in &entries {
        let key = match site_var(&sites, serial, kind) {
            // The staging twins our own rewrite introduces are scratch
            // space, not program results.
            Some(v) if v.ends_with(SPLIT_SUFFIX) => continue,
            Some(v) => v.to_string(),
            // Unmodeled allocation form: fall back to the serial. Stable
            // across runs of the same source; a rewrite that inserts
            // allocations shifts it, which the fingerprint comparison
            // then reports as a mismatch — failing closed.
            None => format!("#{serial}"),
        };
        let val = if live {
            let mut buf = vec![0u8; size as usize];
            interp
                .machine
                .peek_bytes(base, &mut buf)
                .map_err(|e| format!("{key}: {e}"))?;
            format!("{:016x}/{size}", fnv64(&buf))
        } else {
            "freed".to_string()
        };
        mem.insert(key, val);
    }
    let fingerprint = ResultsFingerprint {
        check: format!(
            "exit={} stdout={:016x}",
            plain.exit,
            fnv64(plain.stdout.as_bytes())
        ),
        mem,
    };

    let profile_names: Vec<(u64, String)> = xplacer_core::summarize(&interp.tracer.smt, false)
        .into_iter()
        .map(|s| (s.base, s.name))
        .collect();
    let profile =
        ProfileReport::build(name, pf.name, out.elapsed_ns, &log.borrow(), &profile_names);
    let digest = RunDigest::from_profile(
        &profile,
        if plan.is_empty() {
            "baseline"
        } else {
            "candidate"
        },
    );

    let candidates = if want_candidates {
        let all = enumerate_candidates(&interp.tracer.smt, pf);
        let total = all.len();
        let mut site_of = BTreeMap::new();
        let mut items = Vec::new();
        for c in all {
            // Resolve the candidate's allocation to an unconditional
            // managed site in `main`; candidates we cannot place in the
            // source are skipped, never mis-mapped.
            let serial = entries
                .iter()
                .find(|&&(_, base, ..)| base == c.base)
                .map(|&(serial, ..)| serial);
            let site = serial.and_then(|s| {
                let var = site_var(&sites, s, AllocKind::Managed)?;
                let idx = s as usize;
                (!sites[idx].conditional && !var.ends_with(SPLIT_SUFFIX)).then_some(idx)
            });
            if let Some(idx) = site {
                site_of.insert(c.base, idx);
                items.push(c);
            }
        }
        Some(CandidateSet {
            skipped: total - items.len(),
            items,
            site_of_base: site_of,
        })
    } else {
        None
    };

    Ok((
        EvalOutcome {
            simulated_ns: out.elapsed_ns,
            stats: out.stats,
            digest,
            fingerprint,
        },
        candidates,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform;

    const PROG: &str = r#"
        int main() {
            double* a;
            cudaMallocManaged((void**)&a, 4096);
            for (int i = 0; i < 512; i = i + 1) { a[i] = 1.0; }
            kernel<<<1, 64>>>(a);
            double acc = 0.0;
            for (int i = 0; i < 512; i = i + 1) { acc = acc + a[i]; }
            printf("%f\n", acc);
            return 0;
        }
        __global__ void kernel(double* a) {
            int i = threadIdx.x;
            a[i] = a[i] + 1.0;
        }
    "#;

    #[test]
    fn baseline_workload_eval_enumerates_candidates() {
        let pf = platform::intel_pascal();
        let (out, cands) = eval_workload("lulesh", &pf, &Plan::empty(), true).unwrap();
        let cands = cands.unwrap();
        assert!(out.simulated_ns > 0.0);
        assert!(!cands.items.is_empty(), "lulesh should yield candidates");
        assert!(
            cands.items.iter().all(|c| c.action != PlanAction::Split),
            "workload candidates must not contain Split"
        );
        assert!(!out.fingerprint.mem.is_empty());
    }

    #[test]
    fn workload_advice_changes_cost_but_not_results() {
        let pf = platform::intel_pascal();
        let (base, cands) = eval_workload("lulesh", &pf, &Plan::empty(), true).unwrap();
        let cands = cands.unwrap();
        let first = cands.items.first().expect("lulesh yields candidates");
        let plan = Plan::empty().with(first.clone());
        let (hinted, _) = eval_workload("lulesh", &pf, &plan, false).unwrap();
        assert_eq!(base.fingerprint, hinted.fingerprint);
    }

    #[test]
    fn program_eval_roundtrips_and_split_preserves_results() {
        let pf = platform::intel_pascal();
        let (base, cands) =
            eval_program("toy", PROG, &pf, &Plan::empty(), &BTreeMap::new(), true).unwrap();
        let cands = cands.unwrap();
        assert!(
            !cands.items.is_empty(),
            "toy program should yield candidates"
        );
        for c in &cands.items {
            let plan = Plan::empty().with(c.clone());
            let (out, _) =
                eval_program("toy", PROG, &pf, &plan, &cands.site_of_base, false).unwrap();
            assert_eq!(
                base.fingerprint,
                out.fingerprint,
                "candidate `{}` changed program results",
                plan.describe()
            );
        }
    }
}
