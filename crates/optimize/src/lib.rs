//! Closed-loop auto-placement optimizer (the paper's workflow, closed):
//! trace a baseline run, turn its shadow state into candidate placement
//! plans (`cudaMemAdvise` hints, prefetch points, and — for MiniCU
//! sources — the split-object rewrite), search plan combinations with a
//! beam search evaluated on a deterministic worker pool, and report the
//! winner with profile-diff evidence.
//!
//! Everything downstream of the baseline trace is a pure function of
//! (target, platform, search knobs): the report is byte-identical across
//! worker counts and across runs.

pub mod eval;
pub mod report;
pub mod search;

use std::collections::BTreeMap;

use hetsim::Platform;
use xplacer_core::Plan;

pub use eval::{CandidateSet, EvalOutcome, ResultsFingerprint};
pub use report::{OptimizeReport, ReportRow, OPTIMIZE_SCHEMA};
pub use search::{beam_search, Evaluation, SearchConfig, SearchResult};

/// What to optimize.
#[derive(Debug, Clone)]
pub enum Target {
    /// A built-in workload by name (see `xplacer_workloads::WORKLOADS`).
    Workload(String),
    /// A MiniCU program: display name + source text.
    Program { name: String, source: String },
}

impl Target {
    /// Display name for reports.
    pub fn name(&self) -> &str {
        match self {
            Target::Workload(w) => w,
            Target::Program { name, .. } => name,
        }
    }
}

/// Optimizer knobs. Worker count affects wall time only.
#[derive(Debug, Clone)]
pub struct OptimizeConfig {
    pub platform: Platform,
    /// Evaluation pool width (≥ 1).
    pub jobs: usize,
    /// Beam width.
    pub beam: usize,
    /// Maximum search rounds (and thus maximum plan size).
    pub max_rounds: usize,
    /// Smoke mode: one round, for CI.
    pub smoke: bool,
}

impl OptimizeConfig {
    /// Defaults for `platform`; smoke mode caps the search at one round.
    pub fn new(platform: Platform) -> OptimizeConfig {
        OptimizeConfig {
            platform,
            jobs: 1,
            beam: 2,
            max_rounds: 3,
            smoke: false,
        }
    }

    fn rounds(&self) -> usize {
        if self.smoke {
            1
        } else {
            self.max_rounds
        }
    }
}

/// Run the closed loop: baseline → candidates → search → report.
pub fn optimize(target: &Target, cfg: &OptimizeConfig) -> Result<OptimizeReport, String> {
    let empty = Plan::empty();
    let no_sites = BTreeMap::new();
    let (baseline, candidates) = match target {
        Target::Workload(w) => eval::eval_workload(w, &cfg.platform, &empty, true)?,
        Target::Program { name, source } => {
            eval::eval_program(name, source, &cfg.platform, &empty, &no_sites, true)?
        }
    };
    let candidates = candidates.expect("baseline evaluation enumerates candidates");

    let scfg = SearchConfig {
        jobs: cfg.jobs.max(1),
        beam: cfg.beam.max(1),
        max_rounds: cfg.rounds(),
    };
    let site_of_base = candidates.site_of_base.clone();
    let evaluate = |plan: &Plan| -> Result<EvalOutcome, String> {
        let (outcome, _) = match target {
            Target::Workload(w) => eval::eval_workload(w, &cfg.platform, plan, false)?,
            Target::Program { name, source } => {
                eval::eval_program(name, source, &cfg.platform, plan, &site_of_base, false)?
            }
        };
        Ok(outcome)
    };
    let result = beam_search(&baseline, &candidates.items, &scfg, evaluate)?;

    Ok(OptimizeReport::build(
        target.name(),
        cfg.platform.name,
        scfg.beam,
        scfg.max_rounds,
        cfg.smoke,
        candidates.items.len(),
        candidates.skipped,
        &baseline,
        result,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::platform;

    #[test]
    fn smoke_optimize_lulesh_beats_or_matches_baseline() {
        let mut cfg = OptimizeConfig::new(platform::intel_pascal());
        cfg.smoke = true;
        cfg.jobs = 2;
        let report = optimize(&Target::Workload("lulesh".into()), &cfg).unwrap();
        assert!(report.winner_ns <= report.baseline_ns);
        assert!(report.candidates > 0);
        let text = report.render();
        assert!(text.contains("winner:"), "{text}");
        let json = report.to_json().to_string_pretty();
        assert!(json.contains(OPTIMIZE_SCHEMA));
        assert!(
            !json.contains("jobs"),
            "worker count must not leak into the report"
        );
    }

    #[test]
    fn program_target_smoke() {
        let src = r#"
            int main() {
                int* a;
                cudaMallocManaged((void**)&a, 4096);
                for (int i = 0; i < 1024; i = i + 1) { a[i] = i; }
                scale<<<4, 256>>>(a);
                int sum = 0;
                for (int i = 0; i < 1024; i = i + 1) { sum = sum + a[i]; }
                printf("%d\n", sum);
                return 0;
            }
            __global__ void scale(int* a) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                a[i] = a[i] * 2;
            }
        "#;
        let mut cfg = OptimizeConfig::new(platform::intel_pascal());
        cfg.smoke = true;
        let report = optimize(
            &Target::Program {
                name: "scale.cu".into(),
                source: src.into(),
            },
            &cfg,
        )
        .unwrap();
        assert!(report.winner_ns <= report.baseline_ns);
    }
}
