//! The optimizer's output: a byte-deterministic report.
//!
//! Nothing in the rendered text or the JSON document depends on wall
//! clock, worker count, or host state — only on the target, the platform
//! model, and the search knobs. That is what lets CI `cmp` two reports
//! produced with different `--jobs` values, and golden-file the whole
//! thing.

use xplacer_bench::bench_json::BenchRecord;
use xplacer_obs::diff::DEFAULT_THRESHOLD;
use xplacer_obs::{diff, Json};

use crate::eval::EvalOutcome;
use crate::search::SearchResult;

/// Schema tag of the JSON form.
pub const OPTIMIZE_SCHEMA: &str = "xplacer-optimize/1";

/// One evaluated plan as it appears in the report.
#[derive(Debug)]
pub struct ReportRow {
    pub round: usize,
    pub plan_key: String,
    pub plan: String,
    /// `Some` when the plan ran to completion with unchanged results.
    pub simulated_ns: Option<f64>,
    /// Simulated-time delta vs. baseline (negative is faster).
    pub delta_ns: Option<f64>,
    /// Profile-diff evidence vs. the baseline, or the rejection reason.
    pub evidence: String,
}

/// The full report.
#[derive(Debug)]
pub struct OptimizeReport {
    pub workload: String,
    pub platform: String,
    pub beam: usize,
    pub max_rounds: usize,
    pub smoke: bool,
    /// Candidate actions enumerated from the baseline trace.
    pub candidates: usize,
    /// Enumerated candidates the target could not apply.
    pub skipped_candidates: usize,
    pub baseline_ns: f64,
    pub baseline_faults: u64,
    pub baseline_migrations: u64,
    pub rounds_run: usize,
    pub rows: Vec<ReportRow>,
    /// Winning plan, one item per line ("name: action — rationale").
    pub winner_items: Vec<String>,
    pub winner_key: String,
    pub winner: String,
    pub winner_ns: f64,
    winner_outcome: EvalOutcome,
}

/// Summarize a profile diff into one evidence cell.
fn evidence_of(baseline: &EvalOutcome, cand: &EvalOutcome) -> String {
    let mut a = baseline.digest.clone();
    let mut b = cand.digest.clone();
    a.source = "baseline".to_string();
    b.source = "candidate".to_string();
    match diff(a, b, DEFAULT_THRESHOLD) {
        Ok(d) => {
            let mut s = format!(
                "{}; {} rows changed, {} same",
                d.verdict.as_str(),
                d.rows.len(),
                d.unchanged
            );
            if let Some(top) = d.rows.first() {
                s.push_str(&format!(
                    "; top {} `{}` {}{:.0} ns",
                    top.section,
                    top.key,
                    if top.delta_ns() >= 0.0 { "+" } else { "" },
                    top.delta_ns()
                ));
            }
            s
        }
        Err(e) => format!("diff unavailable: {e}"),
    }
}

impl OptimizeReport {
    /// Assemble the report from a finished search.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        workload: &str,
        platform: &str,
        beam: usize,
        max_rounds: usize,
        smoke: bool,
        candidates: usize,
        skipped_candidates: usize,
        baseline: &EvalOutcome,
        search: SearchResult,
    ) -> OptimizeReport {
        let rows = search
            .evaluations
            .iter()
            .map(|e| match &e.result {
                Ok(o) => ReportRow {
                    round: e.round,
                    plan_key: e.plan.key(),
                    plan: e.plan.describe(),
                    simulated_ns: Some(o.simulated_ns),
                    delta_ns: Some(o.simulated_ns - baseline.simulated_ns),
                    evidence: evidence_of(baseline, o),
                },
                Err(why) => ReportRow {
                    round: e.round,
                    plan_key: e.plan.key(),
                    plan: e.plan.describe(),
                    simulated_ns: None,
                    delta_ns: None,
                    evidence: why.clone(),
                },
            })
            .collect();
        let winner_items = search
            .best_plan
            .items()
            .iter()
            .map(|i| format!("{i} — {}", i.rationale))
            .collect();
        OptimizeReport {
            workload: workload.to_string(),
            platform: platform.to_string(),
            beam,
            max_rounds,
            smoke,
            candidates,
            skipped_candidates,
            baseline_ns: baseline.simulated_ns,
            baseline_faults: baseline.stats.faults(),
            baseline_migrations: baseline.stats.migrations(),
            rounds_run: search.rounds_run,
            rows,
            winner_items,
            winner_key: search.best_plan.key(),
            winner: search.best_plan.describe(),
            winner_ns: search.best.simulated_ns,
            winner_outcome: search.best,
        }
    }

    /// Percentage improvement of the winner over the baseline (≥ 0 by
    /// the search's strict-improvement rule).
    pub fn improvement_pct(&self) -> f64 {
        if self.baseline_ns == 0.0 {
            return 0.0;
        }
        (self.baseline_ns - self.winner_ns) / self.baseline_ns * 100.0
    }

    /// The winner's performance record for `bench compare` gating.
    pub fn bench_record(&self) -> BenchRecord {
        BenchRecord::from_run(
            &format!("optimize_{}", self.workload),
            self.winner_ns,
            &self.winner_outcome.stats,
            0.0,
        )
    }

    /// Rendered table. Byte-deterministic.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== xplacer optimize: {} on {} ==",
            self.workload, self.platform
        );
        let _ = writeln!(
            s,
            "baseline: {:.0} ns simulated, {} faults, {} migrations",
            self.baseline_ns, self.baseline_faults, self.baseline_migrations,
        );
        let _ = writeln!(
            s,
            "search: {} candidate actions ({} skipped), beam {}, max rounds {}{}",
            self.candidates,
            self.skipped_candidates,
            self.beam,
            self.max_rounds,
            if self.smoke { ", smoke" } else { "" }
        );
        let _ = writeln!(
            s,
            "evaluated {} plans over {} rounds:",
            self.rows.len(),
            self.rounds_run
        );
        let _ = writeln!(
            s,
            "{:>5}  {:>14}  {:>12}  plan",
            "round", "simulated_ns", "delta_ns"
        );
        for r in &self.rows {
            match (r.simulated_ns, r.delta_ns) {
                (Some(ns), Some(d)) => {
                    let _ = writeln!(s, "{:>5}  {:>14.0}  {:>+12.0}  {}", r.round, ns, d, r.plan);
                    let _ = writeln!(s, "{:20} evidence: {}", "", r.evidence);
                }
                _ => {
                    let _ = writeln!(s, "{:>5}  {:>14}  {:>12}  {}", r.round, "-", "-", r.plan);
                    let _ = writeln!(s, "{:20} {}", "", r.evidence);
                }
            }
        }
        let _ = writeln!(s, "winner: {}", self.winner);
        let _ = writeln!(
            s,
            "  simulated_ns {:.0} (baseline {:.0}, -{:.2}%)",
            self.winner_ns,
            self.baseline_ns,
            self.improvement_pct()
        );
        for item in &self.winner_items {
            let _ = writeln!(s, "  - {item}");
        }
        if self.winner_items.is_empty() {
            let _ = writeln!(s, "  - no plan beat the baseline; leave placement alone");
        }
        s
    }

    /// JSON form (`xplacer-optimize/1`). Excludes worker count and wall
    /// clock by construction.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("schema", OPTIMIZE_SCHEMA.into())
            .set("workload", self.workload.as_str().into())
            .set("platform", self.platform.as_str().into())
            .set("beam", (self.beam as u64).into())
            .set("max_rounds", (self.max_rounds as u64).into())
            .set("smoke", Json::Bool(self.smoke))
            .set("candidates", (self.candidates as u64).into())
            .set(
                "skipped_candidates",
                (self.skipped_candidates as u64).into(),
            )
            .set("baseline_ns", Json::Num(self.baseline_ns))
            .set("rounds_run", (self.rounds_run as u64).into());
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut o = Json::obj();
                o.set("round", (r.round as u64).into())
                    .set("plan", r.plan_key.as_str().into())
                    .set(
                        "simulated_ns",
                        r.simulated_ns.map(Json::Num).unwrap_or(Json::Null),
                    )
                    .set("delta_ns", r.delta_ns.map(Json::Num).unwrap_or(Json::Null))
                    .set("evidence", r.evidence.as_str().into());
                o
            })
            .collect();
        j.set("evaluations", Json::Arr(rows));
        let mut w = Json::obj();
        w.set("plan", self.winner_key.as_str().into())
            .set("simulated_ns", Json::Num(self.winner_ns))
            .set("improvement_pct", Json::Num(self.improvement_pct()))
            .set(
                "items",
                Json::Arr(
                    self.winner_items
                        .iter()
                        .map(|i| i.as_str().into())
                        .collect(),
                ),
            );
        j.set("winner", w);
        j
    }
}
