//! Beam search over placement plans, evaluated on the deterministic
//! worker pool.
//!
//! Each round extends every frontier plan by one compatible candidate
//! action, evaluates the batch with [`xplacer_core::run_ordered`] (results
//! merge in submission order, so the evaluation log — and everything the
//! report derives from it — is identical for any `--jobs` value), and
//! keeps the `beam` cheapest plans as the next frontier. The search only
//! continues while a round improves *strictly* on the best simulated time
//! seen, which guarantees the winner is never worse than the baseline.
//!
//! Safety gate: a candidate whose [`ResultsFingerprint`] differs from the
//! baseline's is rejected on the spot — the optimizer never recommends a
//! plan that changes what the program computes, even if a rewrite bug
//! were to slip through.

use std::collections::BTreeSet;

use xplacer_core::{run_ordered, Plan, PlanItem};

use crate::eval::EvalOutcome;

/// Search knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Worker count for candidate evaluation (≥ 1; affects wall time
    /// only, never output).
    pub jobs: usize,
    /// Frontier width per round.
    pub beam: usize,
    /// Maximum plan size (one action is added per round).
    pub max_rounds: usize,
}

/// One evaluated plan, in deterministic (round, submission) order.
#[derive(Debug)]
pub struct Evaluation {
    pub plan: Plan,
    /// 1-based round the plan was tried in.
    pub round: usize,
    /// The outcome, or why the plan was rejected.
    pub result: Result<EvalOutcome, String>,
}

/// What the search found.
#[derive(Debug)]
pub struct SearchResult {
    /// The winning plan; empty when nothing beat the baseline.
    pub best_plan: Plan,
    /// Outcome of the winning plan (the baseline outcome when
    /// `best_plan` is empty).
    pub best: EvalOutcome,
    /// Every evaluation, in the order plans were submitted.
    pub evaluations: Vec<Evaluation>,
    /// Rounds actually run.
    pub rounds_run: usize,
}

/// Run the search. `eval` is called from pool workers, so it must build
/// its own machine per call; errors it returns reject the plan rather
/// than aborting the search. A worker panic aborts with a spanned error.
pub fn beam_search(
    baseline: &EvalOutcome,
    candidates: &[PlanItem],
    cfg: &SearchConfig,
    eval: impl Fn(&Plan) -> Result<EvalOutcome, String> + Sync,
) -> Result<SearchResult, String> {
    let mut best_plan = Plan::empty();
    let mut best_ns = baseline.simulated_ns;
    let mut best_outcome = baseline.clone();
    let mut frontier = vec![Plan::empty()];
    let mut seen: BTreeSet<String> = BTreeSet::from([Plan::empty().key()]);
    let mut evaluations = Vec::new();
    let mut rounds_run = 0;

    for round in 1..=cfg.max_rounds {
        let mut batch = Vec::new();
        for f in &frontier {
            for c in candidates {
                if !f.allows(c) {
                    continue;
                }
                let p = f.with(c.clone());
                if seen.insert(p.key()) {
                    batch.push(p);
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        rounds_run = round;

        let descs: Vec<String> = batch.iter().map(|p| p.describe()).collect();
        let results = run_ordered(cfg.jobs, batch.clone(), |_, p: Plan| eval(&p))
            .map_err(|e| format!("evaluation pool failed: {e} (plan `{}`)", descs[e.job]))?;

        let start = evaluations.len();
        for (plan, result) in batch.into_iter().zip(results) {
            let result = match result {
                Ok(o) if o.fingerprint != baseline.fingerprint => {
                    Err("rejected: plan changes program results (fingerprint mismatch)".to_string())
                }
                other => other,
            };
            evaluations.push(Evaluation {
                plan,
                round,
                result,
            });
        }

        // Rank this round's survivors; ties break on the plan key so the
        // frontier is insertion-order independent.
        let mut ranked: Vec<(f64, String, &Plan)> = evaluations[start..]
            .iter()
            .filter_map(|e| {
                e.result
                    .as_ref()
                    .ok()
                    .map(|o| (o.simulated_ns, e.plan.key(), &e.plan))
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

        let improved = ranked.first().map(|r| r.0 < best_ns).unwrap_or(false);
        if let Some((ns, _, plan)) = ranked.first() {
            if *ns < best_ns {
                best_ns = *ns;
                best_plan = (*plan).clone();
                let winner_key = best_plan.key();
                best_outcome = evaluations[start..]
                    .iter()
                    .find(|e| e.plan.key() == winner_key)
                    .and_then(|e| e.result.as_ref().ok())
                    .expect("ranked entries come from Ok evaluations")
                    .clone();
            }
        }
        if !improved {
            break;
        }
        frontier = ranked
            .into_iter()
            .take(cfg.beam.max(1))
            .map(|(_, _, p)| p.clone())
            .collect();
    }

    Ok(SearchResult {
        best_plan,
        best: best_outcome,
        evaluations,
        rounds_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::ResultsFingerprint;
    use hetsim::{Device, MemAdvise};
    use std::collections::BTreeMap;
    use xplacer_core::PlanAction;

    fn outcome(ns: f64, check: &str) -> EvalOutcome {
        EvalOutcome {
            simulated_ns: ns,
            stats: hetsim::Stats::default(),
            digest: xplacer_obs::RunDigest {
                source: "test".into(),
                schema: "test/1".into(),
                workload: "w".into(),
                platform: "p".into(),
                elapsed_ns: ns,
                kernels: BTreeMap::new(),
                allocs: BTreeMap::new(),
                cells: BTreeMap::new(),
            },
            fingerprint: ResultsFingerprint {
                check: check.to_string(),
                mem: BTreeMap::new(),
            },
        }
    }

    fn item(base: u64, action: PlanAction) -> PlanItem {
        PlanItem {
            name: format!("a{base:x}"),
            base,
            size: 64,
            action,
            rationale: String::new(),
        }
    }

    /// Synthetic cost model: each advise saves 100 ns, each prefetch
    /// saves 10 ns; results never change.
    fn fake_eval(plan: &Plan) -> Result<EvalOutcome, String> {
        let mut ns = 1000.0;
        for i in plan.items() {
            ns -= match i.action {
                PlanAction::Advise(_) => 100.0,
                PlanAction::Prefetch(_) => 10.0,
                PlanAction::Split => 0.0,
            };
        }
        Ok(outcome(ns, "ok"))
    }

    #[test]
    fn search_combines_compatible_candidates() {
        let baseline = outcome(1000.0, "ok");
        let cands = vec![
            item(0x1000, PlanAction::Advise(MemAdvise::SetReadMostly)),
            item(0x2000, PlanAction::Prefetch(Device::GPU0)),
        ];
        let cfg = SearchConfig {
            jobs: 2,
            beam: 2,
            max_rounds: 4,
        };
        let r = beam_search(&baseline, &cands, &cfg, fake_eval).unwrap();
        assert_eq!(r.best_plan.items().len(), 2, "{}", r.best_plan.describe());
        assert_eq!(r.best.simulated_ns, 890.0);
        // Rounds: 2 productive + 1 that finds nothing new to improve.
        assert!(r.rounds_run <= 3);
    }

    #[test]
    fn result_changing_plans_are_rejected() {
        let baseline = outcome(1000.0, "ok");
        let cands = vec![item(0x1000, PlanAction::Advise(MemAdvise::SetReadMostly))];
        let cfg = SearchConfig {
            jobs: 1,
            beam: 1,
            max_rounds: 2,
        };
        let r = beam_search(&baseline, &cands, &cfg, |_p| Ok(outcome(1.0, "DIFFERENT"))).unwrap();
        assert!(r.best_plan.is_empty(), "corrupting plan must not win");
        assert_eq!(r.best.simulated_ns, 1000.0);
        assert!(r.evaluations[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("fingerprint"));
    }

    #[test]
    fn search_log_is_jobs_invariant() {
        let baseline = outcome(1000.0, "ok");
        let cands = vec![
            item(0x1000, PlanAction::Advise(MemAdvise::SetReadMostly)),
            item(0x2000, PlanAction::Advise(MemAdvise::SetReadMostly)),
            item(0x3000, PlanAction::Prefetch(Device::GPU0)),
        ];
        let runs: Vec<Vec<String>> = [1usize, 2, 8]
            .iter()
            .map(|&jobs| {
                let cfg = SearchConfig {
                    jobs,
                    beam: 2,
                    max_rounds: 3,
                };
                beam_search(&baseline, &cands, &cfg, fake_eval)
                    .unwrap()
                    .evaluations
                    .iter()
                    .map(|e| format!("{}:{}", e.round, e.plan.key()))
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn never_worse_than_baseline() {
        let baseline = outcome(1000.0, "ok");
        let cands = vec![item(0x1000, PlanAction::Prefetch(Device::GPU0))];
        let cfg = SearchConfig {
            jobs: 1,
            beam: 1,
            max_rounds: 3,
        };
        // Every candidate makes things worse; the baseline must win.
        let r = beam_search(&baseline, &cands, &cfg, |_p| Ok(outcome(2000.0, "ok"))).unwrap();
        assert!(r.best_plan.is_empty());
        assert_eq!(r.best.simulated_ns, 1000.0);
    }
}
