//! `xplacer` — command-line front end for the XPlacer reproduction.
//!
//! ```text
//! xplacer instrument <file.cu>            print the instrumented source
//! xplacer run <file.cu> [options]         instrument + execute, show output
//! xplacer analyze <file.cu> [options]     run traced and report anti-patterns
//! xplacer advise <file.cu> [options]      run traced and print placement advice
//! xplacer demo <workload> [options]       run a built-in workload traced
//! xplacer profile <workload|file.cu>      cost-attribution profile of a run
//! xplacer top <workload|file.cu>          time-series telemetry dashboard
//! xplacer top --replay <events.json>      replay a recorded event trace
//! xplacer check <workload|file.cu>        memory sanitizer + race detector
//! xplacer platforms                       list the simulated platforms
//!
//! options:
//!   --platform <pascal|volta|power9>      target platform (default pascal)
//!   --plain                               run without instrumentation
//!   --stats                               print simulator counters
//!   --trace-out <file>                    write a Chrome Trace Event JSON
//!   --metrics-out <file>                  write a JSON metrics report
//!   --events-out <file>                   write the full event stream JSON
//!                                         (replayable with `xplacer top`)
//!   --timeseries-out <file>               write epoch-bucketed telemetry JSON
//!   --heatmap                             print page x epoch access heatmaps
//!   --json                                machine-readable report on stdout,
//!                                         human text on stderr
//!   --log-level <quiet|info|debug>        progress chatter verbosity (stderr)
//!
//! profile options:
//!   --top <n>                             rows in hot-allocation/cell lists
//!   --folded-out <file>                   write flamegraph folded stacks
//!
//! top options:
//!   --frames <n>                          dashboard frames to render (default 3)
//!   --ascii                               7-bit ASCII sparklines (deterministic)
//!   --epoch-ns <ns>                       initial telemetry epoch width
//!   --buckets <n>                         bucket cap before downsampling
//!
//! check options (exit 0 clean / 1 findings / 2 usage):
//!   --max-errors <n>                      keep at most n findings in the report
//!   --no-bulk                             force per-word checking (parity debug)
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::process::ExitCode;
use std::rc::Rc;

use hetsim::{platform, EventLog, Machine, MeteredHook, Platform, Stats};
use xplacer_core::antipattern::{analyze, AnalysisConfig};
use xplacer_core::{AllocSummary, OnlineAnalyzer, OnlineConfig, Report, Tracer};
use xplacer_interp::{run_source, run_source_on};
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;
use xplacer_obs::flamegraph::folded_stacks;
use xplacer_obs::timeseries::timeseries_json;
use xplacer_obs::{
    chrome_trace_with_series, diff, events_json, metrics_report, replay, BlameReport, DashOpts,
    EventTrace, HeatmapRecorder, Json, ProfileReport, RunDigest, Telemetry, TelemetryConfig,
};
use xplacer_workloads::register_names;

/// Ring capacity for `xplacer profile`: attribution wants the complete
/// stream, so the profiler uses a much deeper ring than the default.
const PROFILE_RING_CAPACITY: usize = 1 << 21;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("xplacer: {msg}");
            // Usage/IO errors exit 2, so CI can tell them apart from the
            // deliberate exit-1 `diff` regression gate (bench convention).
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage: xplacer <instrument|run|analyze|advise|optimize|check|demo|profile|top|blame|diff|platforms> [args]\n\
     try `xplacer demo lulesh`, `xplacer profile pathfinder`, `xplacer top lulesh`, \
     `xplacer blame lulesh`, `xplacer diff a.json b.json`, \
     `xplacer optimize lulesh --jobs 4`, `xplacer check examples/mini/alternating.cu`, \
     or `xplacer analyze examples/mini/alternating.cu`"
        .to_string()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    let ok = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "instrument" => ok(cmd_instrument(rest)),
        "run" => ok(cmd_run(rest, false)),
        "analyze" => ok(cmd_run(rest, true)),
        "advise" => ok(cmd_advise(rest)),
        "optimize" => ok(cmd_optimize(rest)),
        "demo" => ok(cmd_demo(rest)),
        "profile" => ok(cmd_profile(rest)),
        "top" => ok(cmd_top(rest)),
        "blame" => ok(cmd_blame(rest)),
        "diff" => cmd_diff(rest),
        "check" => cmd_check(rest),
        "platforms" => {
            for pf in platform::all_platforms() {
                println!(
                    "{:<14} {:?}  link {:>3.0} GB/s  fault {:>5.0} ns  gpu-mem {} GiB",
                    pf.name,
                    pf.interconnect,
                    pf.link_bw,
                    pf.fault_ns,
                    pf.gpu_mem_bytes >> 30
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Progress-chatter verbosity, set with `--log-level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LogLevel {
    Quiet,
    Info,
    Debug,
}

/// Output routing for one invocation. All progress chatter goes through
/// here to stderr, gated by the log level; `human()` is the sink for
/// human-readable *results*, which move to stderr under `--json` so
/// stdout carries exactly one JSON document (`xplacer ... --json | jq`).
struct Ui {
    level: LogLevel,
    json: bool,
}

impl Ui {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut level = LogLevel::Info;
        for (i, a) in args.iter().enumerate() {
            if a == "--log-level" {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--log-level needs a value".to_string())?;
                level = match v.as_str() {
                    "quiet" => LogLevel::Quiet,
                    "info" => LogLevel::Info,
                    "debug" => LogLevel::Debug,
                    other => {
                        return Err(format!(
                            "unknown log level `{other}` (expected quiet|info|debug)"
                        ))
                    }
                };
            }
        }
        Ok(Ui {
            level,
            json: args.iter().any(|a| a == "--json"),
        })
    }

    /// Sink for human-readable result text.
    fn human(&self) -> Box<dyn Write> {
        if self.json {
            Box::new(std::io::stderr())
        } else {
            Box::new(std::io::stdout())
        }
    }

    /// Progress line (stderr, suppressed by `--log-level quiet`).
    fn info(&self, msg: &str) {
        if self.level >= LogLevel::Info {
            eprintln!("{msg}");
        }
    }

    /// Verbose diagnostics (stderr, `--log-level debug` only).
    fn debug(&self, msg: &str) {
        if self.level >= LogLevel::Debug {
            eprintln!("xplacer[debug]: {msg}");
        }
    }

    /// Problems the user must see regardless of level.
    fn warn(&self, msg: &str) {
        eprintln!("xplacer: WARNING: {msg}");
    }
}

/// Observability flags shared by `run`, `analyze`, and `demo`.
#[derive(Default)]
struct ObsOpts {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    events_out: Option<String>,
    timeseries_out: Option<String>,
    heatmap: bool,
    json: bool,
}

impl ObsOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = ObsOpts::default();
        let mut i = 0;
        let path = |args: &[String], i: usize, flag: &str| {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a path"))
                .cloned()
        };
        while i < args.len() {
            match args[i].as_str() {
                "--trace-out" => {
                    o.trace_out = Some(path(args, i, "--trace-out")?);
                    i += 1;
                }
                "--metrics-out" => {
                    o.metrics_out = Some(path(args, i, "--metrics-out")?);
                    i += 1;
                }
                "--events-out" => {
                    o.events_out = Some(path(args, i, "--events-out")?);
                    i += 1;
                }
                "--timeseries-out" => {
                    o.timeseries_out = Some(path(args, i, "--timeseries-out")?);
                    i += 1;
                }
                "--heatmap" => o.heatmap = true,
                "--json" => o.json = true,
                _ => {}
            }
            i += 1;
        }
        Ok(o)
    }

    /// Does anything need the structured event stream?
    fn wants_events(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.events_out.is_some()
            || self.json
    }

    /// Does anything need the epoch-bucketed telemetry (and the online
    /// episode detectors that ride on it)?
    fn wants_telemetry(&self) -> bool {
        self.trace_out.is_some() || self.timeseries_out.is_some()
    }
}

/// Observer hooks attached for one run; the CLI keeps shared handles so it
/// can read them back after the program finishes.
#[derive(Default)]
struct Observers {
    log: Option<Rc<RefCell<EventLog>>>,
    heat: Option<Rc<RefCell<HeatmapRecorder>>>,
    telemetry: Option<Rc<RefCell<Telemetry>>>,
    online: Option<Rc<RefCell<OnlineAnalyzer>>>,
}

/// Attach the observers `opts` asks for *alongside* whatever hook the
/// machine already carries (the tracer keeps working).
fn attach_observers(m: &mut Machine, opts: &ObsOpts) -> Observers {
    let mut obs = Observers::default();
    if opts.wants_events() {
        let log = Rc::new(RefCell::new(EventLog::new()));
        m.add_hook(log.clone());
        obs.log = Some(log);
    }
    if opts.wants_telemetry() {
        let tele = Rc::new(RefCell::new(Telemetry::new(
            TelemetryConfig::default(),
            m.platform().link_bw,
        )));
        m.add_hook(tele.clone());
        obs.telemetry = Some(tele);
        let online = Rc::new(RefCell::new(OnlineAnalyzer::new(OnlineConfig::default())));
        m.add_hook(online.clone());
        obs.online = Some(online);
    }
    if opts.heatmap {
        let heat = Rc::new(RefCell::new(HeatmapRecorder::new(m.platform().page_size)));
        m.add_hook(heat.clone());
        obs.heat = Some(heat);
    }
    obs
}

/// Loud, unconditional notice when the event ring overflowed: every
/// exporter downstream of a truncated log silently undercounts.
fn warn_if_truncated(ui: &Ui, log: &EventLog) {
    if log.dropped() > 0 {
        ui.warn(&format!(
            "event ring truncated: {} of {} events dropped — \
             trace/metrics/profile outputs UNDERCOUNT this run",
            log.dropped(),
            log.total_recorded()
        ));
    }
}

/// Write/print the requested artifacts after a run.
#[allow(clippy::too_many_arguments)]
fn emit_observability(
    ui: &Ui,
    opts: &ObsOpts,
    obs: &Observers,
    workload: &str,
    pf: &Platform,
    elapsed_ns: f64,
    stats: &Stats,
    allocs: &[AllocSummary],
    report: Option<&Report>,
) -> Result<(), String> {
    if let Some(log) = &obs.log {
        warn_if_truncated(ui, &log.borrow());
    }
    if let Some(path) = &opts.trace_out {
        let log = obs.log.as_ref().expect("event log attached").borrow();
        let tele = obs.telemetry.as_ref().map(|t| t.borrow());
        let text = chrome_trace_with_series(&log, tele.as_deref()).to_string_compact();
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!(
            "wrote chrome trace to {path} ({} events; open in chrome://tracing)",
            log.len()
        ));
    }
    if let Some(path) = &opts.events_out {
        let log = obs.log.as_ref().expect("event log attached").borrow();
        let doc = events_json(&log, workload, elapsed_ns, pf, allocs);
        std::fs::write(path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!(
            "wrote event stream to {path} ({} events; replay with `xplacer top --replay {path}`)",
            log.len()
        ));
    }
    if let Some(path) = &opts.timeseries_out {
        let tele = obs.telemetry.as_ref().expect("telemetry attached").borrow();
        let episodes = match &obs.online {
            Some(o) => {
                let mut o = o.borrow_mut();
                o.finish();
                o.episodes().to_vec()
            }
            None => Vec::new(),
        };
        let doc = timeseries_json(&tele, workload, pf.name, &episodes);
        std::fs::write(path, format!("{}\n", doc.to_string_pretty()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!(
            "wrote timeseries telemetry to {path} ({} buckets, {} episodes)",
            tele.global().len(),
            episodes.len()
        ));
    }
    if opts.metrics_out.is_some() || opts.json {
        let log = obs.log.as_ref().map(|l| l.borrow());
        let doc = metrics_report(
            workload,
            pf.name,
            elapsed_ns,
            stats,
            allocs,
            report,
            log.as_deref(),
        );
        let text = doc.to_string_pretty();
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            ui.info(&format!("wrote metrics report to {path}"));
        }
        if opts.json {
            println!("{text}");
        }
    }
    if let Some(heat) = &obs.heat {
        let _ = write!(ui.human(), "{}", heat.borrow().render_ascii());
    }
    Ok(())
}

fn pick_platform(args: &[String]) -> Result<Platform, String> {
    let mut pf = platform::intel_pascal();
    for (i, a) in args.iter().enumerate() {
        if a == "--platform" {
            let name = args
                .get(i + 1)
                .ok_or_else(|| "--platform needs a value".to_string())?;
            pf = match name.as_str() {
                "pascal" | "intel-pascal" => platform::intel_pascal(),
                "volta" | "intel-volta" => platform::intel_volta(),
                "power9" | "ibm" | "nvlink" => platform::power9_volta(),
                other => return Err(format!("unknown platform `{other}`")),
            };
        }
    }
    Ok(pf)
}

/// Flags that consume the following argument (skipped when scanning for
/// the positional input file).
const VALUE_FLAGS: &[&str] = &[
    "--platform",
    "--trace-out",
    "--metrics-out",
    "--events-out",
    "--timeseries-out",
    "--log-level",
    "--top",
    "--folded-out",
    "--replay",
    "--frames",
    "--epoch-ns",
    "--buckets",
    "--threshold",
    "--jobs",
    "--beam",
    "--out",
    "--bench-out",
    "--max-errors",
];

fn read_file(args: &[String]) -> Result<(String, String), String> {
    let mut skip_next = false;
    let mut path = None;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            path = Some(a.clone());
            break;
        }
    }
    let path = path.ok_or_else(|| "no input file given".to_string())?;
    let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path, src))
}

/// Value of `--<flag> <value>` if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args
                .get(i + 1)
                .map(|s| Some(s.as_str()))
                .ok_or_else(|| format!("{flag} needs a value"));
        }
    }
    Ok(None)
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let (_, src) = read_file(args)?;
    let prog = parse(&src).map_err(|e| e.to_string())?;
    let inst = xplacer_instrument::instrument(&prog);
    print!("{}", unparse(&inst.program));
    if !inst.replacements.is_empty() {
        eprintln!("replacements applied:");
        let mut reps: Vec<_> = inst.replacements.iter().collect();
        reps.sort();
        for (from, to) in reps {
            eprintln!("  {from} -> {to}");
        }
    }
    Ok(())
}

fn cmd_run(args: &[String], analyze_after: bool) -> Result<(), String> {
    let (path, src) = read_file(args)?;
    let pf = pick_platform(args)?;
    let ui = Ui::parse(args)?;
    let obs_opts = ObsOpts::parse(args)?;
    let plain = args.iter().any(|a| a == "--plain");
    let instrumented = !plain;
    let mut machine = Machine::new(pf.clone());
    let obs = attach_observers(&mut machine, &obs_opts);
    ui.debug(&format!("running {path} on {}", pf.name));
    let (out, interp) =
        run_source_on(&src, machine, instrumented).map_err(|e| format!("{path}: {e}"))?;
    let mut h = ui.human();
    let _ = write!(h, "{}", out.stdout);
    ui.info(&format!(
        "exit {} | simulated {:.3} ms on {} | faults {} | migrations {}",
        out.exit,
        out.elapsed_ns / 1e6,
        pf.name,
        out.stats.faults(),
        out.stats.migrations()
    ));
    if args.iter().any(|a| a == "--stats") {
        eprintln!("{}", out.stats.summary());
    }
    if analyze_after {
        if plain {
            return Err("analyze requires instrumentation (drop --plain)".into());
        }
        if interp.reports.is_empty() {
            // No diagnostic pragma in the program: analyze final state.
            let report = analyze(&interp.tracer.smt, &AnalysisConfig::default());
            let _ = writeln!(h, "--- anti-pattern report (end of program) ---");
            let _ = write!(h, "{report}");
        } else {
            for (i, report) in interp.reports.iter().enumerate() {
                let _ = writeln!(
                    h,
                    "--- anti-pattern report (diagnostic point {}) ---",
                    i + 1
                );
                let _ = write!(h, "{report}");
            }
        }
    }
    let allocs = xplacer_core::summarize(&interp.tracer.smt, false);
    let report = analyze_after.then(|| analyze(&interp.tracer.smt, &AnalysisConfig::default()));
    emit_observability(
        &ui,
        &obs_opts,
        &obs,
        &path,
        &pf,
        out.elapsed_ns,
        &out.stats,
        &allocs,
        report.as_ref(),
    )
}

/// Run a program traced and print the placement advisor's suggestions
/// (platform-aware) instead of the anti-pattern report.
fn cmd_advise(args: &[String]) -> Result<(), String> {
    let (path, src) = read_file(args)?;
    let pf = pick_platform(args)?;
    let (_, interp) = run_source(&src, pf.clone(), true).map_err(|e| format!("{path}: {e}"))?;
    let suggestions = xplacer_core::suggest_for(&interp.tracer.smt, &pf);
    if suggestions.is_empty() {
        println!(
            "no placement suggestions (nothing traced at end of program — \
                  note that each tracePrint resets the trace; advise works best \
                  on programs without diagnostic pragmas)"
        );
    } else {
        println!("placement suggestions for {}:", pf.name);
        for s in &suggestions {
            println!("  {s}");
        }
    }
    Ok(())
}

const WORKLOADS: &str = xplacer_workloads::WORKLOADS;

/// Run one built-in workload on `m` with `tracer` attached, registering
/// its allocation names. Returns the check value and the name table.
fn run_builtin_workload(
    m: &mut Machine,
    tracer: &Rc<RefCell<Tracer>>,
    which: &str,
) -> Result<(f64, Vec<(hetsim::Addr, String)>), String> {
    xplacer_workloads::run_workload(m, which, |_, names| register_names(tracer, names))
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let Some(which) = args.first() else {
        return Err(format!("demo requires a workload: {WORKLOADS}"));
    };
    let pf = pick_platform(args)?;
    let ui = Ui::parse(&args[1..])?;
    let obs_opts = ObsOpts::parse(&args[1..])?;
    let mut m = Machine::new(pf.clone());
    let tracer = xplacer_core::attach_tracer(&mut m);
    let obs = attach_observers(&mut m, &obs_opts);
    ui.debug(&format!("running demo workload {which} on {}", pf.name));
    let (check, names) = run_builtin_workload(&mut m, &tracer, which)?;

    let elapsed = m.elapsed_ns();
    let mut h = ui.human();
    let _ = writeln!(
        h,
        "{which} on {}: check={check:.4}, simulated {:.3} ms, faults {}, migrations {}",
        pf.name,
        elapsed / 1e6,
        m.stats.faults(),
        m.stats.migrations()
    );
    let summaries = xplacer_core::summarize(&tracer.borrow().smt, true);
    let _ = writeln!(h, "\n--- diagnostic summary (named allocations) ---");
    let _ = write!(h, "{}", xplacer_core::format_fig4(&summaries));
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    let _ = writeln!(h, "--- anti-pattern report ---");
    let _ = write!(h, "{report}");
    if let Some(heat) = &obs.heat {
        let mut h = heat.borrow_mut();
        for (addr, name) in &names {
            h.name(*addr, name);
        }
    }
    let all_allocs = xplacer_core::summarize(&tracer.borrow().smt, false);
    emit_observability(
        &ui,
        &obs_opts,
        &obs,
        which,
        &pf,
        elapsed,
        &m.stats,
        &all_allocs,
        Some(&report),
    )
}

/// `xplacer profile`: run a workload (or MiniCU program) with a deep
/// event ring and fold the attributed stream into per-kernel /
/// per-allocation cost tables, optionally exporting flamegraph stacks.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let Some(target) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(format!(
            "profile requires a workload ({WORKLOADS}) or a .cu file"
        ));
    };
    let pf = pick_platform(args)?;
    let ui = Ui::parse(args)?;
    let top = match flag_value(args, "--top")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--top expects a number, got `{v}`"))?,
        None => 10,
    };
    let folded_out = flag_value(args, "--folded-out")?.map(str::to_string);

    let log = Rc::new(RefCell::new(EventLog::with_capacity(PROFILE_RING_CAPACITY)));
    let (workload_name, elapsed, stats, names) = if target.ends_with(".cu") {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        let mut machine = Machine::new(pf.clone());
        machine.add_hook(log.clone());
        ui.debug(&format!("profiling program {target} on {}", pf.name));
        let (out, interp) =
            run_source_on(&src, machine, true).map_err(|e| format!("{target}: {e}"))?;
        let names: Vec<(u64, String)> = xplacer_core::summarize(&interp.tracer.smt, false)
            .into_iter()
            .map(|s| (s.base, s.name))
            .collect();
        (target.clone(), out.elapsed_ns, out.stats, names)
    } else {
        let mut m = Machine::new(pf.clone());
        let tracer = xplacer_core::attach_tracer(&mut m);
        m.add_hook(log.clone());
        ui.debug(&format!("profiling workload {target} on {}", pf.name));
        let (check, _) = run_builtin_workload(&mut m, &tracer, target)?;
        let elapsed = m.elapsed_ns();
        ui.info(&format!(
            "{target} on {}: check={check:.4}, simulated {:.3} ms",
            pf.name,
            elapsed / 1e6
        ));
        let names: Vec<(u64, String)> = xplacer_core::summarize(&tracer.borrow().smt, false)
            .into_iter()
            .map(|s| (s.base, s.name))
            .collect();
        (target.clone(), elapsed, m.stats.clone(), names)
    };

    let log = log.borrow();
    warn_if_truncated(&ui, &log);
    let report = ProfileReport::build(&workload_name, pf.name, elapsed, &log, &names);
    debug_assert_eq!(report.totals.faults, stats.faults());

    if let Some(path) = &folded_out {
        let text = folded_stacks(pf.name, &log, &names);
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!(
            "wrote folded stacks to {path} ({} frames; render with flamegraph.pl/inferno)",
            text.lines().count()
        ));
    }

    if ui.json {
        println!("{}", report.to_json().to_string_pretty());
        let _ = write!(ui.human(), "{}", report.render_table(top));
    } else {
        let _ = write!(ui.human(), "{}", report.render_table(top));
    }
    Ok(())
}

/// First positional (non-flag) argument, skipping flag values.
fn positional(args: &[String]) -> Option<String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            return Some(a.clone());
        }
    }
    None
}

/// `xplacer optimize`: the closed loop. Trace a baseline, enumerate
/// candidate placement plans from the shadow state, beam-search plan
/// combinations on the deterministic evaluation pool, report the winner.
/// Output is byte-identical for any `--jobs` value.
fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let Some(target) = positional(args) else {
        return Err(format!(
            "optimize requires a workload ({WORKLOADS}) or a .cu file"
        ));
    };
    let pf = pick_platform(args)?;
    let ui = Ui::parse(args)?;
    let parse_num = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, flag)? {
            Some(v) => v
                .parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("{flag} expects a number >= 1, got `{v}`")),
            None => Ok(default),
        }
    };

    let mut cfg = xplacer_optimize::OptimizeConfig::new(pf.clone());
    cfg.jobs = parse_num("--jobs", 1)?;
    cfg.beam = parse_num("--beam", 2)?;
    cfg.smoke = args.iter().any(|a| a == "--smoke");

    let opt_target = if target.ends_with(".cu") {
        let src =
            std::fs::read_to_string(&target).map_err(|e| format!("cannot read {target}: {e}"))?;
        xplacer_optimize::Target::Program {
            name: target.clone(),
            source: src,
        }
    } else {
        xplacer_optimize::Target::Workload(target.clone())
    };

    ui.debug(&format!(
        "optimizing {target} on {} with {} workers",
        pf.name, cfg.jobs
    ));
    let report = xplacer_optimize::optimize(&opt_target, &cfg)?;

    let doc = report.to_json().to_string_pretty();
    if ui.json {
        println!("{doc}");
    } else {
        let _ = write!(ui.human(), "{}", report.render());
    }
    if let Some(path) = flag_value(args, "--out")? {
        std::fs::write(path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!("wrote optimizer report to {path}"));
    }
    if let Some(path) = flag_value(args, "--bench-out")? {
        let rec = report.bench_record().to_json().to_string_pretty();
        std::fs::write(path, rec).map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!("wrote bench record to {path}"));
    }
    Ok(())
}

/// `xplacer top`: the time-series telemetry dashboard. Live mode runs a
/// workload (or MiniCU program) with the full event ring recording, then
/// renders `--frames` evenly spaced dashboard frames over the simulated
/// timeline; `--replay <events.json>` drives the same pipeline from a
/// trace recorded earlier with `--events-out`. `--frames N --ascii` output
/// is byte-deterministic (golden-snapshot tested).
fn cmd_top(args: &[String]) -> Result<(), String> {
    let ui = Ui::parse(args)?;
    let frames = match flag_value(args, "--frames")? {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("--frames expects a positive number, got `{v}`"))?,
        None => 3,
    };
    let mut cfg = TelemetryConfig::default();
    if let Some(v) = flag_value(args, "--epoch-ns")? {
        cfg.epoch_ns = v
            .parse::<f64>()
            .ok()
            .filter(|e| *e > 0.0)
            .ok_or_else(|| format!("--epoch-ns expects a positive number, got `{v}`"))?;
    }
    if let Some(v) = flag_value(args, "--buckets")? {
        cfg.max_buckets = v
            .parse::<usize>()
            .ok()
            .filter(|b| *b >= 2)
            .ok_or_else(|| format!("--buckets expects a number >= 2, got `{v}`"))?;
    }
    let opts = DashOpts {
        ascii: args.iter().any(|a| a == "--ascii"),
        ..DashOpts::default()
    };
    let timeseries_out = flag_value(args, "--timeseries-out")?.map(str::to_string);

    let trace = match flag_value(args, "--replay")? {
        Some(path) => load_trace(path)?,
        None => record_trace_live(&ui, args)?,
    };

    let out = replay(&trace, cfg, OnlineConfig::default(), frames, &opts);
    let mut h = ui.human();
    for (i, frame) in out.frames.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(h);
        }
        let _ = write!(h, "{frame}");
    }
    drop(h);

    if timeseries_out.is_some() || ui.json {
        let doc = timeseries_json(
            &out.telemetry,
            &trace.workload,
            &trace.platform_name,
            &out.episodes,
        );
        let text = doc.to_string_pretty();
        if let Some(path) = &timeseries_out {
            std::fs::write(path, format!("{text}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            ui.info(&format!("wrote timeseries telemetry to {path}"));
        }
        if ui.json {
            println!("{text}");
        }
    }
    Ok(())
}

/// Run a workload (or MiniCU program) with a deep, wall-clock-metered
/// event ring and package the stream as an in-memory trace for the
/// dashboard pipeline — live mode is replay over a trace recorded seconds
/// ago.
fn record_trace_live(ui: &Ui, args: &[String]) -> Result<EventTrace, String> {
    let Some(target) = positional(args) else {
        return Err(format!(
            "expected a workload ({WORKLOADS}), a .cu file, or --replay <events.json>"
        ));
    };
    let pf = pick_platform(args)?;
    let log = Rc::new(RefCell::new(EventLog::with_capacity(PROFILE_RING_CAPACITY)));
    let (metered, meter) = MeteredHook::new(log.clone());
    let metered: Rc<RefCell<dyn hetsim::MemHook>> = Rc::new(RefCell::new(metered));

    let (elapsed, names) = if target.ends_with(".cu") {
        let src =
            std::fs::read_to_string(&target).map_err(|e| format!("cannot read {target}: {e}"))?;
        let mut machine = Machine::new(pf.clone());
        machine.add_hook(metered);
        ui.debug(&format!("recording {target} on {}", pf.name));
        let (out, interp) =
            run_source_on(&src, machine, true).map_err(|e| format!("{target}: {e}"))?;
        let names: Vec<(u64, String)> = xplacer_core::summarize(&interp.tracer.smt, false)
            .into_iter()
            .map(|s| (s.base, s.name))
            .collect();
        (out.elapsed_ns, names)
    } else {
        let mut m = Machine::new(pf.clone());
        let tracer = xplacer_core::attach_tracer(&mut m);
        m.add_hook(metered);
        ui.debug(&format!("recording workload {target} on {}", pf.name));
        let (check, names) = run_builtin_workload(&mut m, &tracer, &target)?;
        ui.info(&format!(
            "{target} on {}: check={check:.4}, simulated {:.3} ms",
            pf.name,
            m.elapsed_ns() / 1e6
        ));
        (m.elapsed_ns(), names)
    };

    let log = log.borrow();
    warn_if_truncated(ui, &log);
    let mt = meter.borrow();
    // Wall-clock self-overhead goes to stderr only: it is nondeterministic
    // and must never contaminate the replayable artifacts.
    ui.info(&format!(
        "telemetry self-overhead: {} hook calls, {:.3} ms wall ({:.0} ns/call), {} events dropped",
        mt.calls,
        mt.wall_ns as f64 / 1e6,
        mt.mean_ns(),
        log.dropped()
    ));
    Ok(EventTrace::from_recording(
        &target, &pf, elapsed, &log, names,
    ))
}

/// Load and validate a serialized events trace (`--events-out` artifact).
fn load_trace(path: &str) -> Result<EventTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    EventTrace::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `xplacer blame`: critical-path blame analysis. Runs a workload (or
/// MiniCU program) recording the full attributed stream — or replays an
/// `--events-out` artifact — reconstructs the dependency DAG, and charges
/// every nanosecond of elapsed time to a (kernel × allocation ×
/// event-kind) cell, with a per-allocation what-if ranking of the most
/// profitable placement fixes. Output is byte-deterministic.
fn cmd_blame(args: &[String]) -> Result<(), String> {
    let ui = Ui::parse(args)?;
    let top = match flag_value(args, "--top")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--top expects a number, got `{v}`"))?,
        None => 10,
    };
    let folded_out = flag_value(args, "--folded-out")?.map(str::to_string);
    let trace = match flag_value(args, "--replay")? {
        Some(path) => load_trace(path)?,
        None => record_trace_live(&ui, args)?,
    };
    let report = BlameReport::build(&trace);

    if let Some(path) = &folded_out {
        let text = report.folded();
        std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
        ui.info(&format!(
            "wrote folded blame stacks to {path} ({} frames; widths are critical-path ns)",
            text.lines().count()
        ));
    }
    if ui.json {
        println!("{}", report.to_json().to_string_pretty());
    }
    let _ = write!(ui.human(), "{}", report.render(top));
    Ok(())
}

/// All positional (non-flag) arguments, skipping flag values.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            out.push(a.clone());
        }
    }
    out
}

/// `xplacer diff`: compare two runs (two `--events-out` traces or two
/// `profile --json` reports), aligned by kernel name / allocation label.
/// Exits 0 on improved/neutral, 1 when the run regressed beyond
/// `--threshold` (so it doubles as a CI gate), 2 on usage/IO errors.
/// `xplacer check <workload|file.cu>`: memory sanitizer + cross-stream
/// race detector. Exit 0 when clean, 1 on findings, 2 on usage errors.
fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let ui = Ui::parse(args)?;
    let max_errors = match flag_value(args, "--max-errors")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--max-errors expects a number, got `{v}`"))?,
        None => 0,
    };
    let opts = xplacer_check::CheckOptions {
        bulk: !args.iter().any(|a| a == "--no-bulk"),
        max_errors,
        platform: pick_platform(args)?,
    };
    let inputs = positionals(args);
    let [target] = inputs.as_slice() else {
        return Err(format!(
            "check requires exactly one input: a workload name ({}) or a MiniCU file",
            xplacer_workloads::driver::WORKLOAD_NAMES.join("|")
        ));
    };
    let out = if xplacer_workloads::driver::WORKLOAD_NAMES.contains(&target.as_str()) {
        ui.info(&format!("checking workload {target}"));
        xplacer_check::check_workload(target, &opts)?
    } else {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        ui.info(&format!("checking {target}"));
        xplacer_check::check_source(target, &src, &opts)?
    };
    if ui.json {
        println!("{}", out.report.to_json().to_string_pretty());
    }
    let _ = write!(ui.human(), "{}", out.report.render());
    if out.report.clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        ui.info("verdict: defects found — exiting 1 for CI gating");
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let ui = Ui::parse(args)?;
    let threshold = match flag_value(args, "--threshold")? {
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("--threshold expects a non-negative number, got `{v}`"))?,
        None => xplacer_obs::diff::DEFAULT_THRESHOLD,
    };
    let top = match flag_value(args, "--top")? {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--top expects a number, got `{v}`"))?,
        None => 10,
    };
    let inputs = positionals(args);
    let [a_path, b_path] = inputs.as_slice() else {
        return Err(
            "diff requires exactly two inputs: `xplacer diff <a.json> <b.json>` \
             (events traces from --events-out, or profile --json reports)"
                .to_string(),
        );
    };
    let load = |path: &str| -> Result<RunDigest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        RunDigest::from_json(&doc, path)
    };
    let d = diff(load(a_path)?, load(b_path)?, threshold)?;

    if ui.json {
        println!("{}", d.to_json(top).to_string_pretty());
    }
    let _ = write!(ui.human(), "{}", d.render(top));
    if d.regressed() {
        ui.info("verdict: regressed — exiting 1 for CI gating");
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}
