//! `xplacer` — command-line front end for the XPlacer reproduction.
//!
//! ```text
//! xplacer instrument <file.cu>            print the instrumented source
//! xplacer run <file.cu> [options]         instrument + execute, show output
//! xplacer analyze <file.cu> [options]     run traced and report anti-patterns
//! xplacer demo <workload> [options]       run a built-in workload traced
//! xplacer platforms                       list the simulated platforms
//!
//! options:
//!   --platform <pascal|volta|power9>      target platform (default pascal)
//!   --plain                               run without instrumentation
//!   --stats                               print simulator counters
//! ```

use std::process::ExitCode;

use hetsim::{platform, Machine, Platform};
use xplacer_core::antipattern::{analyze, AnalysisConfig};
use xplacer_interp::run_source;
use xplacer_lang::parser::parse;
use xplacer_lang::unparse::unparse;
use xplacer_workloads::register_names;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xplacer: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: xplacer <instrument|run|analyze|advise|demo|platforms> [args]\n\
     try `xplacer demo lulesh` or `xplacer analyze examples/mini/alternating.cu`"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "instrument" => cmd_instrument(rest),
        "run" => cmd_run(rest, false),
        "analyze" => cmd_run(rest, true),
        "advise" => cmd_advise(rest),
        "demo" => cmd_demo(rest),
        "platforms" => {
            for pf in platform::all_platforms() {
                println!(
                    "{:<14} {:?}  link {:>3.0} GB/s  fault {:>5.0} ns  gpu-mem {} GiB",
                    pf.name,
                    pf.interconnect,
                    pf.link_bw,
                    pf.fault_ns,
                    pf.gpu_mem_bytes >> 30
                );
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn pick_platform(args: &[String]) -> Result<Platform, String> {
    let mut pf = platform::intel_pascal();
    for (i, a) in args.iter().enumerate() {
        if a == "--platform" {
            let name = args
                .get(i + 1)
                .ok_or_else(|| "--platform needs a value".to_string())?;
            pf = match name.as_str() {
                "pascal" | "intel-pascal" => platform::intel_pascal(),
                "volta" | "intel-volta" => platform::intel_volta(),
                "power9" | "ibm" | "nvlink" => platform::power9_volta(),
                other => return Err(format!("unknown platform `{other}`")),
            };
        }
    }
    Ok(pf)
}

fn read_file(args: &[String]) -> Result<(String, String), String> {
    let mut skip_next = false;
    let mut path = None;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--platform" {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            path = Some(a.clone());
            break;
        }
    }
    let path = path.ok_or_else(|| "no input file given".to_string())?;
    let src = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path, src))
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let (_, src) = read_file(args)?;
    let prog = parse(&src).map_err(|e| e.to_string())?;
    let inst = xplacer_instrument::instrument(&prog);
    print!("{}", unparse(&inst.program));
    if !inst.replacements.is_empty() {
        eprintln!("replacements applied:");
        let mut reps: Vec<_> = inst.replacements.iter().collect();
        reps.sort();
        for (from, to) in reps {
            eprintln!("  {from} -> {to}");
        }
    }
    Ok(())
}

fn cmd_run(args: &[String], analyze_after: bool) -> Result<(), String> {
    let (path, src) = read_file(args)?;
    let pf = pick_platform(args)?;
    let plain = args.iter().any(|a| a == "--plain");
    let instrumented = !plain;
    let (out, interp) =
        run_source(&src, pf.clone(), instrumented).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", out.stdout);
    eprintln!(
        "exit {} | simulated {:.3} ms on {} | faults {} | migrations {}",
        out.exit,
        out.elapsed_ns / 1e6,
        pf.name,
        out.stats.faults(),
        out.stats.migrations()
    );
    if args.iter().any(|a| a == "--stats") {
        eprintln!("{}", out.stats.summary());
    }
    if analyze_after {
        if plain {
            return Err("analyze requires instrumentation (drop --plain)".into());
        }
        if interp.reports.is_empty() {
            // No diagnostic pragma in the program: analyze final state.
            let report = analyze(&interp.tracer.smt, &AnalysisConfig::default());
            println!("--- anti-pattern report (end of program) ---");
            print!("{report}");
        } else {
            for (i, report) in interp.reports.iter().enumerate() {
                println!("--- anti-pattern report (diagnostic point {}) ---", i + 1);
                print!("{report}");
            }
        }
    }
    Ok(())
}

/// Run a program traced and print the placement advisor's suggestions
/// (platform-aware) instead of the anti-pattern report.
fn cmd_advise(args: &[String]) -> Result<(), String> {
    let (path, src) = read_file(args)?;
    let pf = pick_platform(args)?;
    let (_, interp) = run_source(&src, pf.clone(), true).map_err(|e| format!("{path}: {e}"))?;
    let suggestions = xplacer_core::suggest_for(&interp.tracer.smt, &pf);
    if suggestions.is_empty() {
        println!("no placement suggestions (nothing traced at end of program — \
                  note that each tracePrint resets the trace; advise works best \
                  on programs without diagnostic pragmas)");
    } else {
        println!("placement suggestions for {}:", pf.name);
        for s in &suggestions {
            println!("  {s}");
        }
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let Some(which) = args.first() else {
        return Err(
            "demo requires a workload: lulesh | sw | pathfinder | backprop | gaussian | lud | nn | cfd"
                .into(),
        );
    };
    let pf = pick_platform(args)?;
    let mut m = Machine::new(pf.clone());
    let tracer = xplacer_core::attach_tracer(&mut m);
    use xplacer_workloads as w;
    let check = match which.as_str() {
        "lulesh" => {
            let cfg = w::lulesh::LuleshConfig::new(8, 3);
            let mut l = w::lulesh::Lulesh::setup(&mut m, cfg, w::lulesh::LuleshVariant::Baseline);
            register_names(&tracer, &l.names());
            l.run(&mut m, cfg.steps, |_, _| {});
            l.check(&mut m)
        }
        "sw" | "smith-waterman" => {
            let cfg = w::smith_waterman::SwConfig::square(128);
            let mut s = w::smith_waterman::SmithWaterman::setup(
                &mut m,
                cfg,
                w::smith_waterman::SwVariant::Baseline,
            );
            register_names(&tracer, &s.names());
            s.run(&mut m, |_, _| {});
            s.peek_score(&mut m) as f64
        }
        "pathfinder" => {
            let cfg = w::rodinia::pathfinder::PathfinderConfig::new(512, 101, 20);
            let mut p = w::rodinia::pathfinder::Pathfinder::setup(
                &mut m,
                cfg,
                w::rodinia::pathfinder::PathfinderVariant::Baseline,
            );
            register_names(&tracer, &p.names());
            p.run(&mut m, |_, _| {});
            p.check(&mut m)
        }
        "backprop" => {
            let mut b = w::rodinia::backprop::Backprop::setup(
                &mut m,
                w::rodinia::backprop::BackpropConfig::new(1024),
            );
            register_names(&tracer, &b.names());
            b.run(&mut m);
            b.check()
        }
        "gaussian" => {
            let mut g = w::rodinia::gaussian::Gaussian::setup(
                &mut m,
                w::rodinia::gaussian::GaussianConfig::new(48),
            );
            register_names(&tracer, &g.names());
            g.run(&mut m);
            g.check()
        }
        "lud" => {
            let mut l = w::rodinia::lud::Lud::setup(&mut m, w::rodinia::lud::LudConfig::new(48));
            register_names(&tracer, &l.names());
            l.run(&mut m, |_, _| {});
            l.check(&mut m)
        }
        "nn" => {
            let mut n = w::rodinia::nn::Nn::setup(&mut m, w::rodinia::nn::NnConfig::new(2048));
            register_names(&tracer, &n.names());
            n.run(&mut m);
            n.nearest().1 as f64
        }
        "cfd" => {
            let mut c =
                w::rodinia::cfd::Cfd::setup(&mut m, w::rodinia::cfd::CfdConfig::new(1024, 8));
            register_names(&tracer, &c.names());
            c.run(&mut m);
            c.check()
        }
        other => return Err(format!("unknown workload `{other}`")),
    };

    let elapsed = m.elapsed_ns();
    println!(
        "{which} on {}: check={check:.4}, simulated {:.3} ms, faults {}, migrations {}",
        pf.name,
        elapsed / 1e6,
        m.stats.faults(),
        m.stats.migrations()
    );
    let summaries = xplacer_core::summarize(&tracer.borrow().smt, true);
    println!("\n--- diagnostic summary (named allocations) ---");
    print!("{}", xplacer_core::format_fig4(&summaries));
    let report = analyze(&tracer.borrow().smt, &AnalysisConfig::default());
    println!("--- anti-pattern report ---");
    print!("{report}");
    Ok(())
}
