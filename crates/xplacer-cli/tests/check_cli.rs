//! `xplacer check` through the real binary: exit-code contract
//! (0 clean / 1 findings / 2 usage), stdout purity under
//! `--log-level quiet`, and `--json` stream separation.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn xplacer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xplacer"))
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn run(args: &[&str]) -> Output {
    xplacer().args(args).output().expect("xplacer binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8(o.stdout.clone()).expect("stdout is UTF-8")
}

#[test]
fn clean_file_exits_zero() {
    // The mini examples deliberately leak (demo style), so a minimal
    // init-use-free program pins the clean path.
    let dir = std::env::temp_dir().join("xplacer_check_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let f = dir.join("clean.cu");
    std::fs::write(
        &f,
        "int main() {\n\
         \x20   int* a;\n\
         \x20   cudaMallocManaged((void**)&a, 16 * sizeof(int));\n\
         \x20   for (int i = 0; i < 16; i++) { a[i] = i; }\n\
         \x20   printf(\"a0=%d\\n\", a[0]);\n\
         \x20   cudaFree(a);\n\
         \x20   return 0;\n\
         }\n",
    )
    .unwrap();
    let out = run(&["check", f.to_str().unwrap(), "--log-level", "quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("clean"));
}

#[test]
fn buggy_file_exits_one() {
    let f = repo_path("tests/corpus/buggy/double_free.cu");
    let out = run(&["check", f.to_str().unwrap(), "--log-level", "quiet"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("double-free"));
}

#[test]
fn usage_errors_exit_two() {
    // No input at all.
    let out = run(&["check"]);
    assert_eq!(out.status.code(), Some(2));
    // Unreadable input.
    let out = run(&["check", "no_such_file.cu"]);
    assert_eq!(out.status.code(), Some(2));
    // A parse error is a usage-level failure, not a finding.
    let dir = std::env::temp_dir().join("xplacer_check_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let broken = dir.join("broken.cu");
    std::fs::write(&broken, "int main( {").unwrap();
    let out = run(&["check", broken.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn quiet_stdout_carries_exactly_the_report() {
    // Under --log-level quiet, stdout is the rendered report and nothing
    // else — repeat runs must be byte-identical (ci.sh cmp's this same
    // stream against the committed goldens).
    let f = repo_path("tests/corpus/buggy/leak.cu");
    let a = run(&["check", f.to_str().unwrap(), "--log-level", "quiet"]);
    let b = run(&["check", f.to_str().unwrap(), "--log-level", "quiet"]);
    assert_eq!(a.stdout, b.stdout, "repeat runs differ");
    let text = stdout(&a);
    assert!(
        text.starts_with("== xplacer check:"),
        "chatter on stdout: {text}"
    );
    assert!(a.stderr.is_empty(), "quiet run wrote to stderr");
}

#[test]
fn json_mode_emits_one_document_on_stdout() {
    let f = repo_path("tests/corpus/buggy/uninit_read.cu");
    let out = run(&[
        "check",
        f.to_str().unwrap(),
        "--json",
        "--log-level",
        "quiet",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    // One JSON object, parseable, carrying the schema tag; the human
    // table moved to stderr.
    assert!(text.trim_start().starts_with('{'), "stdout: {text}");
    assert!(text.contains("\"schema\": \"xplacer-check/1\""));
    assert!(!text.contains("== xplacer check:"));
}

#[test]
fn workload_target_resolves_by_name() {
    let out = run(&["check", "gaussian", "--log-level", "quiet"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("gaussian"));
}
