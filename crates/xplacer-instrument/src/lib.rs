//! # xplacer-instrument — the XPlacer source instrumentation pass
//!
//! The stand-in for the paper's ROSE plugin (§III-B): rewrites a MiniCU
//! AST so that
//!
//! * every heap-affecting l-value read is wrapped in `traceR(...)`,
//!   writes in `traceW(...)`, and read-modify-writes in `traceRW(...)`
//!   (`*a = 0` becomes `traceW(*a) = 0`; `traceRW(*a)++`);
//! * accesses that cannot touch the heap are elided: plain variables,
//!   operands of `&` and `sizeof`;
//! * calls named by `#pragma xpl replace <name>` are redirected to the
//!   wrapper declared right after the pragma (with `kernel-launch` as the
//!   name, every `<<<>>>` launch is rewritten to a wrapper call);
//! * `#pragma xpl diagnostic fn(verbatim; expanded)` becomes a call to
//!   `fn` whose pointer arguments are recursively expanded into
//!   `XplAllocData(expr, "expr", sizeof(*expr))` records (stopping on
//!   type repetition).
//!
//! The instrumented AST unparses to ordinary MiniCU which the
//! `xplacer-interp` crate executes against the simulator + runtime.

pub mod placement;

use std::collections::{HashMap, HashSet};

use xplacer_lang::ast::*;
use xplacer_lang::sema::{classify_lvalue, LvalueClass, TypeEnv};

/// Access context of the expression being rewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// The value is read (r-value position).
    Read,
    /// The location is written (assignment target).
    Write,
    /// The location is read and written (`++`, `+=`).
    Rmw,
    /// The location is named but not accessed (`&e`, `sizeof e`).
    NoAccess,
}

/// Result of instrumenting a program.
pub struct Instrumented {
    /// The rewritten program.
    pub program: Program,
    /// `original name → wrapper name` replacements that were applied.
    pub replacements: HashMap<String, String>,
    /// Wrapper that replaces kernel launches, if any.
    pub kernel_wrapper: Option<String>,
}

/// Function calls the pass replaces by default, mirroring the common
/// wrappers of the paper's instrumentation description header file.
pub fn default_replacements() -> HashMap<String, String> {
    [
        ("cudaMalloc", "trcMalloc"),
        ("cudaMallocManaged", "trcMallocManaged"),
        ("cudaMemcpy", "trcMemcpy"),
        ("cudaFree", "trcFree"),
        ("cudaMemAdvise", "trcMemAdvise"),
        ("cudaMemPrefetchAsync", "trcMemPrefetchAsync"),
        ("malloc", "trcHostMalloc"),
        ("free", "trcHostFree"),
    ]
    .into_iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect()
}

/// Instrument `prog` with the default CUDA replacements plus whatever its
/// `#pragma xpl` directives request.
pub fn instrument(prog: &Program) -> Instrumented {
    instrument_with(prog, default_replacements())
}

/// Instrument with an explicit base replacement map.
pub fn instrument_with(prog: &Program, base: HashMap<String, String>) -> Instrumented {
    let mut replacements = base;
    let mut kernel_wrapper = None;

    // Pass 1: collect `replace` pragmas; each names the function declared
    // by the item that follows it.
    let mut pending: Option<String> = None;
    for item in &prog.items {
        match item {
            Item::Pragma(XplPragma::Replace { target }) => pending = Some(target.clone()),
            Item::Func(f) => {
                if let Some(target) = pending.take() {
                    if target == "kernel-launch" {
                        kernel_wrapper = Some(f.name.clone());
                    } else {
                        replacements.insert(target, f.name.clone());
                    }
                }
            }
            _ => pending = None,
        }
    }

    // Pass 2: rewrite every function body.
    let pass = Pass {
        prog,
        replacements: &replacements,
        kernel_wrapper: kernel_wrapper.as_deref(),
    };
    let mut items = Vec::with_capacity(prog.items.len());
    for item in &prog.items {
        items.push(match item {
            Item::Func(f) => Item::Func(pass.func(f)),
            other => other.clone(),
        });
    }

    Instrumented {
        program: Program { items },
        replacements,
        kernel_wrapper,
    }
}

struct Pass<'p> {
    prog: &'p Program,
    replacements: &'p HashMap<String, String>,
    kernel_wrapper: Option<&'p str>,
}

impl Pass<'_> {
    fn func(&self, f: &Func) -> Func {
        let mut env = TypeEnv::new(self.prog);
        env.push();
        for p in &f.params {
            env.declare(&p.name, p.ty.clone());
        }
        let body = f.body.as_ref().map(|b| self.stmts(b, &mut env));
        Func {
            qualifiers: f.qualifiers.clone(),
            ret: f.ret.clone(),
            name: f.name.clone(),
            params: f.params.clone(),
            body,
        }
    }

    fn stmts(&self, stmts: &[Stmt], env: &mut TypeEnv) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.stmt(s, env));
        }
        out
    }

    fn stmt(&self, s: &Stmt, env: &mut TypeEnv) -> Stmt {
        match s {
            Stmt::Decl(d) => {
                let init = d.init.as_ref().map(|e| self.expr(e, Ctx::Read, env));
                env.declare(&d.name, d.ty.clone());
                Stmt::Decl(VarDecl {
                    ty: d.ty.clone(),
                    name: d.name.clone(),
                    init,
                    span: d.span,
                })
            }
            Stmt::Expr(e, sp) => Stmt::Expr(self.expr(e, Ctx::Read, env), *sp),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.expr(cond, Ctx::Read, env);
                env.push();
                let then_branch = self.stmts(then_branch, env);
                env.pop();
                env.push();
                let else_branch = self.stmts(else_branch, env);
                env.pop();
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                }
            }
            Stmt::While { cond, body } => {
                let cond = self.expr(cond, Ctx::Read, env);
                env.push();
                let body = self.stmts(body, env);
                env.pop();
                Stmt::While { cond, body }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                env.push();
                let init = init.as_ref().map(|s| Box::new(self.stmt(s, env)));
                let cond = cond.as_ref().map(|e| self.expr(e, Ctx::Read, env));
                let step = step.as_ref().map(|e| self.expr(e, Ctx::Read, env));
                let body = self.stmts(body, env);
                env.pop();
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                }
            }
            Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| self.expr(e, Ctx::Read, env))),
            Stmt::Block(b) => {
                env.push();
                let b = self.stmts(b, env);
                env.pop();
                Stmt::Block(b)
            }
            Stmt::Pragma(XplPragma::Diagnostic {
                func,
                verbatim,
                expanded,
            }) => Stmt::Expr(
                self.expand_diagnostic(func, verbatim, expanded, env),
                Span::default(),
            ),
            other => other.clone(),
        }
    }

    /// Rewrite an expression under an access context.
    fn expr(&self, e: &Expr, ctx: Ctx, env: &mut TypeEnv) -> Expr {
        match e {
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) | Expr::Ident(_) => e.clone(),

            Expr::Unary(UnOp::Addr, inner) => {
                // The location is not accessed; only interior index/base
                // computations are (e.g. `&p[i]` reads `p` and `i`).
                Expr::Unary(UnOp::Addr, Box::new(self.expr(inner, Ctx::NoAccess, env)))
            }
            Expr::SizeofExpr(_) | Expr::SizeofType(_) => e.clone(), // unevaluated

            Expr::Unary(op @ (UnOp::PreInc | UnOp::PreDec), inner) => {
                Expr::Unary(*op, Box::new(self.expr(inner, Ctx::Rmw, env)))
            }
            Expr::Postfix(op, inner) => {
                Expr::Postfix(*op, Box::new(self.expr(inner, Ctx::Rmw, env)))
            }

            Expr::Unary(UnOp::Deref, _) | Expr::Index(_, _) | Expr::Member(_, _, _) => {
                self.lvalue(e, ctx, env)
            }

            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(self.expr(a, Ctx::Read, env)),
                Box::new(self.expr(b, Ctx::Read, env)),
            ),
            Expr::Assign(op, lhs, rhs) => {
                let lhs_ctx = if *op == AssignOp::Set {
                    Ctx::Write
                } else {
                    Ctx::Rmw
                };
                Expr::Assign(
                    *op,
                    Box::new(self.expr(lhs, lhs_ctx, env)),
                    Box::new(self.expr(rhs, Ctx::Read, env)),
                )
            }
            Expr::Cond(c, t, f) => Expr::Cond(
                Box::new(self.expr(c, Ctx::Read, env)),
                Box::new(self.expr(t, Ctx::Read, env)),
                Box::new(self.expr(f, Ctx::Read, env)),
            ),
            Expr::Call(name, args) => {
                if name == "traceR" || name == "traceW" || name == "traceRW" {
                    // Already-instrumented source: leave the wrapper (and
                    // everything inside it) untouched, so the pass is
                    // idempotent.
                    return e.clone();
                }
                let new_name = self
                    .replacements
                    .get(name)
                    .cloned()
                    .unwrap_or_else(|| name.clone());
                let args = args.iter().map(|a| self.expr(a, Ctx::Read, env)).collect();
                Expr::Call(new_name, args)
            }
            Expr::KernelLaunch {
                name,
                grid,
                block,
                shmem,
                stream,
                args,
            } => {
                let grid = self.expr(grid, Ctx::Read, env);
                let block = self.expr(block, Ctx::Read, env);
                let shmem = shmem
                    .as_ref()
                    .map(|e| Box::new(self.expr(e, Ctx::Read, env)));
                let stream = stream
                    .as_ref()
                    .map(|e| Box::new(self.expr(e, Ctx::Read, env)));
                let args: Vec<Expr> = args.iter().map(|a| self.expr(a, Ctx::Read, env)).collect();
                match self.kernel_wrapper {
                    // traceKernelLaunch(grd, blk, kernel, args...). The
                    // wrapper's signature has no launch-config tail, so a
                    // launch carrying shmem/stream keeps the launch form
                    // (its operands are still instrumented).
                    Some(w) if shmem.is_none() && stream.is_none() => {
                        let mut call_args = vec![grid, block, Expr::StrLit(name.clone())];
                        call_args.extend(args);
                        Expr::Call(w.to_string(), call_args)
                    }
                    _ => Expr::KernelLaunch {
                        name: name.clone(),
                        grid: Box::new(grid),
                        block: Box::new(block),
                        shmem,
                        stream,
                        args,
                    },
                }
            }
            Expr::Cast(t, inner) => Expr::Cast(t.clone(), Box::new(self.expr(inner, ctx, env))),
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(self.expr(inner, Ctx::Read, env))),
        }
    }

    /// Rewrite a possibly-heap l-value node and wrap it per context.
    fn lvalue(&self, e: &Expr, ctx: Ctx, env: &mut TypeEnv) -> Expr {
        // Children first: interior pointer loads are reads of their own.
        let rebuilt = match e {
            Expr::Unary(UnOp::Deref, b) => {
                Expr::Unary(UnOp::Deref, Box::new(self.expr(b, Ctx::Read, env)))
            }
            Expr::Index(b, i) => Expr::Index(
                Box::new(self.expr(b, Ctx::Read, env)),
                Box::new(self.expr(i, Ctx::Read, env)),
            ),
            Expr::Member(b, f, arrow) => {
                let bctx = if *arrow { Ctx::Read } else { ctx };
                Expr::Member(Box::new(self.expr(b, bctx, env)), f.clone(), *arrow)
            }
            other => other.clone(),
        };
        if ctx == Ctx::NoAccess || classify_lvalue(e) != LvalueClass::Heap {
            return rebuilt;
        }
        let wrapper = match ctx {
            Ctx::Read => "traceR",
            Ctx::Write => "traceW",
            Ctx::Rmw => "traceRW",
            Ctx::NoAccess => unreachable!(),
        };
        Expr::Call(wrapper.to_string(), vec![rebuilt])
    }

    /// Expand a diagnostic pragma into the runtime call (paper §III-B):
    /// verbatim arguments copied as-is, pointer arguments expanded into
    /// `XplAllocData` records, recursively over pointer members.
    fn expand_diagnostic(
        &self,
        func: &str,
        verbatim: &[String],
        expanded: &[String],
        env: &mut TypeEnv,
    ) -> Expr {
        let mut args: Vec<Expr> = verbatim.iter().map(|v| Expr::Ident(v.clone())).collect();
        for var in expanded {
            let base = Expr::Ident(var.clone());
            let ty = env.lookup(var).cloned();
            let mut visited = HashSet::new();
            self.expand_object(&base, var, ty.as_ref(), env, &mut visited, &mut args);
        }
        Expr::Call(func.to_string(), args)
    }

    #[allow(clippy::only_used_in_recursion)] // `env` kept for symmetry with the other walkers
    fn expand_object(
        &self,
        expr: &Expr,
        name: &str,
        ty: Option<&Type>,
        env: &TypeEnv,
        visited: &mut HashSet<String>,
        out: &mut Vec<Expr>,
    ) {
        let Some(Type::Ptr(pointee)) = ty else {
            return; // only pointer-typed arguments are expanded
        };
        out.push(Expr::Call(
            "XplAllocData".to_string(),
            vec![
                expr.clone(),
                Expr::StrLit(name.to_string()),
                Expr::SizeofType((**pointee).clone()),
            ],
        ));
        if let Type::Struct(sname) = &**pointee {
            // Recurse into pointer members, guarding against type
            // repetition (e.g. linked lists).
            if !visited.insert(sname.clone()) {
                return;
            }
            if let Some(def) = self.prog.struct_def(sname) {
                for (fty, fname) in &def.fields {
                    if fty.is_ptr() {
                        let fexpr = Expr::Member(Box::new(expr.clone()), fname.clone(), true);
                        let flabel = format!("{name}->{fname}");
                        self.expand_object(&fexpr, &flabel, Some(fty), env, visited, out);
                    }
                }
            }
            visited.remove(sname);
        }
    }
}

/// Unparse a single statement by wrapping it in a throwaway function
/// (used by tests and the CLI's diff view).
pub fn unparse_stmt(s: &Stmt) -> String {
    let f = Func {
        qualifiers: vec![],
        ret: Type::Void,
        name: "__stmt".into(),
        params: vec![],
        body: Some(vec![s.clone()]),
    };
    xplacer_lang::unparse::unparse_func(&f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplacer_lang::parser::parse;
    use xplacer_lang::unparse::{unparse, unparse_expr};

    /// Instrument a snippet inside `main` and return the unparsed text.
    fn instr_main(body: &str, prelude: &str) -> String {
        let src = format!("{prelude}\nint main() {{ {body} }}");
        let prog = parse(&src).unwrap();
        let inst = instrument(&prog);
        unparse(&inst.program)
    }

    #[test]
    fn paper_example_write() {
        // Paper §III-B: `*a = 0` becomes `traceW(*a) = 0`.
        let got = instr_main("double* a; *a = 0.0;", "");
        assert!(got.contains("traceW(*a) = 0.0;"), "{got}");
    }

    #[test]
    fn paper_example_read() {
        // `int x = traceR(*p);`
        let got = instr_main("int* p; int x = *p;", "");
        assert!(got.contains("int x = traceR(*p);"), "{got}");
    }

    #[test]
    fn paper_example_rmw() {
        // `traceRW(*a)++`
        let got = instr_main("int* a; (*a)++;", "");
        assert!(got.contains("traceRW(*a)++"), "{got}");
    }

    #[test]
    fn locals_are_elided() {
        let got = instr_main("int x; x = 3; int y = x + 1;", "");
        assert!(!got.contains("trace"), "locals must not be traced: {got}");
    }

    #[test]
    fn address_of_is_elided() {
        let got = instr_main("int* p; int* q = &p[3];", "");
        assert!(!got.contains("trace"), "{got}");
    }

    #[test]
    fn sizeof_is_unevaluated() {
        let got = instr_main("int* p; size_t n = sizeof(*p);", "");
        assert!(!got.contains("trace"), "{got}");
    }

    #[test]
    fn nested_member_chain_reads_interior_pointers() {
        let got = instr_main(
            "Pair* a; a->first[0] = 1;",
            "struct Pair { int* first; int* second; };",
        );
        // The interior pointer load is a read; the element store a write.
        assert!(got.contains("traceW(traceR(a->first)[0]) = 1;"), "{got}");
    }

    #[test]
    fn compound_assign_is_rmw() {
        let got = instr_main("double* p; p[2] += 1.0;", "");
        assert!(got.contains("traceRW(p[2]) += 1.0;"), "{got}");
    }

    #[test]
    fn reads_in_conditions_and_args() {
        let got = instr_main("int* p; if (p[0] < 3) { f(p[1]); }", "int f(int x);");
        assert!(got.contains("(traceR(p[0]) < 3)"), "{got}");
        assert!(got.contains("f(traceR(p[1]))"), "{got}");
    }

    #[test]
    fn cuda_calls_replaced_by_default() {
        let got = instr_main(
            "double* p; cudaMallocManaged((void**)&p, 8); cudaFree(p);",
            "",
        );
        assert!(got.contains("trcMallocManaged((void**)(&p), 8)"), "{got}");
        assert!(got.contains("trcFree(p)"), "{got}");
    }

    #[test]
    fn replace_pragma_overrides() {
        let src = r#"
            #pragma xpl replace cudaMalloc
            int myMalloc(void** p, size_t n);
            int main() { double* p; cudaMalloc((void**)&p, 64); return 0; }
        "#;
        let prog = parse(src).unwrap();
        let inst = instrument(&prog);
        assert_eq!(inst.replacements["cudaMalloc"], "myMalloc");
        let text = unparse(&inst.program);
        assert!(text.contains("myMalloc((void**)(&p), 64)"), "{text}");
    }

    #[test]
    fn kernel_launch_wrapping() {
        let src = r#"
            #pragma xpl replace kernel-launch
            void traceKernelLaunch(int grd, int blk, char* kernel);
            __global__ void k(double* p) { p[0] = 1.0; }
            int main() { double* p; k<<<1, 32>>>(p); return 0; }
        "#;
        let prog = parse(src).unwrap();
        let inst = instrument(&prog);
        assert_eq!(inst.kernel_wrapper.as_deref(), Some("traceKernelLaunch"));
        let text = unparse(&inst.program);
        assert!(
            text.contains("traceKernelLaunch(1, 32, \"k\", p)"),
            "{text}"
        );
        // The kernel body itself is instrumented too.
        assert!(text.contains("traceW(p[0]) = 1.0;"), "{text}");
    }

    #[test]
    fn diagnostic_pragma_expands_pointers_recursively() {
        let src = r#"
            struct Pair { int* first; int* second; };
            int main() {
                Pair* a;
                int* z;
            #pragma xpl diagnostic tracePrint(out; a, z)
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        let inst = instrument(&prog);
        let f = inst.program.func("main").unwrap();
        let call = f.body.as_ref().unwrap().iter().find_map(|s| match s {
            Stmt::Expr(e @ Expr::Call(name, _), _) if name == "tracePrint" => Some(e),
            _ => None,
        });
        let text = unparse_expr(call.expect("diagnostic call inserted"));
        // Matches the paper's example expansion.
        assert!(
            text.contains("XplAllocData(a, \"a\", sizeof(struct Pair))"),
            "{text}"
        );
        assert!(
            text.contains("XplAllocData(a->first, \"a->first\", sizeof(int))"),
            "{text}"
        );
        assert!(
            text.contains("XplAllocData(a->second, \"a->second\", sizeof(int))"),
            "{text}"
        );
        assert!(
            text.contains("XplAllocData(z, \"z\", sizeof(int))"),
            "{text}"
        );
        assert!(text.starts_with("tracePrint(out, "), "{text}");
    }

    #[test]
    fn recursive_struct_expansion_terminates() {
        let src = r#"
            struct Node { int* value; Node* next; };
            int main() {
                Node* head;
            #pragma xpl diagnostic trc(out; head)
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        let inst = instrument(&prog);
        let text = unparse(&inst.program);
        // head, head->value, head->next — but not head->next->next
        // ("unless there is type repetition", §III-B).
        assert!(text.contains("\"head->next\""), "{text}");
        assert!(!text.contains("head->next->next"), "{text}");
    }

    #[test]
    fn instrumented_output_reparses() {
        let src = r#"
            struct Pair { int* first; int* second; };
            __global__ void k(double* p, int n) {
                int i = threadIdx.x;
                if (i < n) { p[i] = p[i] * 2.0; }
            }
            int main() {
                double* p;
                cudaMallocManaged((void**)&p, 100 * sizeof(double));
                for (int i = 0; i < 100; i++) { p[i] = 1.0; }
                k<<<1, 100>>>(p, 100);
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        let inst = instrument(&prog);
        let text = unparse(&inst.program);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        let _ = instrument(&reparsed);
    }
}
