//! Apply a placement plan to a MiniCU program by source rewriting.
//!
//! The optimizer traces a baseline run, decides on per-allocation
//! actions, and needs those actions *in the program text* so the next
//! run executes them — the mechanized version of the paper's "edit the
//! source per the diagnostics" workflow (§III-A):
//!
//! * `Advise` / `Prefetch` become a `cudaMemAdvise` /
//!   `cudaMemPrefetchAsync` call injected right after the allocation
//!   site, with the exact byte size observed in the baseline trace;
//! * `Split` performs the paper's LULESH domain-duplication remedy: a
//!   device-only twin allocation plus staging copies around every kernel
//!   launch that uses the variable, with kernel arguments redirected to
//!   the twin. The managed original stays authoritative at every
//!   statement boundary, so program results are unchanged by
//!   construction.
//!
//! Plan items address allocations by *site index*: the n-th allocation
//! call in `main`, in source order. That equals the n-th traced
//! allocation (SMT serial) exactly when every site executes once, in
//! order — so sites nested in loops or branches are rejected rather than
//! silently mismapped.

use xplacer_core::plan::PlanAction;
use xplacer_lang::ast::*;

/// What kind of allocation call a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `cudaMallocManaged((void**)&v, n)`
    Managed,
    /// `cudaMalloc((void**)&v, n)`
    Device,
    /// `v = (T*)malloc(n)`
    Host,
}

/// One allocation site found in `main`.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// The variable the allocation lands in.
    pub var: String,
    pub kind: SiteKind,
    /// True when the site sits inside a loop or branch: it may run zero
    /// or many times, so site order no longer matches trace order.
    pub conditional: bool,
}

/// One action bound to an allocation site.
#[derive(Debug, Clone)]
pub struct SitePlan {
    /// Index into [`alloc_sites`] order.
    pub site: usize,
    pub action: PlanAction,
    /// Exact allocation size in bytes, from the baseline trace.
    pub size: u64,
}

/// Scan `main` for allocation sites, in source order.
pub fn alloc_sites(prog: &Program) -> Vec<AllocSite> {
    let mut out = Vec::new();
    if let Some(f) = prog.func("main") {
        if let Some(body) = &f.body {
            scan_stmts(body, false, &mut out);
        }
    }
    out
}

fn scan_stmts(stmts: &[Stmt], conditional: bool, out: &mut Vec<AllocSite>) {
    for s in stmts {
        match s {
            Stmt::Expr(e, _) => {
                if let Some((var, kind)) = site_of_expr(e) {
                    out.push(AllocSite {
                        var,
                        kind,
                        conditional,
                    });
                }
            }
            Stmt::Decl(d) => {
                if let Some(init) = &d.init {
                    if calls_host_malloc(init) {
                        out.push(AllocSite {
                            var: d.name.clone(),
                            kind: SiteKind::Host,
                            conditional,
                        });
                    }
                }
            }
            Stmt::Block(b) => scan_stmts(b, conditional, out),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                scan_stmts(then_branch, true, out);
                scan_stmts(else_branch, true, out);
            }
            Stmt::While { body, .. } => scan_stmts(body, true, out),
            Stmt::For { init, body, .. } => {
                if let Some(init) = init {
                    scan_stmts(std::slice::from_ref(init), true, out);
                }
                scan_stmts(body, true, out);
            }
            _ => {}
        }
    }
}

/// `cudaMalloc`-family call statement or host-malloc assignment.
fn site_of_expr(e: &Expr) -> Option<(String, SiteKind)> {
    match e {
        Expr::Call(name, args) => {
            let kind = match name.as_str() {
                "cudaMallocManaged" | "trcMallocManaged" => SiteKind::Managed,
                "cudaMalloc" | "trcMalloc" => SiteKind::Device,
                _ => return None,
            };
            out_var(args.first()?).map(|v| (v, kind))
        }
        Expr::Assign(AssignOp::Set, lhs, rhs) => {
            if let (Expr::Ident(v), true) = (lhs.as_ref(), calls_host_malloc(rhs)) {
                Some((v.clone(), SiteKind::Host))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The `v` of `(void**)&v` / `&v` (the malloc out-parameter).
fn out_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Cast(_, inner) => out_var(inner),
        Expr::Unary(UnOp::Addr, inner) => match inner.as_ref() {
            Expr::Ident(v) => Some(v.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn calls_host_malloc(e: &Expr) -> bool {
    match e {
        Expr::Call(name, _) => name == "malloc" || name == "trcHostMalloc",
        Expr::Cast(_, inner) => calls_host_malloc(inner),
        _ => false,
    }
}

/// Suffix of the device twin a `Split` introduces.
pub const SPLIT_SUFFIX: &str = "__xpl_gpu";

fn device_int(d: hetsim::Device) -> i64 {
    match d {
        hetsim::Device::Cpu => -1,
        hetsim::Device::Gpu(g) => g as i64,
    }
}

fn advise_ints(a: hetsim::MemAdvise) -> Result<(i64, i64), String> {
    use hetsim::MemAdvise as A;
    Ok(match a {
        A::SetReadMostly => (1, 0),
        A::SetPreferredLocation(d) => (3, device_int(d)),
        A::SetAccessedBy(d) => (5, device_int(d)),
        other => return Err(format!("optimizer plans never unset advice ({other:?})")),
    })
}

/// Rewrite `prog` (the *uninstrumented* source AST) per `plan`.
///
/// Fails — rather than mismap — when a site index is out of range, a
/// site is conditional, or an action targets a site kind it cannot apply
/// to (hints and splits need managed memory).
pub fn apply_plan(prog: &Program, plan: &[SitePlan]) -> Result<Program, String> {
    let sites = alloc_sites(prog);
    let mut split_vars: Vec<String> = Vec::new();
    for p in plan {
        let site = sites.get(p.site).ok_or_else(|| {
            format!(
                "plan targets allocation site #{} but main has only {}",
                p.site,
                sites.len()
            )
        })?;
        if site.conditional {
            return Err(format!(
                "allocation site #{} (`{}`) is inside a loop or branch; \
                 site order cannot be mapped to trace order",
                p.site, site.var
            ));
        }
        if site.kind != SiteKind::Managed {
            return Err(format!(
                "action {} targets `{}`, which is not managed memory",
                p.action, site.var
            ));
        }
        if p.action == PlanAction::Split {
            split_vars.push(site.var.clone());
        }
    }

    let mut items = Vec::with_capacity(prog.items.len());
    for item in &prog.items {
        items.push(match item {
            Item::Func(f) if f.name == "main" => {
                let mut next_site = 0usize;
                let body = f.body.as_ref().map(|b| {
                    let mut rw = Rewriter {
                        prog,
                        sites: &sites,
                        plan,
                        split_vars: &split_vars,
                        next_site: &mut next_site,
                    };
                    rw.stmts(b)
                });
                Item::Func(Func {
                    qualifiers: f.qualifiers.clone(),
                    ret: f.ret.clone(),
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body,
                })
            }
            other => other.clone(),
        });
    }
    Ok(Program { items })
}

struct Rewriter<'a> {
    prog: &'a Program,
    sites: &'a [AllocSite],
    plan: &'a [SitePlan],
    split_vars: &'a [String],
    next_site: &'a mut usize,
}

impl Rewriter<'_> {
    fn stmts(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        // Track the site counter exactly like the scanner so indices line
        // up; conditional sites were rejected up front, so the recursion
        // into branches below can reuse the same counter unconcerned.
        match s {
            Stmt::Expr(e, _) => {
                if let Some(launch_stmts) = self.rewrite_launch(e) {
                    out.extend(launch_stmts);
                    return;
                }
                out.push(s.clone());
                if site_of_expr(e).is_some() {
                    let here = *self.next_site;
                    *self.next_site += 1;
                    self.inject_after_site(here, out);
                }
            }
            Stmt::Decl(d) => {
                out.push(s.clone());
                if let Some(init) = &d.init {
                    if calls_host_malloc(init) {
                        *self.next_site += 1;
                    }
                }
            }
            Stmt::Block(b) => out.push(Stmt::Block(self.stmts(b))),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_branch: self.stmts(then_branch),
                else_branch: self.stmts(else_branch),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: self.stmts(body),
            }),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // Recurse into the init so the site counter tracks the
                // scanner (which visits init before body). A site there
                // is conditional, hence never targeted, hence the
                // rewrite is 1:1 — no injection can widen it.
                let init = init.as_ref().map(|i| {
                    let v = self.stmts(std::slice::from_ref(i.as_ref()));
                    debug_assert_eq!(v.len(), 1, "for-init rewrites 1:1");
                    Box::new(v.into_iter().next().expect("for-init kept"))
                });
                out.push(Stmt::For {
                    init,
                    cond: cond.clone(),
                    step: step.clone(),
                    body: self.stmts(body),
                });
            }
            other => out.push(other.clone()),
        }
    }

    /// Emit the hint calls (and split twin) a site's plan entries ask for.
    fn inject_after_site(&mut self, site: usize, out: &mut Vec<Stmt>) {
        let var = &self.sites[site].var;
        // Advise before prefetch: hints shape what the prefetch moves.
        let mut entries: Vec<&SitePlan> = self.plan.iter().filter(|p| p.site == site).collect();
        entries.sort_by_key(|p| match p.action {
            PlanAction::Advise(_) => 0,
            PlanAction::Prefetch(_) => 1,
            PlanAction::Split => 2,
        });
        for p in entries {
            match p.action {
                PlanAction::Advise(a) => {
                    let (advice, dev) = advise_ints(a).expect("validated in apply_plan");
                    out.push(Stmt::Expr(
                        Expr::call(
                            "cudaMemAdvise",
                            vec![
                                Expr::ident(var),
                                Expr::IntLit(p.size as i64),
                                Expr::IntLit(advice),
                                Expr::IntLit(dev),
                            ],
                        ),
                        Span::default(),
                    ));
                }
                PlanAction::Prefetch(d) => {
                    out.push(Stmt::Expr(
                        Expr::call(
                            "cudaMemPrefetchAsync",
                            vec![
                                Expr::ident(var),
                                Expr::IntLit(p.size as i64),
                                Expr::IntLit(device_int(d)),
                            ],
                        ),
                        Span::default(),
                    ));
                }
                PlanAction::Split => {
                    let twin = format!("{var}{SPLIT_SUFFIX}");
                    let ty = self.decl_type_of(var).unwrap_or(Type::Int.ptr());
                    out.push(Stmt::Decl(VarDecl {
                        ty: ty.clone(),
                        name: twin.clone(),
                        init: None,
                        span: Span::default(),
                    }));
                    out.push(Stmt::Expr(
                        Expr::call(
                            "cudaMalloc",
                            vec![
                                Expr::Cast(
                                    Type::Void.ptr().ptr(),
                                    Box::new(Expr::Unary(UnOp::Addr, Box::new(Expr::ident(&twin)))),
                                ),
                                Expr::IntLit(p.size as i64),
                            ],
                        ),
                        Span::default(),
                    ));
                }
            }
        }
    }

    /// For a kernel launch using split variables: stage in, redirect the
    /// arguments to the device twins, stage out. Returns `None` when the
    /// statement is not a launch touching any split variable.
    fn rewrite_launch(&self, e: &Expr) -> Option<Vec<Stmt>> {
        let Expr::KernelLaunch {
            name,
            grid,
            block,
            shmem,
            stream,
            args,
        } = e
        else {
            return None;
        };
        let used: Vec<&String> = self
            .split_vars
            .iter()
            .filter(|v| args.iter().any(|a| matches!(a, Expr::Ident(n) if n == *v)))
            .collect();
        if used.is_empty() {
            return None;
        }
        let size_of = |v: &str| {
            self.plan
                .iter()
                .find(|p| p.action == PlanAction::Split && self.sites[p.site].var == v)
                .map(|p| p.size)
                .unwrap_or(0)
        };
        let mut stmts = Vec::new();
        // Stage the current managed contents into each twin (H2D)...
        for v in &used {
            stmts.push(Stmt::Expr(
                Expr::call(
                    "cudaMemcpy",
                    vec![
                        Expr::ident(&format!("{v}{SPLIT_SUFFIX}")),
                        Expr::ident(v),
                        Expr::IntLit(size_of(v) as i64),
                        Expr::IntLit(1), // cudaMemcpyHostToDevice
                    ],
                ),
                Span::default(),
            ));
        }
        // ...launch against the twins...
        let new_args = args
            .iter()
            .map(|a| match a {
                Expr::Ident(n) if self.split_vars.contains(n) => {
                    Expr::ident(&format!("{n}{SPLIT_SUFFIX}"))
                }
                other => other.clone(),
            })
            .collect();
        stmts.push(Stmt::Expr(
            Expr::KernelLaunch {
                name: name.clone(),
                grid: grid.clone(),
                block: block.clone(),
                shmem: shmem.clone(),
                stream: stream.clone(),
                args: new_args,
            },
            Span::default(),
        ));
        // ...and write results back (D2H) so the managed original stays
        // authoritative for host code, diagnostics, and later launches.
        for v in &used {
            stmts.push(Stmt::Expr(
                Expr::call(
                    "cudaMemcpy",
                    vec![
                        Expr::ident(v),
                        Expr::ident(&format!("{v}{SPLIT_SUFFIX}")),
                        Expr::IntLit(size_of(v) as i64),
                        Expr::IntLit(2), // cudaMemcpyDeviceToHost
                    ],
                ),
                Span::default(),
            ));
        }
        Some(stmts)
    }

    fn decl_type_of(&self, var: &str) -> Option<Type> {
        let f = self.prog.func("main")?;
        fn find(stmts: &[Stmt], var: &str) -> Option<Type> {
            for s in stmts {
                match s {
                    Stmt::Decl(d) if d.name == var => return Some(d.ty.clone()),
                    Stmt::Block(b) => {
                        if let Some(t) = find(b, var) {
                            return Some(t);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(f.body.as_ref()?, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xplacer_lang::parser::parse;
    use xplacer_lang::unparse::unparse;

    const PROG: &str = r#"
        __global__ void k(int* a, int* b, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { a[i] = a[i] + b[i]; }
        }
        int main() {
            int* p;
            int* q;
            int* h;
            cudaMallocManaged((void**)&p, 64 * sizeof(int));
            cudaMalloc((void**)&q, 64 * sizeof(int));
            h = (int*)malloc(64 * sizeof(int));
            for (int i = 0; i < 64; i++) { p[i] = i; }
            k<<<2, 32>>>(p, p, 64);
            cudaDeviceSynchronize();
            free(h);
            return 0;
        }
    "#;

    #[test]
    fn sites_found_in_source_order() {
        let prog = parse(PROG).unwrap();
        let sites = alloc_sites(&prog);
        assert_eq!(sites.len(), 3, "{sites:?}");
        assert_eq!(
            (sites[0].var.as_str(), sites[0].kind),
            ("p", SiteKind::Managed)
        );
        assert_eq!(
            (sites[1].var.as_str(), sites[1].kind),
            ("q", SiteKind::Device)
        );
        assert_eq!(
            (sites[2].var.as_str(), sites[2].kind),
            ("h", SiteKind::Host)
        );
        assert!(sites.iter().all(|s| !s.conditional));
    }

    #[test]
    fn conditional_sites_are_flagged_and_rejected() {
        let src = r#"
            int main() {
                int* p;
                for (int i = 0; i < 2; i++) { cudaMallocManaged((void**)&p, 16); }
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        let sites = alloc_sites(&prog);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].conditional);
        let e = apply_plan(
            &prog,
            &[SitePlan {
                site: 0,
                action: PlanAction::Prefetch(hetsim::Device::GPU0),
                size: 16,
            }],
        )
        .unwrap_err();
        assert!(e.contains("loop or branch"), "{e}");
    }

    #[test]
    fn advise_and_prefetch_injected_after_the_malloc() {
        let prog = parse(PROG).unwrap();
        let rewritten = apply_plan(
            &prog,
            &[
                SitePlan {
                    site: 0,
                    action: PlanAction::Advise(hetsim::MemAdvise::SetReadMostly),
                    size: 256,
                },
                SitePlan {
                    site: 0,
                    action: PlanAction::Prefetch(hetsim::Device::GPU0),
                    size: 256,
                },
            ],
        )
        .unwrap();
        let text = unparse(&rewritten);
        let malloc_at = text.find("cudaMallocManaged").unwrap();
        let advise_at = text.find("cudaMemAdvise(p, 256, 1, 0)").expect(&text);
        let prefetch_at = text.find("cudaMemPrefetchAsync(p, 256, 0)").expect(&text);
        assert!(malloc_at < advise_at && advise_at < prefetch_at, "{text}");
        // The rewrite must still be valid MiniCU.
        parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn split_stages_copies_around_launches() {
        let prog = parse(PROG).unwrap();
        let rewritten = apply_plan(
            &prog,
            &[SitePlan {
                site: 0,
                action: PlanAction::Split,
                size: 256,
            }],
        )
        .unwrap();
        let text = unparse(&rewritten);
        assert!(text.contains("int* p__xpl_gpu;"), "{text}");
        assert!(
            text.contains("cudaMalloc((void**)(&p__xpl_gpu), 256)"),
            "{text}"
        );
        assert!(text.contains("cudaMemcpy(p__xpl_gpu, p, 256, 1)"), "{text}");
        // Both identical args redirected, one staging pair total.
        assert!(
            text.contains("k<<<2, 32>>>(p__xpl_gpu, p__xpl_gpu, 64)"),
            "{text}"
        );
        assert!(text.contains("cudaMemcpy(p, p__xpl_gpu, 256, 2)"), "{text}");
        assert_eq!(text.matches("cudaMemcpy(").count(), 2, "{text}");
        parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
    }

    #[test]
    fn actions_on_unmanaged_sites_are_rejected() {
        let prog = parse(PROG).unwrap();
        for site in [1usize, 2] {
            let e = apply_plan(
                &prog,
                &[SitePlan {
                    site,
                    action: PlanAction::Advise(hetsim::MemAdvise::SetReadMostly),
                    size: 256,
                }],
            )
            .unwrap_err();
            assert!(e.contains("not managed"), "{e}");
        }
        let e = apply_plan(
            &prog,
            &[SitePlan {
                site: 9,
                action: PlanAction::Split,
                size: 256,
            }],
        )
        .unwrap_err();
        assert!(e.contains("only 3"), "{e}");
    }

    #[test]
    fn empty_plan_is_identity() {
        let prog = parse(PROG).unwrap();
        let rewritten = apply_plan(&prog, &[]).unwrap();
        assert_eq!(unparse(&rewritten), unparse(&prog));
    }
}
