//! # xplacer-interp — executes MiniCU programs on the simulator
//!
//! The back half of the XPlacer toolchain: where the paper compiles the
//! instrumented source with nvcc and links the runtime library, this
//! crate *interprets* the (instrumented or original) MiniCU AST against a
//! [`hetsim::Machine`]. Heap accesses are performed — and costed — by the
//! simulator; the `trace*`/`trc*` wrapper calls that the instrumentation
//! pass inserted drive an [`xplacer_core::Tracer`] exactly like the
//! paper's runtime library, including `tracePrint` diagnostics.
//!
//! Running the *original* program corresponds to the uninstrumented
//! baseline; running the *instrumented* program produces the trace.

use std::collections::HashMap;

use hetsim::{Addr, AllocKind, CopyKind, Device, Machine, MemAdvise, SimError};
use xplacer_core::{diagnostic, Tracer, XplAllocData};
use xplacer_lang::ast::*;
use xplacer_lang::sema::{field_offset, field_type, size_of, TypeEnv};

/// Execution error (program bug or unsupported construct).
#[derive(Debug, Clone, PartialEq)]
pub struct RunError {
    pub message: String,
    /// The structured simulator fault behind this error, when the program
    /// trapped in the machine (OOB, use-after-free, ...). Lets tools like
    /// `xplacer check` classify the defect instead of parsing the message.
    pub sim: Option<SimError>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError {
            message: e.to_string(),
            sim: Some(e),
        }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, RunError> {
    Err(RunError {
        message: msg.into(),
        sim: None,
    })
}

type RResult<T> = Result<T, RunError>;

/// A pointer value.
#[derive(Debug, Clone, PartialEq)]
pub enum PtrVal {
    Null,
    /// A simulated heap address with its pointee type.
    Heap {
        addr: Addr,
        ty: Type,
    },
    /// Address of an interpreter local (supports `&p` out-params like
    /// `cudaMalloc((void**)&p, n)`).
    Local {
        frame: usize,
        name: String,
    },
}

/// Runtime values.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Double(f64),
    Str(String),
    Ptr(PtrVal),
    Alloc(XplAllocData),
    Void,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Double(v) => *v != 0.0,
            Value::Ptr(PtrVal::Null) => false,
            Value::Ptr(_) => true,
            Value::Str(s) => !s.is_empty(),
            _ => false,
        }
    }

    fn as_int(&self) -> RResult<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Double(v) => Ok(*v as i64),
            Value::Ptr(PtrVal::Null) => Ok(0),
            Value::Ptr(PtrVal::Heap { addr, .. }) => Ok(*addr as i64),
            other => err(format!("expected integer, got {other:?}")),
        }
    }

    fn as_double(&self) -> RResult<f64> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::Double(v) => Ok(*v),
            other => err(format!("expected number, got {other:?}")),
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
enum Place {
    Heap { addr: Addr, ty: Type },
    Local { frame: usize, name: String },
}

#[allow(dead_code)] // Normal's value is kept for debugging clarity
enum Flow {
    /// Fall through to the next statement (the value is only observed
    /// by expression statements' tests; keep it simple and drop it).
    Normal(Value),
    Break,
    Continue,
    Return(Value),
}

struct Frame {
    scopes: Vec<HashMap<String, Value>>,
}

struct KState {
    tid: usize,
    block: i64,
    grid: i64,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// `main`'s return value.
    pub exit: i64,
    /// Captured `printf`/`tracePrint` output.
    pub stdout: String,
    /// Simulated time.
    pub elapsed_ns: f64,
    /// Simulator counters.
    pub stats: hetsim::Stats,
}

/// The interpreter.
pub struct Interp {
    prog: Program,
    /// The simulated node the program runs on.
    pub machine: Machine,
    /// The runtime tracer, driven by the instrumented `trace*`/`trc*`
    /// calls (not by a machine hook — this is source-level tracing).
    pub tracer: Tracer,
    frames: Vec<Frame>,
    /// Captured program output.
    pub stdout: String,
    kernel: Option<KState>,
    steps: u64,
    /// Abort after this many evaluation steps (runaway-loop guard).
    pub max_steps: u64,
    /// Anti-pattern reports collected at each `tracePrint` call (the
    /// paper's diagnostic points), in program order.
    pub reports: Vec<xplacer_core::Report>,
}

impl Interp {
    pub fn new(prog: Program, machine: Machine) -> Self {
        Interp {
            prog,
            machine,
            tracer: Tracer::new(),
            frames: vec![Frame {
                scopes: vec![HashMap::new()],
            }],
            stdout: String::new(),
            kernel: None,
            steps: 0,
            max_steps: 2_000_000_000,
            reports: Vec::new(),
        }
    }

    /// Execute `main()` and collect the outcome.
    pub fn run_main(&mut self) -> RResult<Outcome> {
        // Initialize globals in declaration order.
        let globals: Vec<VarDecl> = self
            .prog
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Global(g) => Some(g.clone()),
                _ => None,
            })
            .collect();
        for g in globals {
            let v = match &g.init {
                Some(e) => {
                    let v = self.eval(e)?;
                    coerce(v, &g.ty)
                }
                None => default_value(&g.ty),
            };
            self.frames[0].scopes[0].insert(g.name.clone(), v);
        }
        let exit = self.call("main", vec![])?.as_int().unwrap_or(0);
        Ok(Outcome {
            exit,
            stdout: self.stdout.clone(),
            elapsed_ns: self.machine.elapsed_ns(),
            stats: self.machine.stats.clone(),
        })
    }

    fn tick(&mut self) -> RResult<()> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return err("step budget exceeded (runaway loop?)");
        }
        Ok(())
    }

    fn cur_dev(&self) -> Device {
        if self.kernel.is_some() {
            Device::GPU0
        } else {
            Device::Cpu
        }
    }

    // ------------------------------------------------------------------
    // Variables
    // ------------------------------------------------------------------

    fn declare(&mut self, name: &str, v: Value) {
        self.frames
            .last_mut()
            .expect("frame")
            .scopes
            .last_mut()
            .expect("scope")
            .insert(name.to_string(), v);
    }

    fn lookup_var(&self, name: &str) -> Option<(usize, Value)> {
        let top = self.frames.len() - 1;
        for scope in self.frames[top].scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some((top, v.clone()));
            }
        }
        if top != 0 {
            for scope in self.frames[0].scopes.iter().rev() {
                if let Some(v) = scope.get(name) {
                    return Some((0, v.clone()));
                }
            }
        }
        None
    }

    fn set_var(&mut self, frame: usize, name: &str, v: Value) -> RResult<()> {
        for scope in self.frames[frame].scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = v;
                return Ok(());
            }
        }
        err(format!("assignment to undeclared variable `{name}`"))
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// Call a function by name with evaluated arguments.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> RResult<Value> {
        if let Some(v) = self.builtin(name, &args)? {
            return Ok(v);
        }
        let Some(f) = self.prog.func(name).cloned() else {
            return err(format!("call to unknown function `{name}`"));
        };
        let Some(body) = f.body.clone() else {
            return err(format!("call to function `{name}` with no body"));
        };
        if f.params.len() != args.len() {
            return err(format!(
                "`{name}` expects {} arguments, got {}",
                f.params.len(),
                args.len()
            ));
        }
        if self.frames.len() > 64 {
            return err("call stack overflow");
        }
        let mut scope = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            scope.insert(p.name.clone(), coerce(a, &p.ty));
        }
        self.frames.push(Frame {
            scopes: vec![scope],
        });
        let flow = self.exec_block(&body);
        self.frames.pop();
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(&mut self, stmts: &[Stmt]) -> RResult<Flow> {
        self.frames.last_mut().unwrap().scopes.push(HashMap::new());
        let mut result = Flow::Normal(Value::Void);
        for s in stmts {
            match self.exec_stmt(s) {
                Ok(Flow::Normal(_)) => {}
                Ok(other) => {
                    result = other;
                    break;
                }
                Err(e) => {
                    self.frames.last_mut().unwrap().scopes.pop();
                    return Err(e);
                }
            }
        }
        self.frames.last_mut().unwrap().scopes.pop();
        Ok(result)
    }

    /// Report a known statement position to the machine's hook so runtime
    /// diagnostics can point into the source. Unknown (synthesized) spans
    /// keep the previous site.
    fn note_site(&mut self, sp: Span) {
        if sp.is_known() {
            self.machine.note_site(sp.line, sp.col);
        }
    }

    fn exec_stmt(&mut self, s: &Stmt) -> RResult<Flow> {
        self.tick()?;
        match s {
            Stmt::Decl(d) => {
                self.note_site(d.span);
                let v = match &d.init {
                    Some(e) => {
                        let v = self.eval(e)?;
                        // `int* a = (int*)malloc(n)` names the allocation
                        // "a" in runtime diagnostics, matching the label
                        // cudaMalloc gets from its out-parameter.
                        if let (true, Value::Ptr(pv)) = (init_is_allocator(e), &v) {
                            let addr = ptr_addr(pv);
                            if addr != 0 {
                                self.machine.note_alloc_label(addr, &d.name);
                            }
                        }
                        coerce(v, &d.ty)
                    }
                    None => default_value(&d.ty),
                };
                self.declare(&d.name, v);
                Ok(Flow::Normal(Value::Void))
            }
            Stmt::Expr(e, sp) => {
                self.note_site(*sp);
                let v = self.eval(e)?;
                Ok(Flow::Normal(v))
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_branch)
                } else {
                    self.exec_block(else_branch)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.truthy() {
                    self.tick()?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal(Value::Void))
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(flow) = self.try_for_sweep(init, cond, step, body)? {
                    return Ok(flow);
                }
                self.frames.last_mut().unwrap().scopes.push(HashMap::new());
                let run = (|| -> RResult<Flow> {
                    if let Some(i) = init {
                        self.exec_stmt(i)?;
                    }
                    loop {
                        self.tick()?;
                        if let Some(c) = cond {
                            if !self.eval(c)?.truthy() {
                                break;
                            }
                        }
                        match self.exec_block(body)? {
                            Flow::Break => break,
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                            _ => {}
                        }
                        if let Some(st) = step {
                            self.eval(st)?;
                        }
                    }
                    Ok(Flow::Normal(Value::Void))
                })();
                self.frames.last_mut().unwrap().scopes.pop();
                run
            }
            Stmt::Pragma(_) => Ok(Flow::Normal(Value::Void)), // inert at runtime
        }
    }

    // ------------------------------------------------------------------
    // Array-sweep fast path
    // ------------------------------------------------------------------

    /// Recognize `for (i = a; i < n; i++)` loops whose body is a single
    /// constant fill (`p[i] = c;`) or additive reduction (`acc += p[i];`
    /// / `acc = acc + p[i];`, possibly `trace*`-wrapped by the
    /// instrumentation pass) over a scalar-typed heap array, and execute
    /// them through the machine's bulk range APIs — one UM-driver
    /// resolution per page instead of one per element — plus one
    /// vectorized tracer call when instrumented. Returns `None` (and has
    /// no side effects) whenever the loop doesn't match or the range
    /// would fault, so the generic loop reproduces errors and partial
    /// effects exactly; the conformance suite runs programs with bulk
    /// disabled to check the two paths agree bit-for-bit.
    fn try_for_sweep(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &[Stmt],
    ) -> RResult<Option<Flow>> {
        if !self.machine.bulk_enabled() {
            return Ok(None);
        }
        // init: `int i = <lit>` (loop-scoped) or `i = <lit>` (existing).
        let (var, start, declared) = match init.as_deref() {
            Some(Stmt::Decl(d)) if matches!(d.ty, Type::Int | Type::SizeT) => {
                match d.init.as_ref().and_then(const_int) {
                    Some(v) => (d.name.clone(), v, true),
                    None => return Ok(None),
                }
            }
            Some(Stmt::Expr(Expr::Assign(AssignOp::Set, lhs, rhs), _)) => {
                match (&**lhs, const_int(rhs)) {
                    (Expr::Ident(n), Some(v)) => (n.clone(), v, false),
                    _ => return Ok(None),
                }
            }
            _ => return Ok(None),
        };
        if !declared && self.lookup_var(&var).is_none() {
            return Ok(None);
        }
        // cond: `i < n` with n a literal or an int variable the body
        // cannot touch (the body only writes `p[i]` or `acc`).
        let is_var = |e: &Expr| matches!(e, Expr::Ident(n) if *n == var);
        let mut limit_name = None;
        let limit = match cond {
            Some(Expr::Binary(BinOp::Lt, a, b)) if is_var(a) => match &**b {
                Expr::IntLit(v) => *v,
                Expr::Ident(m) if *m != var => match self.lookup_var(m) {
                    Some((_, Value::Int(v))) => {
                        limit_name = Some(m.clone());
                        v
                    }
                    _ => return Ok(None),
                },
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // step: `i++` / `++i` / `i += 1` / `i = i + 1`.
        let step_ok = match step {
            Some(Expr::Postfix(PostOp::Inc, b)) => is_var(b),
            Some(Expr::Unary(UnOp::PreInc, b)) => is_var(b),
            Some(Expr::Assign(AssignOp::Add, lhs, rhs)) => {
                is_var(lhs) && matches!(&**rhs, Expr::IntLit(1))
            }
            Some(Expr::Assign(AssignOp::Set, lhs, rhs)) => {
                is_var(lhs)
                    && matches!(&**rhs, Expr::Binary(BinOp::Add, a, b)
                        if is_var(a) && matches!(&**b, Expr::IntLit(1)))
            }
            _ => false,
        };
        if !step_ok {
            return Ok(None);
        }
        // Body: exactly one of the two sweep shapes.
        let [Stmt::Expr(e, body_span)] = body else {
            return Ok(None);
        };
        let body_span = *body_span;
        // `p[i]`, optionally wrapped in a specific trace call.
        let indexed = |e: &Expr, wrapper: &str| -> Option<(String, bool)> {
            let (inner, traced) = match e {
                Expr::Call(n, args) if n == wrapper && args.len() == 1 => (&args[0], true),
                other => (other, false),
            };
            match inner {
                Expr::Index(b, i) if is_var(i) => match &**b {
                    Expr::Ident(arr) if *arr != var => Some((arr.clone(), traced)),
                    _ => None,
                },
                _ => None,
            }
        };
        enum Sweep {
            Fill {
                arr: String,
                traced: bool,
                val: Value,
            },
            Reduce {
                acc: String,
                arr: String,
                traced: bool,
            },
        }
        let sweep = match e {
            // `p[i] = <const>` — also matches compound `acc += p[i]`
            // spelled as AssignOp::Add below.
            Expr::Assign(AssignOp::Set, lhs, rhs) => {
                if let Some((arr, traced)) = indexed(lhs, "traceW") {
                    match const_num(rhs) {
                        Some(val) => Sweep::Fill { arr, traced, val },
                        None => return Ok(None),
                    }
                } else if let (Expr::Ident(acc), Expr::Binary(BinOp::Add, a, b)) = (&**lhs, &**rhs)
                {
                    // `acc = acc + p[i]`
                    match (&**a, indexed(b, "traceR")) {
                        (Expr::Ident(n), Some((arr, traced)))
                            if n == acc && *acc != var && arr != *acc =>
                        {
                            Sweep::Reduce {
                                acc: acc.clone(),
                                arr,
                                traced,
                            }
                        }
                        _ => return Ok(None),
                    }
                } else {
                    return Ok(None);
                }
            }
            // `acc += p[i]`
            Expr::Assign(AssignOp::Add, lhs, rhs) => match (&**lhs, indexed(rhs, "traceR")) {
                (Expr::Ident(acc), Some((arr, traced))) if *acc != var && arr != *acc => {
                    Sweep::Reduce {
                        acc: acc.clone(),
                        arr,
                        traced,
                    }
                }
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // A reduction whose bound variable IS the accumulator re-reads
        // the changing bound each iteration; only the generic loop can
        // model that.
        if let (Sweep::Reduce { acc, .. }, Some(m)) = (&sweep, &limit_name) {
            if acc == m {
                return Ok(None);
            }
        }
        // The array must be a typed scalar heap pointer.
        let arr_name = match &sweep {
            Sweep::Fill { arr, .. } | Sweep::Reduce { arr, .. } => arr.clone(),
        };
        let Some((_, Value::Ptr(PtrVal::Heap { addr, ty }))) = self.lookup_var(&arr_name) else {
            return Ok(None);
        };
        if !matches!(
            ty,
            Type::Int | Type::Float | Type::Double | Type::Char | Type::SizeT
        ) {
            return Ok(None);
        }
        if start < 0 || limit > i64::MAX / size_of(&self.prog, &ty).max(1) as i64 {
            return Ok(None);
        }
        let sz = size_of(&self.prog, &ty) as u64;
        let count = limit.saturating_sub(start).max(0) as u64;
        let addr0 = addr + start as u64 * sz;
        let dev = self.cur_dev();

        match sweep {
            Sweep::Fill { traced, val, .. } => {
                if count > 0 {
                    // The range access belongs to the body statement —
                    // the generic loop would note its span each
                    // iteration, so checkers see the same site.
                    self.note_site(body_span);
                    // An out-of-range or wrong-device range charges
                    // nothing; let the generic loop reproduce the exact
                    // partial effects and error.
                    if self.machine.write_range(addr0, sz, count).is_err() {
                        return Ok(None);
                    }
                    let mut buf = vec![0u8; (sz * count) as usize];
                    for chunk in buf.chunks_exact_mut(sz as usize) {
                        encode_scalar(&ty, &val, chunk)?;
                    }
                    self.machine.poke_bytes(addr0, &buf)?;
                    if traced {
                        self.tracer.trace_w_range(dev, addr0, sz as u32, count);
                    }
                }
            }
            Sweep::Reduce { acc, traced, .. } => {
                let Some((acc_frame, acc_val)) = self.lookup_var(&acc) else {
                    return Ok(None);
                };
                // Restrict to numeric accumulators so the fold below can
                // never fail after the machine has been charged.
                if !matches!(acc_val, Value::Int(_) | Value::Double(_)) {
                    return Ok(None);
                }
                if count > 0 {
                    self.note_site(body_span);
                    if self.machine.read_range(addr0, sz, count).is_err() {
                        return Ok(None);
                    }
                    let mut buf = vec![0u8; (sz * count) as usize];
                    self.machine.peek_bytes(addr0, &mut buf)?;
                    let mut acc_val = acc_val;
                    for chunk in buf.chunks_exact(sz as usize) {
                        acc_val = self.binop(BinOp::Add, acc_val, decode_scalar(&ty, chunk))?;
                    }
                    self.set_var(acc_frame, &acc, acc_val)?;
                    if traced {
                        self.tracer.trace_r_range(dev, addr0, sz as u32, count);
                    }
                }
            }
        }
        // The loop variable ends at the first value failing the
        // condition; a declared variable is loop-scoped and vanishes.
        if !declared {
            self.set_var(
                self.lookup_var(&var).expect("checked above").0,
                &var,
                Value::Int(limit.max(start)),
            )?;
        }
        Ok(Some(Flow::Normal(Value::Void)))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, e: &Expr) -> RResult<Value> {
        self.tick()?;
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::FloatLit(v) => Ok(Value::Double(*v)),
            Expr::StrLit(s) => Ok(Value::Str(s.clone())),
            Expr::Ident(n) => self.eval_ident(n),
            Expr::Member(b, f, false) if matches!(&**b, Expr::Ident(n) if is_cuda_builtin_struct(n)) =>
            {
                let Expr::Ident(n) = &**b else { unreachable!() };
                self.cuda_index(n, f)
            }
            Expr::Unary(UnOp::Neg, b) => match self.eval(b)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Double(v) => Ok(Value::Double(-v)),
                other => err(format!("cannot negate {other:?}")),
            },
            Expr::Unary(UnOp::Not, b) => Ok(Value::Int(!self.eval(b)?.truthy() as i64)),
            Expr::Unary(UnOp::Addr, b) => {
                let place = self.eval_place(b)?;
                Ok(match place {
                    Place::Heap { addr, ty } => Value::Ptr(PtrVal::Heap { addr, ty }),
                    Place::Local { frame, name } => Value::Ptr(PtrVal::Local { frame, name }),
                })
            }
            Expr::Unary(UnOp::Deref, _) | Expr::Index(_, _) | Expr::Member(_, _, _) => {
                let place = self.eval_place(e)?;
                self.load(&place)
            }
            Expr::Unary(op @ (UnOp::PreInc | UnOp::PreDec), b) => {
                let delta = if *op == UnOp::PreInc { 1 } else { -1 };
                self.incdec(b, delta, true)
            }
            Expr::Postfix(op, b) => {
                let delta = if *op == PostOp::Inc { 1 } else { -1 };
                self.incdec(b, delta, false)
            }
            Expr::Binary(op, a, b) => {
                match op {
                    BinOp::And => {
                        let l = self.eval(a)?;
                        if !l.truthy() {
                            return Ok(Value::Int(0));
                        }
                        return Ok(Value::Int(self.eval(b)?.truthy() as i64));
                    }
                    BinOp::Or => {
                        let l = self.eval(a)?;
                        if l.truthy() {
                            return Ok(Value::Int(1));
                        }
                        return Ok(Value::Int(self.eval(b)?.truthy() as i64));
                    }
                    _ => {}
                }
                let l = self.eval(a)?;
                let r = self.eval(b)?;
                self.binop(*op, l, r)
            }
            Expr::Assign(op, lhs, rhs) => {
                let rv = self.eval(rhs)?;
                let place = self.eval_place(lhs)?;
                let result = if *op == AssignOp::Set {
                    rv
                } else {
                    let old = self.load(&place)?;
                    let bop = match op {
                        AssignOp::Add => BinOp::Add,
                        AssignOp::Sub => BinOp::Sub,
                        AssignOp::Mul => BinOp::Mul,
                        AssignOp::Div => BinOp::Div,
                        AssignOp::Set => unreachable!(),
                    };
                    self.binop(bop, old, rv)?
                };
                self.store(&place, result.clone())?;
                Ok(result)
            }
            Expr::Cond(c, t, f) => {
                if self.eval(c)?.truthy() {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Cast(ty, b) => {
                let v = self.eval(b)?;
                Ok(cast(v, ty))
            }
            Expr::SizeofType(t) => Ok(Value::Int(size_of(&self.prog, t) as i64)),
            Expr::SizeofExpr(b) => {
                // Unevaluated: infer the type statically.
                let env = TypeEnv::new(&self.prog);
                let t = env.infer(b).unwrap_or(Type::Int);
                Ok(Value::Int(size_of(&self.prog, &t) as i64))
            }
            Expr::Call(name, args) => self.eval_call(name, args),
            Expr::KernelLaunch {
                name,
                grid,
                block,
                shmem,
                stream,
                args,
            } => {
                let g = self.eval(grid)?.as_int()?;
                let b = self.eval(block)?.as_int()?;
                if let Some(sh) = shmem {
                    // Dynamic shared memory has no cost model; evaluate
                    // for effects and validity, then ignore.
                    self.eval(sh)?.as_int()?;
                }
                // Stream 0 is the legacy default stream: synchronizing,
                // exactly like a launch with no stream clause.
                let st = match stream {
                    Some(se) => match self.eval(se)?.as_int()? {
                        0 => None,
                        s if s > 0 && (s as usize) < self.machine.stream_count() => {
                            Some(hetsim::StreamId(s as usize))
                        }
                        s => return err(format!("launch on unknown stream {s}")),
                    },
                    None => None,
                };
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.launch_kernel(name, g, b, st, vals)?;
                Ok(Value::Void)
            }
        }
    }

    fn eval_ident(&mut self, n: &str) -> RResult<Value> {
        if let Some((_, v)) = self.lookup_var(n) {
            return Ok(v);
        }
        if let Some(v) = builtin_constant(n) {
            return Ok(v);
        }
        err(format!("use of undeclared variable `{n}`"))
    }

    fn cuda_index(&self, base: &str, field: &str) -> RResult<Value> {
        let Some(k) = &self.kernel else {
            return err(format!("`{base}.{field}` outside a kernel"));
        };
        if field != "x" {
            return err(format!("only .x is supported on `{base}`"));
        }
        Ok(Value::Int(match base {
            "threadIdx" => k.tid as i64 % k.block,
            "blockIdx" => k.tid as i64 / k.block,
            "blockDim" => k.block,
            "gridDim" => k.grid,
            _ => unreachable!(),
        }))
    }

    fn incdec(&mut self, lv: &Expr, delta: i64, pre: bool) -> RResult<Value> {
        let place = self.eval_place(lv)?;
        let old = self.load(&place)?;
        let new = match &old {
            Value::Int(v) => Value::Int(v + delta),
            Value::Double(v) => Value::Double(v + delta as f64),
            Value::Ptr(PtrVal::Heap { addr, ty }) => {
                let sz = size_of(&self.prog, ty) as i64;
                Value::Ptr(PtrVal::Heap {
                    addr: (*addr as i64 + delta * sz) as Addr,
                    ty: ty.clone(),
                })
            }
            other => return err(format!("cannot increment {other:?}")),
        };
        self.store(&place, new.clone())?;
        Ok(if pre { new } else { old })
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value) -> RResult<Value> {
        use BinOp::*;
        // Pointer arithmetic.
        if let (Value::Ptr(PtrVal::Heap { addr, ty }), Value::Int(n)) = (&l, &r) {
            if matches!(op, Add | Sub) {
                let sz = size_of(&self.prog, ty) as i64;
                let off = if op == Add { *n } else { -*n } * sz;
                return Ok(Value::Ptr(PtrVal::Heap {
                    addr: (*addr as i64 + off) as Addr,
                    ty: ty.clone(),
                }));
            }
        }
        if let (Value::Int(n), Value::Ptr(PtrVal::Heap { addr, ty })) = (&l, &r) {
            if op == Add {
                let sz = size_of(&self.prog, ty) as i64;
                return Ok(Value::Ptr(PtrVal::Heap {
                    addr: (*addr as i64 + n * sz) as Addr,
                    ty: ty.clone(),
                }));
            }
        }
        if let (Value::Ptr(a), Value::Ptr(b)) = (&l, &r) {
            let av = ptr_addr(a);
            let bv = ptr_addr(b);
            return Ok(Value::Int(match op {
                Sub => av as i64 - bv as i64,
                Eq => (av == bv) as i64,
                Ne => (av != bv) as i64,
                Lt => (av < bv) as i64,
                Gt => (av > bv) as i64,
                Le => (av <= bv) as i64,
                Ge => (av >= bv) as i64,
                _ => return err("unsupported pointer operation"),
            }));
        }
        // Numeric.
        let float = matches!(l, Value::Double(_)) || matches!(r, Value::Double(_));
        if float {
            let a = l.as_double()?;
            let b = r.as_double()?;
            Ok(match op {
                Add => Value::Double(a + b),
                Sub => Value::Double(a - b),
                Mul => Value::Double(a * b),
                Div => Value::Double(a / b),
                Rem => Value::Double(a % b),
                Eq => Value::Int((a == b) as i64),
                Ne => Value::Int((a != b) as i64),
                Lt => Value::Int((a < b) as i64),
                Gt => Value::Int((a > b) as i64),
                Le => Value::Int((a <= b) as i64),
                Ge => Value::Int((a >= b) as i64),
                _ => return err("bitwise operation on floating point"),
            })
        } else {
            let a = l.as_int()?;
            let b = r.as_int()?;
            Ok(Value::Int(match op {
                Add => a.wrapping_add(b),
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        return err("integer division by zero");
                    }
                    a / b
                }
                Rem => {
                    if b == 0 {
                        return err("integer remainder by zero");
                    }
                    a % b
                }
                Eq => (a == b) as i64,
                Ne => (a != b) as i64,
                Lt => (a < b) as i64,
                Gt => (a > b) as i64,
                Le => (a <= b) as i64,
                Ge => (a >= b) as i64,
                BitAnd => a & b,
                BitOr => a | b,
                BitXor => a ^ b,
                Shl => a.wrapping_shl(b as u32),
                Shr => a.wrapping_shr(b as u32),
                And | Or => unreachable!("short-circuited"),
            }))
        }
    }

    // ------------------------------------------------------------------
    // Places (l-values)
    // ------------------------------------------------------------------

    fn eval_place(&mut self, e: &Expr) -> RResult<Place> {
        match e {
            Expr::Ident(n) => match self.lookup_var(n) {
                Some((frame, _)) => Ok(Place::Local {
                    frame,
                    name: n.clone(),
                }),
                None => err(format!("use of undeclared variable `{n}`")),
            },
            Expr::Unary(UnOp::Deref, b) => {
                let p = self.eval(b)?;
                self.ptr_to_place(p)
            }
            Expr::Index(b, i) => {
                let base = self.eval(b)?;
                let idx = self.eval(i)?.as_int()?;
                match base {
                    Value::Ptr(PtrVal::Heap { addr, ty }) => {
                        let sz = size_of(&self.prog, &ty) as i64;
                        Ok(Place::Heap {
                            addr: (addr as i64 + idx * sz) as Addr,
                            ty,
                        })
                    }
                    Value::Ptr(PtrVal::Null) => err("index through null pointer"),
                    other => err(format!("cannot index {other:?}")),
                }
            }
            Expr::Member(b, f, true) => {
                let base = self.eval(b)?;
                match base {
                    Value::Ptr(PtrVal::Heap { addr, ty }) => {
                        let Type::Struct(sname) = &ty else {
                            return err(format!("`->{f}` on non-struct pointer {ty}"));
                        };
                        let off = field_offset(&self.prog, sname, f).ok_or_else(|| RunError {
                            message: format!("no field `{f}` in struct {sname}"),
                            sim: None,
                        })?;
                        let fty = field_type(&self.prog, sname, f).unwrap().clone();
                        Ok(Place::Heap {
                            addr: addr + off,
                            ty: fty,
                        })
                    }
                    Value::Ptr(PtrVal::Null) => err("member access through null pointer"),
                    other => err(format!("cannot apply `->` to {other:?}")),
                }
            }
            Expr::Member(_, f, false) => err(format!(
                "`.{f}`: struct values are only supported through pointers"
            )),
            Expr::Call(name, args) if name == "traceR" || name == "traceW" || name == "traceRW" => {
                // Source-level instrumentation wrappers: record the access
                // in the tracer, then behave as the inner l-value.
                let inner = args
                    .first()
                    .ok_or_else(|| RunError {
                        message: format!("{name} requires an argument"),
                        sim: None,
                    })?
                    .clone();
                let place = self.eval_place(&inner)?;
                if let Place::Heap { addr, ty } = &place {
                    let size = size_of(&self.prog, ty) as u32;
                    let dev = self.cur_dev();
                    match name.as_str() {
                        "traceR" => self.tracer.trace_r(dev, *addr, size),
                        "traceW" => self.tracer.trace_w(dev, *addr, size),
                        _ => self.tracer.trace_rw(dev, *addr, size),
                    }
                }
                Ok(place)
            }
            Expr::Cast(_, b) => self.eval_place(b),
            other => err(format!("not an l-value: {other:?}")),
        }
    }

    fn ptr_to_place(&mut self, p: Value) -> RResult<Place> {
        match p {
            Value::Ptr(PtrVal::Heap { addr, ty }) => Ok(Place::Heap { addr, ty }),
            Value::Ptr(PtrVal::Local { frame, name }) => Ok(Place::Local { frame, name }),
            Value::Ptr(PtrVal::Null) => err("dereference of null pointer"),
            other => err(format!("cannot dereference {other:?}")),
        }
    }

    fn load(&mut self, place: &Place) -> RResult<Value> {
        match place {
            Place::Local { frame, name } => {
                for scope in self.frames[*frame].scopes.iter().rev() {
                    if let Some(v) = scope.get(name) {
                        return Ok(v.clone());
                    }
                }
                err(format!("read of undeclared variable `{name}`"))
            }
            Place::Heap { addr, ty } => {
                let m = &mut self.machine;
                Ok(match ty {
                    Type::Int => Value::Int(m.try_read_scalar::<i32>(*addr)? as i64),
                    Type::Float => Value::Double(m.try_read_scalar::<f32>(*addr)? as f64),
                    Type::Double => Value::Double(m.try_read_scalar::<f64>(*addr)?),
                    Type::Char => Value::Int(m.try_read_scalar::<u8>(*addr)? as i64),
                    Type::SizeT => Value::Int(m.try_read_scalar::<u64>(*addr)? as i64),
                    Type::Ptr(inner) => {
                        let raw = m.try_read_scalar::<u64>(*addr)?;
                        if raw == 0 {
                            Value::Ptr(PtrVal::Null)
                        } else {
                            Value::Ptr(PtrVal::Heap {
                                addr: raw,
                                ty: (**inner).clone(),
                            })
                        }
                    }
                    Type::Void => return err("load of void"),
                    Type::Struct(s) => return err(format!("struct {s} cannot be loaded by value")),
                })
            }
        }
    }

    fn store(&mut self, place: &Place, v: Value) -> RResult<()> {
        match place {
            Place::Local { frame, name } => self.set_var(*frame, name, v),
            Place::Heap { addr, ty } => {
                let m = &mut self.machine;
                match ty {
                    Type::Int => m.try_write_scalar::<i32>(*addr, v.as_int()? as i32)?,
                    Type::Float => m.try_write_scalar::<f32>(*addr, v.as_double()? as f32)?,
                    Type::Double => m.try_write_scalar::<f64>(*addr, v.as_double()?)?,
                    Type::Char => m.try_write_scalar::<u8>(*addr, v.as_int()? as u8)?,
                    Type::SizeT => m.try_write_scalar::<u64>(*addr, v.as_int()? as u64)?,
                    Type::Ptr(_) => {
                        let raw = match &v {
                            Value::Ptr(p) => ptr_addr(p),
                            Value::Int(n) => *n as u64,
                            other => return err(format!("cannot store {other:?} into pointer")),
                        };
                        m.try_write_scalar::<u64>(*addr, raw)?;
                    }
                    Type::Void => return err("store to void"),
                    Type::Struct(s) => return err(format!("struct {s} cannot be stored by value")),
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Kernels
    // ------------------------------------------------------------------

    fn launch_kernel(
        &mut self,
        name: &str,
        grid: i64,
        block: i64,
        stream: Option<hetsim::StreamId>,
        args: Vec<Value>,
    ) -> RResult<()> {
        if self.kernel.is_some() {
            return err("nested kernel launch");
        }
        let Some(f) = self.prog.func(name).cloned() else {
            return err(format!("launch of unknown kernel `{name}`"));
        };
        if !f.is_kernel() {
            return err(format!("`{name}` is not a __global__ function"));
        }
        let threads = (grid.max(1) * block.max(1)) as usize;
        // Data effects run eagerly either way; a stream launch only
        // defers the *time* (and the ordering edges observers see).
        match stream {
            Some(s) => self.machine.kernel_begin_on(name, s),
            None => self.machine.kernel_begin(name),
        }
        for tid in 0..threads {
            self.kernel = Some(KState {
                tid,
                block: block.max(1),
                grid: grid.max(1),
            });
            let r = self.call_user_kernel(&f, args.clone());
            if let Err(e) = r {
                self.kernel = None;
                let _ = self.machine.kernel_finish();
                return Err(e);
            }
        }
        self.kernel = None;
        match stream {
            Some(s) => {
                self.machine.kernel_finish_async(s);
            }
            None => {
                self.machine.kernel_finish_sync();
            }
        }
        Ok(())
    }

    fn call_user_kernel(&mut self, f: &Func, args: Vec<Value>) -> RResult<()> {
        let Some(body) = &f.body else {
            return err(format!("kernel `{}` has no body", f.name));
        };
        let mut scope = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            scope.insert(p.name.clone(), coerce(a, &p.ty));
        }
        self.frames.push(Frame {
            scopes: vec![scope],
        });
        let flow = self.exec_block(&body.clone());
        self.frames.pop();
        flow.map(|_| ())
    }

    // ------------------------------------------------------------------
    // Builtins
    // ------------------------------------------------------------------

    /// Try to handle `name` as a builtin; `Ok(None)` means "not a
    /// builtin, dispatch to user code".
    fn builtin(&mut self, name: &str, args: &[Value]) -> RResult<Option<Value>> {
        let traced = name.starts_with("trc");
        let v = match name {
            // --- allocation ---
            "cudaMalloc" | "trcMalloc" | "cudaMallocManaged" | "trcMallocManaged" => {
                let kind = if name.ends_with("Managed") {
                    AllocKind::Managed
                } else {
                    AllocKind::Device(0)
                };
                let bytes = args.get(1).ok_or_else(|| missing(name, 2))?.as_int()? as u64;
                let base = self.machine.try_malloc(bytes, kind)?;
                if traced {
                    use hetsim::MemHook;
                    self.tracer.on_alloc(base, bytes, kind);
                }
                // Store through the out-parameter (a pointer-to-pointer).
                let out = args.first().ok_or_else(|| missing(name, 2))?.clone();
                let place = self.ptr_to_place(out)?;
                if let Place::Local { name: var, .. } = &place {
                    // The receiving variable names the allocation in
                    // runtime diagnostics (`cudaMalloc(&p, n)` → "p").
                    let var = var.clone();
                    self.machine.note_alloc_label(base, &var);
                }
                self.store_out_pointer(place, base)?;
                Value::Int(0)
            }
            "malloc" | "trcHostMalloc" | "__new" | "__new_array" => {
                let bytes = match name {
                    "__new" => args.first().ok_or_else(|| missing(name, 1))?.as_int()? as u64,
                    "__new_array" => {
                        let sz = args.first().ok_or_else(|| missing(name, 2))?.as_int()?;
                        let n = args.get(1).ok_or_else(|| missing(name, 2))?.as_int()?;
                        (sz * n) as u64
                    }
                    _ => args.first().ok_or_else(|| missing(name, 1))?.as_int()? as u64,
                };
                let base = self.machine.try_malloc(bytes, AllocKind::Host)?;
                if traced {
                    use hetsim::MemHook;
                    self.tracer.on_alloc(base, bytes, AllocKind::Host);
                }
                if name == "__new" {
                    // `new T(init)` stores the initializer.
                    if let Some(init) = args.get(1) {
                        let sz = args.first().unwrap().as_int()?;
                        match sz {
                            4 => self
                                .machine
                                .try_write_scalar::<i32>(base, init.as_int()? as i32)?,
                            8 => self.machine.try_write_scalar::<i64>(base, init.as_int()?)?,
                            _ => {}
                        }
                    }
                }
                Value::Ptr(PtrVal::Heap {
                    addr: base,
                    ty: Type::Char,
                })
            }
            "cudaFree" | "trcFree" | "free" | "trcHostFree" | "__delete" => {
                let p = args.first().ok_or_else(|| missing(name, 1))?;
                if let Value::Ptr(pv) = p {
                    let addr = ptr_addr(pv);
                    if addr != 0 {
                        self.machine.try_free(addr)?;
                        if traced {
                            use hetsim::MemHook;
                            self.tracer.on_free(addr);
                        }
                    }
                }
                Value::Int(0)
            }
            // --- transfer & advice ---
            "cudaMemcpy" | "trcMemcpy" => {
                let dst = ptr_of(args.first().ok_or_else(|| missing(name, 4))?)?;
                let src = ptr_of(args.get(1).ok_or_else(|| missing(name, 4))?)?;
                let bytes = args.get(2).ok_or_else(|| missing(name, 4))?.as_int()? as u64;
                let kind = copy_kind(args.get(3).ok_or_else(|| missing(name, 4))?.as_int()?)?;
                self.machine.try_memcpy(dst, src, bytes, kind)?;
                if traced {
                    use hetsim::MemHook;
                    self.tracer.on_memcpy(dst, src, bytes, kind);
                }
                Value::Int(0)
            }
            "cudaMemAdvise" | "trcMemAdvise" => {
                let p = ptr_of(args.first().ok_or_else(|| missing(name, 4))?)?;
                let bytes = args.get(1).ok_or_else(|| missing(name, 4))?.as_int()? as u64;
                let advice = args.get(2).ok_or_else(|| missing(name, 4))?.as_int()?;
                let device = args.get(3).ok_or_else(|| missing(name, 4))?.as_int()?;
                let dev = if device < 0 {
                    Device::Cpu
                } else {
                    Device::Gpu(device as u8)
                };
                let adv = match advice {
                    1 => MemAdvise::SetReadMostly,
                    2 => MemAdvise::UnsetReadMostly,
                    3 => MemAdvise::SetPreferredLocation(dev),
                    4 => MemAdvise::UnsetPreferredLocation,
                    5 => MemAdvise::SetAccessedBy(dev),
                    6 => MemAdvise::UnsetAccessedBy(dev),
                    other => return err(format!("unknown cudaMemAdvise value {other}")),
                };
                self.machine.try_mem_advise(p, bytes, adv)?;
                Value::Int(0)
            }
            "cudaMemPrefetchAsync" | "trcMemPrefetchAsync" => {
                let ptr = ptr_of(args.first().ok_or_else(|| missing(name, 3))?)?;
                let bytes = args.get(1).ok_or_else(|| missing(name, 3))?.as_int()? as u64;
                let device = args.get(2).ok_or_else(|| missing(name, 3))?.as_int()?;
                let dst = if device < 0 {
                    Device::Cpu
                } else {
                    Device::Gpu(device as u8)
                };
                self.machine
                    .try_mem_prefetch(ptr, bytes, dst, hetsim::DEFAULT_STREAM)?;
                Value::Int(0)
            }
            "cudaDeviceSynchronize" => {
                let _ = self.machine.elapsed_ns();
                Value::Int(0)
            }
            // --- streams ---
            "cudaStreamCreate" => {
                // Out-param like cudaMalloc: `cudaStreamCreate(&s)` with
                // `int s` — MiniCU spells stream handles as plain ints.
                let out = args.first().ok_or_else(|| missing(name, 1))?.clone();
                let s = self.machine.create_stream();
                let place = self.ptr_to_place(out)?;
                self.store(&place, Value::Int(s.0 as i64))?;
                Value::Int(0)
            }
            "cudaStreamSynchronize" => {
                let s = args.first().ok_or_else(|| missing(name, 1))?.as_int()?;
                if s < 0 || s as usize >= self.machine.stream_count() {
                    return err(format!("cudaStreamSynchronize of unknown stream {s}"));
                }
                self.machine.sync_stream(hetsim::StreamId(s as usize));
                Value::Int(0)
            }
            "cudaStreamDestroy" => {
                // Streams live for the whole run; destroy is a no-op.
                args.first().ok_or_else(|| missing(name, 1))?.as_int()?;
                Value::Int(0)
            }
            // --- tracing API ---
            "traceKernelLaunch" => {
                let grid = args.first().ok_or_else(|| missing(name, 3))?.as_int()?;
                let block = args.get(1).ok_or_else(|| missing(name, 3))?.as_int()?;
                let Some(Value::Str(kname)) = args.get(2) else {
                    return err("traceKernelLaunch expects the kernel name");
                };
                use hetsim::MemHook;
                let kname = kname.clone();
                self.tracer.on_kernel_launch(&kname);
                self.launch_kernel(&kname, grid, block, None, args[3..].to_vec())?;
                Value::Int(0)
            }
            "XplAllocData" => {
                let addr = ptr_of(args.first().ok_or_else(|| missing(name, 3))?)?;
                let Some(Value::Str(label)) = args.get(1) else {
                    return err("XplAllocData expects a name string");
                };
                let sz = args.get(2).ok_or_else(|| missing(name, 3))?.as_int()? as u64;
                Value::Alloc(XplAllocData::new(addr, label.clone(), sz))
            }
            "tracePrint" => {
                let objects: Vec<XplAllocData> = args
                    .iter()
                    .filter_map(|a| match a {
                        Value::Alloc(d) => Some(d.clone()),
                        _ => None,
                    })
                    .collect();
                self.tracer.register_names(&objects);
                // The diagnostic point is where the anti-pattern analysis
                // runs (before the epoch reset wipes the shadow).
                self.reports.push(xplacer_core::analyze(
                    &self.tracer.smt,
                    &xplacer_core::AnalysisConfig::default(),
                ));
                let mut sink = Vec::new();
                diagnostic::trace_print(&mut self.tracer, &mut sink, true);
                self.stdout.push_str(&String::from_utf8_lossy(&sink));
                Value::Int(0)
            }
            // --- libc-ish ---
            "printf" => {
                let Some(Value::Str(fmt)) = args.first() else {
                    return err("printf expects a format string");
                };
                let text = format_printf(fmt, &args[1..])?;
                self.stdout.push_str(&text);
                Value::Int(0)
            }
            "sqrt" => Value::Double(
                args.first()
                    .ok_or_else(|| missing(name, 1))?
                    .as_double()?
                    .sqrt(),
            ),
            "fabs" => Value::Double(
                args.first()
                    .ok_or_else(|| missing(name, 1))?
                    .as_double()?
                    .abs(),
            ),
            "fmin" | "min" => {
                let a = args.first().ok_or_else(|| missing(name, 2))?.clone();
                let b = args.get(1).ok_or_else(|| missing(name, 2))?.clone();
                if matches!(a, Value::Double(_)) || matches!(b, Value::Double(_)) {
                    Value::Double(a.as_double()?.min(b.as_double()?))
                } else {
                    Value::Int(a.as_int()?.min(b.as_int()?))
                }
            }
            "fmax" | "max" => {
                let a = args.first().ok_or_else(|| missing(name, 2))?.clone();
                let b = args.get(1).ok_or_else(|| missing(name, 2))?.clone();
                if matches!(a, Value::Double(_)) || matches!(b, Value::Double(_)) {
                    Value::Double(a.as_double()?.max(b.as_double()?))
                } else {
                    Value::Int(a.as_int()?.max(b.as_int()?))
                }
            }
            _ => return Ok(None),
        };
        Ok(Some(v))
    }

    /// Store an allocation's base address through an out-parameter
    /// (`cudaMalloc((void**)&p, n)`), preserving the target pointer's
    /// declared pointee type so later `p[i]` accesses are typed.
    fn store_out_pointer(&mut self, place: Place, base: Addr) -> RResult<()> {
        match &place {
            Place::Local { frame, name } => {
                let ty = self.local_pointee_decl(*frame, name).unwrap_or(Type::Char);
                self.set_var(*frame, name, Value::Ptr(PtrVal::Heap { addr: base, ty }))
            }
            Place::Heap { .. } => self.store(
                &place,
                Value::Ptr(PtrVal::Heap {
                    addr: base,
                    ty: Type::Char,
                }),
            ),
        }
    }

    /// The declared pointee type of a local pointer variable, recovered
    /// from the program text (a typed null carries no type at runtime).
    fn local_pointee_decl(&self, frame: usize, name: &str) -> Option<Type> {
        // Current runtime value may already be a typed heap pointer.
        for scope in self.frames[frame].scopes.iter().rev() {
            if let Some(Value::Ptr(PtrVal::Heap { ty, .. })) = scope.get(name) {
                return Some(ty.clone());
            }
        }
        // Otherwise scan declarations in the program for `T* name`.
        fn scan(stmts: &[Stmt], name: &str) -> Option<Type> {
            for s in stmts {
                match s {
                    Stmt::Decl(d) if d.name == name => {
                        if let Type::Ptr(inner) = &d.ty {
                            return Some((**inner).clone());
                        }
                    }
                    Stmt::Block(b) => {
                        if let Some(t) = scan(b, name) {
                            return Some(t);
                        }
                    }
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        if let Some(t) = scan(then_branch, name).or_else(|| scan(else_branch, name))
                        {
                            return Some(t);
                        }
                    }
                    Stmt::While { body, .. } | Stmt::For { body, .. } => {
                        if let Some(t) = scan(body, name) {
                            return Some(t);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        for f in self.prog.funcs() {
            if let Some(body) = &f.body {
                if let Some(t) = scan(body, name) {
                    return Some(t);
                }
            }
            for p in &f.params {
                if p.name == name {
                    if let Type::Ptr(inner) = &p.ty {
                        return Some((**inner).clone());
                    }
                }
            }
        }
        None
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> RResult<Value> {
        // trace wrappers in value position go through place evaluation so
        // the access is recorded exactly once.
        if name == "traceR" || name == "traceW" || name == "traceRW" {
            let place = self.eval_place(&Expr::Call(name.to_string(), args.to_vec()))?;
            return self.load(&place);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        self.call(name, vals)
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

/// A compile-time integer (possibly negated literal), or `None`.
fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntLit(v) => Some(*v),
        Expr::Unary(UnOp::Neg, b) => match &**b {
            Expr::IntLit(v) => Some(-*v),
            _ => None,
        },
        _ => None,
    }
}

/// A compile-time numeric literal as a runtime value, or `None`.
fn const_num(e: &Expr) -> Option<Value> {
    match e {
        Expr::IntLit(v) => Some(Value::Int(*v)),
        Expr::FloatLit(v) => Some(Value::Double(*v)),
        Expr::Unary(UnOp::Neg, b) => match &**b {
            Expr::IntLit(v) => Some(Value::Int(-*v)),
            Expr::FloatLit(v) => Some(Value::Double(-*v)),
            _ => None,
        },
        _ => None,
    }
}

/// Encode `v` into `out` exactly as [`Interp::store`] would for an
/// element of type `ty`.
fn encode_scalar(ty: &Type, v: &Value, out: &mut [u8]) -> RResult<()> {
    match ty {
        Type::Int => out.copy_from_slice(&(v.as_int()? as i32).to_le_bytes()),
        Type::Float => out.copy_from_slice(&(v.as_double()? as f32).to_le_bytes()),
        Type::Double => out.copy_from_slice(&v.as_double()?.to_le_bytes()),
        Type::Char => out.copy_from_slice(&[v.as_int()? as u8]),
        Type::SizeT => out.copy_from_slice(&(v.as_int()? as u64).to_le_bytes()),
        other => return err(format!("cannot bulk-store {other}")),
    }
    Ok(())
}

/// Decode one element exactly as [`Interp::load`] would for type `ty`.
fn decode_scalar(ty: &Type, chunk: &[u8]) -> Value {
    match ty {
        Type::Int => Value::Int(i32::from_le_bytes(chunk.try_into().unwrap()) as i64),
        Type::Float => Value::Double(f32::from_le_bytes(chunk.try_into().unwrap()) as f64),
        Type::Double => Value::Double(f64::from_le_bytes(chunk.try_into().unwrap())),
        Type::Char => Value::Int(chunk[0] as i64),
        Type::SizeT => Value::Int(u64::from_le_bytes(chunk.try_into().unwrap()) as i64),
        _ => unreachable!("scalar types are checked before engaging the sweep"),
    }
}

fn ptr_addr(p: &PtrVal) -> u64 {
    match p {
        PtrVal::Null => 0,
        PtrVal::Heap { addr, .. } => *addr,
        PtrVal::Local { .. } => 0,
    }
}

/// Whether a declaration initializer is (a cast of) a host allocator call,
/// so the declared variable can label the fresh allocation.
fn init_is_allocator(e: &Expr) -> bool {
    match e {
        Expr::Cast(_, inner) => init_is_allocator(inner),
        Expr::Call(name, _) => {
            matches!(
                name.as_str(),
                "malloc" | "trcHostMalloc" | "__new" | "__new_array"
            )
        }
        _ => false,
    }
}

fn ptr_of(v: &Value) -> RResult<Addr> {
    match v {
        Value::Ptr(PtrVal::Heap { addr, .. }) => Ok(*addr),
        Value::Ptr(PtrVal::Null) => Ok(0),
        other => err(format!("expected a pointer, got {other:?}")),
    }
}

fn missing(name: &str, n: usize) -> RunError {
    RunError {
        message: format!("`{name}` expects {n} arguments"),
        sim: None,
    }
}

fn copy_kind(v: i64) -> RResult<CopyKind> {
    Ok(match v {
        0 => CopyKind::HostToHost,
        1 => CopyKind::HostToDevice,
        2 => CopyKind::DeviceToHost,
        3 => CopyKind::DeviceToDevice,
        other => return err(format!("unknown cudaMemcpyKind {other}")),
    })
}

fn is_cuda_builtin_struct(n: &str) -> bool {
    matches!(n, "threadIdx" | "blockIdx" | "blockDim" | "gridDim")
}

/// Identifier-level builtin constants (the CUDA enum spellings).
fn builtin_constant(n: &str) -> Option<Value> {
    Some(match n {
        "cudaMemcpyHostToHost" => Value::Int(0),
        "cudaMemcpyHostToDevice" => Value::Int(1),
        "cudaMemcpyDeviceToHost" => Value::Int(2),
        "cudaMemcpyDeviceToDevice" => Value::Int(3),
        "cudaMemAdviseSetReadMostly" => Value::Int(1),
        "cudaMemAdviseUnsetReadMostly" => Value::Int(2),
        "cudaMemAdviseSetPreferredLocation" => Value::Int(3),
        "cudaMemAdviseUnsetPreferredLocation" => Value::Int(4),
        "cudaMemAdviseSetAccessedBy" => Value::Int(5),
        "cudaMemAdviseUnsetAccessedBy" => Value::Int(6),
        "cudaCpuDeviceId" => Value::Int(-1),
        "cudaSuccess" => Value::Int(0),
        "NULL" | "nullptr" => Value::Ptr(PtrVal::Null),
        "out" | "cout" => Value::Str("<stdout>".into()),
        _ => return None,
    })
}

fn default_value(ty: &Type) -> Value {
    match ty {
        Type::Double | Type::Float => Value::Double(0.0),
        Type::Ptr(_) => Value::Ptr(PtrVal::Null),
        _ => Value::Int(0),
    }
}

/// Coerce a value to a declared type (declaration/parameter binding).
fn coerce(v: Value, ty: &Type) -> Value {
    match (ty, v) {
        (Type::Double | Type::Float, Value::Int(n)) => Value::Double(n as f64),
        (Type::Int | Type::Char | Type::SizeT, Value::Double(d)) => Value::Int(d as i64),
        (Type::Ptr(inner), Value::Ptr(PtrVal::Heap { addr, ty: t })) => {
            // Retype pointers on binding into typed declarations (e.g. a
            // `double* p` receiving the untyped result of cudaMalloc).
            let want = (**inner).clone();
            let keep = if want == Type::Void { t } else { want };
            Value::Ptr(PtrVal::Heap { addr, ty: keep })
        }
        (_, v) => v,
    }
}

fn cast(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Int | Type::Char | Type::SizeT => match v {
            Value::Double(d) => Value::Int(d as i64),
            other => other,
        },
        Type::Double | Type::Float => match v {
            Value::Int(n) => Value::Double(n as f64),
            other => other,
        },
        Type::Ptr(inner) => match v {
            Value::Ptr(PtrVal::Heap { addr, .. }) if **inner != Type::Void => {
                Value::Ptr(PtrVal::Heap {
                    addr,
                    ty: (**inner).clone(),
                })
            }
            other => other,
        },
        _ => v,
    }
}

fn format_printf(fmt: &str, args: &[Value]) -> RResult<String> {
    let mut out = String::new();
    let mut ai = 0usize;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('d') | Some('i') | Some('u') => {
                out.push_str(
                    &args
                        .get(ai)
                        .map(|v| v.as_int())
                        .transpose()?
                        .unwrap_or(0)
                        .to_string(),
                );
                ai += 1;
            }
            Some('f') => {
                let v = args
                    .get(ai)
                    .map(|v| v.as_double())
                    .transpose()?
                    .unwrap_or(0.0);
                out.push_str(&format!("{v:.6}"));
                ai += 1;
            }
            Some('g') => {
                let v = args
                    .get(ai)
                    .map(|v| v.as_double())
                    .transpose()?
                    .unwrap_or(0.0);
                out.push_str(&format!("{v}"));
                ai += 1;
            }
            Some('s') => {
                if let Some(Value::Str(s)) = args.get(ai) {
                    out.push_str(s);
                }
                ai += 1;
            }
            Some('p') => {
                if let Some(Value::Ptr(p)) = args.get(ai) {
                    out.push_str(&format!("0x{:x}", ptr_addr(p)));
                }
                ai += 1;
            }
            other => return err(format!("unsupported printf conversion %{other:?}")),
        }
    }
    Ok(out)
}

/// Parse, optionally instrument, and run a MiniCU source on a platform.
pub fn run_source(
    src: &str,
    platform: hetsim::Platform,
    instrumented: bool,
) -> RResult<(Outcome, Interp)> {
    run_source_on(src, Machine::new(platform), instrumented)
}

/// Like [`run_source`], but on a caller-prepared [`Machine`] — use this to
/// attach observer hooks (event log, heatmap) before the program runs.
pub fn run_source_on(
    src: &str,
    machine: Machine,
    instrumented: bool,
) -> RResult<(Outcome, Interp)> {
    let prog = xplacer_lang::parser::parse(src).map_err(|e| RunError {
        message: e.to_string(),
        sim: None,
    })?;
    let prog = if instrumented {
        xplacer_instrument::instrument(&prog).program
    } else {
        prog
    };
    let mut interp = Interp::new(prog, machine);
    let outcome = interp.run_main()?;
    Ok((outcome, interp))
}

#[cfg(test)]
mod tests;
