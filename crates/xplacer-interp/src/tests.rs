//! Interpreter tests: language semantics, CUDA API behaviour, and the
//! full instrument-then-run pipeline.

use super::*;
use hetsim::platform::intel_pascal;

fn run(src: &str) -> Outcome {
    run_source(src, intel_pascal(), false)
        .unwrap_or_else(|e| panic!("{e}"))
        .0
}

fn run_instr(src: &str) -> (Outcome, Interp) {
    run_source(src, intel_pascal(), true).unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn arithmetic_and_control_flow() {
    let out = run(r#"
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
    "#);
    assert_eq!(out.exit, 55);
}

#[test]
fn loops_break_continue() {
    let out = run(r#"
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s += i;
            }
            return s;
        }
    "#);
    assert_eq!(out.exit, 1 + 3 + 5 + 7 + 9);
}

#[test]
fn while_and_ternary() {
    let out = run(r#"
        int main() {
            int x = 0;
            while (x < 7) { x++; }
            return x == 7 ? 42 : 0;
        }
    "#);
    assert_eq!(out.exit, 42);
}

#[test]
fn doubles_and_casts() {
    let out = run(r#"
        int main() {
            double x = 3.5;
            double y = x * 2.0 + 1.0;
            return (int)y;
        }
    "#);
    assert_eq!(out.exit, 8);
}

#[test]
fn managed_memory_host_access() {
    let out = run(r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 10 * sizeof(double));
            for (int i = 0; i < 10; i++) { p[i] = i * 1.5; }
            double s = 0.0;
            for (int i = 0; i < 10; i++) { s += p[i]; }
            cudaFree(p);
            return (int)s;
        }
    "#);
    assert_eq!(out.exit, 67); // 1.5 * 45 = 67.5
    assert_eq!(out.stats.allocs, 1);
    assert_eq!(out.stats.frees, 1);
}

#[test]
fn kernel_launch_and_thread_indexing() {
    let out = run(r#"
        __global__ void scale(double* p, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { p[i] = p[i] * 2.0; }
        }
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 64 * sizeof(double));
            for (int i = 0; i < 64; i++) { p[i] = 1.0; }
            scale<<<2, 32>>>(p, 64);
            cudaDeviceSynchronize();
            double s = 0.0;
            for (int i = 0; i < 64; i++) { s += p[i]; }
            return (int)s;
        }
    "#);
    assert_eq!(out.exit, 128);
    assert_eq!(out.stats.kernel_launches, 1);
    assert!(out.stats.gpu_writes >= 64);
    // The GPU touch migrated pages; the host read-back migrated back.
    assert!(out.stats.migrations() >= 2);
}

#[test]
fn explicit_device_memory_and_memcpy() {
    let out = run(r#"
        __global__ void inc(int* d, int n) {
            int i = threadIdx.x;
            if (i < n) { d[i] = d[i] + 1; }
        }
        int main() {
            int* h;
            int* d;
            h = (int*)malloc(16 * sizeof(int));
            cudaMalloc((void**)&d, 16 * sizeof(int));
            for (int i = 0; i < 16; i++) { h[i] = i; }
            cudaMemcpy(d, h, 16 * sizeof(int), cudaMemcpyHostToDevice);
            inc<<<1, 16>>>(d, 16);
            cudaMemcpy(h, d, 16 * sizeof(int), cudaMemcpyDeviceToHost);
            int s = 0;
            for (int i = 0; i < 16; i++) { s += h[i]; }
            return s;
        }
    "#);
    assert_eq!(out.exit, (0..16).sum::<i64>() + 16);
    assert_eq!(out.stats.memcpy_h2d, 1);
    assert_eq!(out.stats.memcpy_d2h, 1);
}

#[test]
fn structs_through_pointers() {
    let out = run(r#"
        struct Pair { int* first; int* second; };
        int main() {
            Pair* a;
            cudaMallocManaged((void**)&a, sizeof(Pair));
            int* x;
            int* y;
            cudaMallocManaged((void**)&x, 4 * sizeof(int));
            cudaMallocManaged((void**)&y, 4 * sizeof(int));
            a->first = x;
            a->second = y;
            a->first[0] = 30;
            a->second[1] = 12;
            return a->first[0] + a->second[1];
        }
    "#);
    assert_eq!(out.exit, 42);
}

#[test]
fn pointer_arithmetic() {
    let out = run(r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 8 * sizeof(double));
            double* q = p + 3;
            *q = 5.5;
            return (int)(p[3] * 2.0);
        }
    "#);
    assert_eq!(out.exit, 11);
}

#[test]
fn increments_and_compound_assign() {
    let out = run(r#"
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 4 * sizeof(int));
            p[0] = 5;
            (p[0])++;
            ++(p[0]);
            p[0] += 10;
            int x = p[0]++;
            return x * 100 + p[0];
        }
    "#);
    assert_eq!(out.exit, 17 * 100 + 18);
}

#[test]
fn new_and_delete_lowering() {
    let out = run(r#"
        int main() {
            int* p = new int(2);
            int v = *p;
            free(p);
            double* arr = new double[5];
            arr[4] = 2.5;
            return v + (int)(arr[4] * 2.0);
        }
    "#);
    assert_eq!(out.exit, 7);
}

#[test]
fn printf_output() {
    let out = run(r#"
        int main() {
            printf("n=%d x=%g s=%s\n", 7, 2.5, "ok");
            return 0;
        }
    "#);
    assert_eq!(out.stdout, "n=7 x=2.5 s=ok\n");
}

#[test]
fn mem_advise_constants_work() {
    let out = run(r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 4096);
            cudaMemAdvise(p, 4096, cudaMemAdviseSetReadMostly, 0);
            p[0] = 1.0;
            return 0;
        }
    "#);
    assert_eq!(out.exit, 0);
}

#[test]
fn runtime_errors_are_reported() {
    let e = run_source(
        "int main() { int x = 1 / 0; return x; }",
        intel_pascal(),
        false,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(e.message.contains("division by zero"));

    let e = run_source("int main() { int* p; return *p; }", intel_pascal(), false)
        .map(|_| ())
        .unwrap_err();
    assert!(e.message.contains("null pointer"), "{e}");

    let e = run_source(
        r#"
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 4);
            cudaFree(p);
            return p[0];
        }
    "#,
        intel_pascal(),
        false,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(e.message.contains("use after free"), "{e}");
}

#[test]
fn host_cannot_touch_device_memory() {
    let e = run_source(
        r#"
        int main() {
            int* d;
            cudaMalloc((void**)&d, 64);
            return d[0];
        }
    "#,
        intel_pascal(),
        false,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(e.message.contains("no access path"), "{e}");
}

#[test]
fn infinite_loop_hits_step_budget() {
    let prog = xplacer_lang::parser::parse("int main() { while (1) { } return 0; }").unwrap();
    let mut i = Interp::new(prog, Machine::new(intel_pascal()));
    i.max_steps = 10_000;
    let e = i.run_main().unwrap_err();
    assert!(e.message.contains("step budget"));
}

// ----------------------------------------------------------------------
// The full pipeline: instrument → run → diagnose
// ----------------------------------------------------------------------

/// The paper's running example shape: managed memory written by the CPU
/// and read by the GPU, diagnosed at the end.
const ALTERNATING_DEMO: &str = r#"
    struct Pair { double* first; double* second; };
    __global__ void consume(Pair* a, int n) {
        int i = threadIdx.x;
        if (i < n) {
            a->second[i] = a->first[i] * 2.0;
        }
    }
    int main() {
        Pair* a;
        cudaMallocManaged((void**)&a, sizeof(Pair));
        double* x;
        double* y;
        cudaMallocManaged((void**)&x, 32 * sizeof(double));
        cudaMallocManaged((void**)&y, 32 * sizeof(double));
        a->first = x;
        a->second = y;
        for (int i = 0; i < 32; i++) { a->first[i] = i; }
        consume<<<1, 32>>>(a, 32);
        cudaDeviceSynchronize();
        double s = a->second[31];
    #pragma xpl diagnostic tracePrint(out; a)
        return (int)s;
    }
"#;

#[test]
fn instrumented_run_matches_uninstrumented_result() {
    let plain = run(ALTERNATING_DEMO);
    let (traced, _) = run_instr(ALTERNATING_DEMO);
    assert_eq!(plain.exit, 62);
    assert_eq!(traced.exit, 62);
}

#[test]
fn instrumented_run_produces_fig4_style_output() {
    let (out, _) = run_instr(ALTERNATING_DEMO);
    assert!(
        out.stdout.contains("named allocations"),
        "diagnostic output missing: {}",
        out.stdout
    );
    assert!(out.stdout.contains("a->first"), "{}", out.stdout);
    assert!(out.stdout.contains("write counts"), "{}", out.stdout);
    assert!(
        out.stdout.contains("elements with alternating accesses"),
        "{}",
        out.stdout
    );
}

#[test]
fn instrumented_run_detects_alternating_antipattern() {
    // Analyze before tracePrint resets: use a version without the pragma.
    let src = ALTERNATING_DEMO.replace("#pragma xpl diagnostic tracePrint(out; a)", "");
    let (_, interp) = run_instr(&src);
    let report =
        xplacer_core::analyze(&interp.tracer.smt, &xplacer_core::AnalysisConfig::default());
    // a->first: CPU-written, GPU-read → alternating. The Pair object
    // itself also alternates (CPU writes the pointers, GPU reads them).
    let alternating: Vec<_> = report
        .of_kind(xplacer_core::FindingKind::Alternating)
        .collect();
    assert!(
        alternating.len() >= 2,
        "expected alternating findings, got: {report}"
    );
}

#[test]
fn uninstrumented_run_records_nothing() {
    let src = ALTERNATING_DEMO.replace("#pragma xpl diagnostic tracePrint(out; a)", "");
    let (out, interp) = run_source(&src, intel_pascal(), false).unwrap();
    assert_eq!(out.exit, 62);
    assert_eq!(interp.tracer.tracked(), 0, "no trc* calls → nothing traced");
}

#[test]
fn tracer_counts_match_program_structure() {
    let src = r#"
        __global__ void touch(double* p, int n) {
            int i = threadIdx.x;
            if (i < n) { p[i] = p[i] + 1.0; }
        }
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 16 * sizeof(double));
            for (int i = 0; i < 16; i++) { p[i] = 0.0; }
            touch<<<1, 16>>>(p, 16);
            return 0;
        }
    "#;
    let (_, interp) = run_instr(src);
    let summaries = xplacer_core::summarize(&interp.tracer.smt, false);
    let p = summaries.iter().find(|s| s.size == 128).expect("p tracked");
    // Every f64 word pair written by CPU (init) and by GPU (kernel), and
    // read by the GPU.
    assert_eq!(p.writes_c, 32);
    assert_eq!(p.writes_g, 32);
    assert_eq!(p.r_cg, 32, "GPU read CPU-written values");
}

#[test]
fn simulated_time_advances() {
    let out = run(r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 4096);
            for (int i = 0; i < 512; i++) { p[i] = 1.0; }
            return 0;
        }
    "#);
    assert!(out.elapsed_ns > 0.0);
}

// ----------------------------------------------------------------------
// Array-sweep fast path (bulk range APIs)
// ----------------------------------------------------------------------

/// Run `src` twice — bulk fast path on (default) and off — in both plain
/// and instrumented modes, and require identical exit, stdout, stats,
/// simulated time, and shadow memory.
fn assert_bulk_equiv(src: &str) {
    for instrumented in [false, true] {
        let bulk = run_source(src, intel_pascal(), instrumented)
            .unwrap_or_else(|e| panic!("bulk (instr={instrumented}): {e}"));
        let mut m = hetsim::Machine::new(intel_pascal());
        m.set_bulk_enabled(false);
        let word = run_source_on(src, m, instrumented)
            .unwrap_or_else(|e| panic!("per-word (instr={instrumented}): {e}"));
        assert_eq!(bulk.0.exit, word.0.exit, "exit (instr={instrumented})");
        assert_eq!(
            bulk.0.stdout, word.0.stdout,
            "stdout (instr={instrumented})"
        );
        assert_eq!(bulk.0.stats, word.0.stats, "stats (instr={instrumented})");
        assert_eq!(
            bulk.0.elapsed_ns.to_bits(),
            word.0.elapsed_ns.to_bits(),
            "elapsed not bit-identical (instr={instrumented})"
        );
        let dig = |i: &Interp| {
            i.tracer
                .smt
                .iter()
                .map(|e| {
                    let bytes: String = e.shadow.iter().map(|f| format!("{:02x}", f.0)).collect();
                    format!("{:#x}+{} {bytes}", e.base, e.size)
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(dig(&bulk.1), dig(&word.1), "shadow (instr={instrumented})");
    }
}

#[test]
fn sweep_fill_and_reduce_match_per_word() {
    assert_bulk_equiv(
        r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 512 * sizeof(double));
            for (int i = 0; i < 512; i++) { p[i] = 3.0; }
            double s = 0.0;
            for (int i = 0; i < 512; i++) { s = s + p[i]; }
            int* q;
            q = (int*)malloc(100 * sizeof(int));
            for (int i = 0; i < 100; i++) { q[i] = -7; }
            int t = 0;
            for (int i = 0; i < 100; i++) { t += q[i]; }
            printf("%g %d\n", s, t);
            return t + 700;
        }
    "#,
    );
}

#[test]
fn sweep_inside_kernel_matches_per_word() {
    assert_bulk_equiv(
        r#"
        __global__ void fillrows(double* p, int n) {
            for (int i = 0; i < n; i++) { p[i] = 2.5; }
        }
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 256 * sizeof(double));
            fillrows<<<1, 4>>>(p, 256);
            double s = 0.0;
            for (int i = 0; i < 256; i++) { s = s + p[i]; }
            printf("%g\n", s);
            return 0;
        }
    "#,
    );
}

#[test]
fn sweep_fast_path_engages_and_non_sweeps_fall_back() {
    // Variable bound, assignment-style init, existing loop variable.
    assert_bulk_equiv(
        r#"
        int main() {
            int n = 64;
            int i;
            int* p;
            cudaMallocManaged((void**)&p, 64 * sizeof(int));
            for (i = 0; i < n; i++) { p[i] = 5; }
            int s = 0;
            for (i = 0; i < n; i++) { s += p[i]; }
            printf("%d %d\n", i, s);
            return s / 64;
        }
    "#,
    );
    // Non-sweep bodies and empty loops must agree too (generic path).
    assert_bulk_equiv(
        r#"
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 64 * sizeof(int));
            for (int i = 0; i < 64; i++) { p[i] = i; }
            for (int i = 10; i < 10; i++) { p[i] = 9; }
            int s = 0;
            for (int i = 0; i < 64; i = i + 1) { s = s + p[i]; }
            return s == 2016 ? 1 : 0;
        }
    "#,
    );
}

#[test]
fn sweep_out_of_bounds_errors_match_per_word() {
    // The sweep overruns the allocation: the bulk path must decline and
    // let the generic loop produce the same error and partial state.
    let src = r#"
        int main() {
            int* p;
            cudaMallocManaged((void**)&p, 8 * sizeof(int));
            for (int i = 0; i < 100; i++) { p[i] = 1; }
            return 0;
        }
    "#;
    let bulk = run_source(src, intel_pascal(), false);
    let mut m = hetsim::Machine::new(intel_pascal());
    m.set_bulk_enabled(false);
    let word = run_source_on(src, m, false);
    let be = bulk.err().expect("bulk run should error").message;
    let we = word.err().expect("per-word run should error").message;
    assert_eq!(be, we);
}

#[test]
fn sweep_fast_path_actually_engages() {
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct RangeSpy {
        ranges: u64,
        words: u64,
    }
    impl hetsim::MemHook for RangeSpy {
        fn on_alloc(&mut self, _: u64, _: u64, _: hetsim::AllocKind) {}
        fn on_free(&mut self, _: u64) {}
        fn on_memcpy(&mut self, _: u64, _: u64, _: u64, _: hetsim::CopyKind) {}
        fn on_kernel_launch(&mut self, _: &str) {}
        fn on_read(&mut self, _: hetsim::Device, _: u64, _: u32) {
            self.words += 1;
        }
        fn on_write(&mut self, _: hetsim::Device, _: u64, _: u32) {
            self.words += 1;
        }
        fn on_access_range(
            &mut self,
            _: hetsim::Device,
            _: u64,
            _: u32,
            count: u64,
            _: hetsim::AccessKind,
        ) {
            self.ranges += 1;
            self.words += count;
        }
    }

    let src = r#"
        int main() {
            double* p;
            cudaMallocManaged((void**)&p, 128 * sizeof(double));
            for (int i = 0; i < 128; i++) { p[i] = 1.0; }
            double s = 0.0;
            for (int i = 0; i < 128; i++) { s = s + p[i]; }
            return s == 128.0 ? 0 : 1;
        }
    "#;
    let spy = Rc::new(RefCell::new(RangeSpy::default()));
    let mut m = hetsim::Machine::new(intel_pascal());
    m.add_hook(spy.clone());
    let (out, _) = run_source_on(src, m, false).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(out.exit, 0);
    let s = spy.borrow();
    assert_eq!(s.ranges, 2, "fill + reduction should each be one range");
    assert_eq!(s.words, 256);
}
