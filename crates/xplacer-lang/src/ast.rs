//! Abstract syntax tree for MiniCU — the C/CUDA subset the XPlacer
//! instrumentation pass operates on (the stand-in for ROSE's AST).

use std::fmt;

/// Types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Void,
    Int,
    Float,
    Double,
    Char,
    SizeT,
    /// Pointer to a pointee type.
    Ptr(Box<Type>),
    /// A named struct type.
    Struct(String),
}

impl Type {
    /// Wrap in one level of pointer.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Whether this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Whether values of this type are scalar (fit a register).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Type::Struct(_) | Type::Void)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Char => write!(f, "char"),
            Type::SizeT => write!(f, "size_t"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Struct(n) => write!(f, "struct {n}"),
        }
    }
}

/// A 1-based `line:col` source position attached to statements so
/// runtime diagnostics (the `xplacer check` sanitizer) can point back
/// into the MiniCU source.
///
/// Spans compare equal to *every* other span: structural AST equality
/// (`parse(unparse(p)) == p`, instrumentation idempotency) must ignore
/// positions, since synthesized nodes carry the unknown span `0:0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }

    /// Whether this span points at real source (synthesized nodes don't).
    pub fn is_known(&self) -> bool {
        self.line != 0
    }
}

impl PartialEq for Span {
    fn eq(&self, _: &Span) -> bool {
        true
    }
}

impl Eq for Span {}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// CUDA function qualifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qualifier {
    Global,
    Device,
    Host,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    /// `*e`
    Deref,
    /// `&e`
    Addr,
    /// `++e` / `--e`
    PreInc,
    PreDec,
}

/// Postfix `e++` / `e--`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOp {
    Inc,
    Dec,
}

/// Compound assignment operators (plain `=` is `Assign::Set`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    Set,
    Add,
    Sub,
    Mul,
    Div,
}

impl AssignOp {
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Set => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    Ident(String),
    Unary(UnOp, Box<Expr>),
    Postfix(PostOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    /// `kernel<<<grid, block[, shmem[, stream]]>>>(args)`
    KernelLaunch {
        name: String,
        grid: Box<Expr>,
        block: Box<Expr>,
        /// Optional dynamic shared-memory size (third launch-config arg).
        shmem: Option<Box<Expr>>,
        /// Optional stream handle (fourth launch-config arg). A launch
        /// with a stream completes asynchronously, like `cudaMemcpyAsync`.
        stream: Option<Box<Expr>>,
        args: Vec<Expr>,
    },
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (`arrow = false`) or `base->field` (`arrow = true`)
    Member(Box<Expr>, String, bool),
    Cast(Type, Box<Expr>),
    SizeofType(Type),
    SizeofExpr(Box<Expr>),
}

impl Expr {
    pub fn ident(s: &str) -> Expr {
        Expr::Ident(s.to_string())
    }

    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Call(name.to_string(), args)
    }
}

/// A local/global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    pub ty: Type,
    pub name: String,
    pub init: Option<Expr>,
    /// Source position of the declaration (equality-neutral).
    pub span: Span,
}

/// XPlacer pragmas (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum XplPragma {
    /// `#pragma xpl replace <name>` — the next function declaration
    /// replaces calls to `<name>`. `kernel-launch` as the name replaces
    /// kernel launches.
    Replace { target: String },
    /// `#pragma xpl diagnostic fn(verbatim...; expanded...)`
    Diagnostic {
        func: String,
        verbatim: Vec<String>,
        expanded: Vec<String>,
    },
    /// An unrecognized `#pragma`/`#include` line, kept for round-tripping.
    Other(String),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Decl(VarDecl),
    /// An expression statement, carrying its (equality-neutral) source
    /// position for runtime diagnostics.
    Expr(Expr, Span),
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Vec<Stmt>),
    Pragma(XplPragma),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

/// A function definition or declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    pub qualifiers: Vec<Qualifier>,
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    /// `None` for a pure declaration (prototype).
    pub body: Option<Vec<Stmt>>,
}

impl Func {
    pub fn is_kernel(&self) -> bool {
        self.qualifiers.contains(&Qualifier::Global)
    }
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<(Type, String)>,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Func(Func),
    Struct(StructDef),
    Global(VarDecl),
    Pragma(XplPragma),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub items: Vec<Item>,
}

impl Program {
    /// Find a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.items.iter().find_map(|i| match i {
            Item::Func(f) if f.name == name => Some(f),
            _ => None,
        })
    }

    /// Find a struct definition by name.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.items.iter().find_map(|i| match i {
            Item::Struct(s) if s.name == name => Some(s),
            _ => None,
        })
    }

    /// All function definitions.
    pub fn funcs(&self) -> impl Iterator<Item = &Func> {
        self.items.iter().filter_map(|i| match i {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_and_helpers() {
        let t = Type::Double.ptr();
        assert_eq!(t.to_string(), "double*");
        assert!(t.is_ptr());
        assert_eq!(t.pointee(), Some(&Type::Double));
        assert!(Type::Int.is_scalar());
        assert!(!Type::Struct("S".into()).is_scalar());
        assert_eq!(Type::Struct("S".into()).to_string(), "struct S");
    }

    #[test]
    fn program_lookups() {
        let p = Program {
            items: vec![
                Item::Struct(StructDef {
                    name: "Pair".into(),
                    fields: vec![(Type::Int.ptr(), "first".into())],
                }),
                Item::Func(Func {
                    qualifiers: vec![Qualifier::Global],
                    ret: Type::Void,
                    name: "k".into(),
                    params: vec![],
                    body: Some(vec![]),
                }),
            ],
        };
        assert!(p.func("k").unwrap().is_kernel());
        assert!(p.func("missing").is_none());
        assert_eq!(p.struct_def("Pair").unwrap().fields.len(), 1);
        assert_eq!(p.funcs().count(), 1);
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(BinOp::Shl.symbol(), "<<");
        assert_eq!(AssignOp::Add.symbol(), "+=");
    }
}
