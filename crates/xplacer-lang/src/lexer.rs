//! Lexer for MiniCU: a C subset with CUDA extensions (`__global__`,
//! `<<< >>>` kernel launches, `#pragma xpl ...`).

use std::fmt;

/// A token with its source position (for error messages). `line` and
/// `col` are 1-based; `col` is the column of the token's first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    /// A `#pragma ...` line, collected verbatim (minus the leading `#`).
    PragmaLine(String),
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Arrow,
    Dot,
    /// `<<<` opening a kernel launch configuration.
    LaunchOpen,
    /// `>>>` closing a kernel launch configuration.
    LaunchClose,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::PragmaLine(p) => write!(f, "#{p}"),
            other => write!(f, "{}", other.symbol()),
        }
    }
}

impl Tok {
    fn symbol(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Colon => ":",
            Tok::Question => "?",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::Eq => "==",
            Tok::Ne => "!=",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Not => "!",
            Tok::Amp => "&",
            Tok::Pipe => "|",
            Tok::Caret => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            Tok::Arrow => "->",
            Tok::Dot => ".",
            Tok::LaunchOpen => "<<<",
            Tok::LaunchClose => ">>>",
            Tok::Eof => "<eof>",
            _ => unreachable!(),
        }
    }
}

/// Lexing error with a 1-based line:column position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize MiniCU source.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    // Char index where the current line begins; columns are 1-based
    // offsets from it.
    let mut line_start = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        // Column of the token (or error) starting at `i`.
        let col = (i - line_start + 1) as u32;
        macro_rules! push {
            ($k:expr) => {
                out.push(Token {
                    kind: $k,
                    line,
                    col,
                })
            };
        }
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let (start_line, start_col) = (line, col);
                i += 2;
                while i + 1 < b.len() && !(b[i] == '*' && b[i + 1] == '/') {
                    if b[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    i += 1;
                }
                if i + 1 >= b.len() {
                    return Err(LexError {
                        line: start_line,
                        col: start_col,
                        message: "unterminated block comment".into(),
                    });
                }
                i += 2;
            }
            '#' => {
                // Collect the preprocessor line verbatim (continuations
                // with trailing backslash are joined).
                let mut text = String::new();
                i += 1;
                loop {
                    while i < b.len() && b[i] != '\n' {
                        text.push(b[i]);
                        i += 1;
                    }
                    if text.ends_with('\\') {
                        text.pop();
                        line += 1;
                        i += 1; // consume newline, continue collecting
                        line_start = i;
                    } else {
                        break;
                    }
                }
                push!(Tok::PragmaLine(text.trim().to_string()));
            }
            '"' => {
                let (start_line, start_col) = (line, col);
                let mut s = String::new();
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        i += 1;
                        s.push(match b[i] {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            '0' => '\0',
                            other => other,
                        });
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                            line_start = i + 1;
                        }
                        s.push(b[i]);
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return Err(LexError {
                        line: start_line,
                        col: start_col,
                        message: "unterminated string literal".into(),
                    });
                }
                i += 1;
                push!(Tok::Str(s));
            }
            '\'' => {
                // Character literal → integer token.
                i += 1;
                let v = if i < b.len() && b[i] == '\\' {
                    i += 1;
                    let v = match b.get(i) {
                        Some('n') => '\n' as i64,
                        Some('t') => '\t' as i64,
                        Some('0') => 0,
                        Some(&c) => c as i64,
                        None => 0,
                    };
                    i += 1;
                    v
                } else {
                    let v = b.get(i).copied().unwrap_or('\0') as i64;
                    i += 1;
                    v
                };
                if b.get(i) != Some(&'\'') {
                    return Err(LexError {
                        line,
                        col,
                        message: "unterminated char literal".into(),
                    });
                }
                i += 1;
                push!(Tok::Int(v));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '.') {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                let is_hex = text.starts_with("0x") || text.starts_with("0X");
                if !is_hex
                    && (text.contains('.')
                        || text.contains('e')
                        || text.contains('E')
                        || text.ends_with('f')
                        || text.ends_with('F'))
                {
                    let t = text.trim_end_matches(['f', 'F']);
                    match t.parse::<f64>() {
                        Ok(v) => push!(Tok::Float(v)),
                        Err(_) => {
                            return Err(LexError {
                                line,
                                col,
                                message: format!("bad float literal `{text}`"),
                            })
                        }
                    }
                } else {
                    let t = text.trim_end_matches(['u', 'U', 'l', 'L']);
                    let parsed = if let Some(hex) = t.strip_prefix("0x").or(t.strip_prefix("0X")) {
                        i64::from_str_radix(hex, 16)
                    } else {
                        t.parse::<i64>()
                    };
                    match parsed {
                        Ok(v) => push!(Tok::Int(v)),
                        Err(_) => {
                            return Err(LexError {
                                line,
                                col,
                                message: format!("bad integer literal `{text}`"),
                            })
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                push!(Tok::Ident(b[start..i].iter().collect()));
            }
            _ => {
                // Multi-char operators, longest match first.
                let rest: String = b[i..b.len().min(i + 3)].iter().collect();
                let (tok, len) = if rest.starts_with("<<<") {
                    (Tok::LaunchOpen, 3)
                } else if rest.starts_with(">>>") {
                    (Tok::LaunchClose, 3)
                } else if rest.starts_with("<<") {
                    (Tok::Shl, 2)
                } else if rest.starts_with(">>") {
                    (Tok::Shr, 2)
                } else if rest.starts_with("->") {
                    (Tok::Arrow, 2)
                } else if rest.starts_with("++") {
                    (Tok::PlusPlus, 2)
                } else if rest.starts_with("--") {
                    (Tok::MinusMinus, 2)
                } else if rest.starts_with("==") {
                    (Tok::Eq, 2)
                } else if rest.starts_with("!=") {
                    (Tok::Ne, 2)
                } else if rest.starts_with("<=") {
                    (Tok::Le, 2)
                } else if rest.starts_with(">=") {
                    (Tok::Ge, 2)
                } else if rest.starts_with("&&") {
                    (Tok::AndAnd, 2)
                } else if rest.starts_with("||") {
                    (Tok::OrOr, 2)
                } else if rest.starts_with("+=") {
                    (Tok::PlusAssign, 2)
                } else if rest.starts_with("-=") {
                    (Tok::MinusAssign, 2)
                } else if rest.starts_with("*=") {
                    (Tok::StarAssign, 2)
                } else if rest.starts_with("/=") {
                    (Tok::SlashAssign, 2)
                } else {
                    let t = match c {
                        '(' => Tok::LParen,
                        ')' => Tok::RParen,
                        '{' => Tok::LBrace,
                        '}' => Tok::RBrace,
                        '[' => Tok::LBracket,
                        ']' => Tok::RBracket,
                        ';' => Tok::Semi,
                        ',' => Tok::Comma,
                        ':' => Tok::Colon,
                        '.' => Tok::Dot,
                        '?' => Tok::Question,
                        '+' => Tok::Plus,
                        '-' => Tok::Minus,
                        '*' => Tok::Star,
                        '/' => Tok::Slash,
                        '%' => Tok::Percent,
                        '=' => Tok::Assign,
                        '<' => Tok::Lt,
                        '>' => Tok::Gt,
                        '!' => Tok::Not,
                        '&' => Tok::Amp,
                        '|' => Tok::Pipe,
                        '^' => Tok::Caret,
                        other => {
                            return Err(LexError {
                                line,
                                col,
                                message: format!("unexpected character `{other}`"),
                            })
                        }
                    };
                    (t, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    out.push(Token {
        kind: Tok::Eof,
        line,
        col: (b.len() - line_start + 1) as u32,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn float_and_hex_literals() {
        assert_eq!(
            kinds("3.5 0x10 2e3 7f"),
            vec![
                Tok::Float(3.5),
                Tok::Int(16),
                Tok::Float(2000.0),
                Tok::Float(7.0), // "7f" lexes as a float-suffixed literal
                Tok::Eof
            ]
        );
    }

    #[test]
    fn kernel_launch_brackets_vs_shifts() {
        assert_eq!(
            kinds("k<<<1, 2>>>(p); a << b; a >> b;"),
            vec![
                Tok::Ident("k".into()),
                Tok::LaunchOpen,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::LaunchClose,
                Tok::LParen,
                Tok::Ident("p".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Ident("a".into()),
                Tok::Shl,
                Tok::Ident("b".into()),
                Tok::Semi,
                Tok::Ident("a".into()),
                Tok::Shr,
                Tok::Ident("b".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn pragmas_collected_verbatim() {
        let toks = kinds("#pragma xpl diagnostic tracePrint(out; a, z)\nint x;");
        assert_eq!(
            toks[0],
            Tok::PragmaLine("pragma xpl diagnostic tracePrint(out; a, z)".into())
        );
    }

    #[test]
    fn pragma_continuation_lines_joined() {
        let toks = kinds("#pragma xpl replace \\\n cudaMalloc\nint x;");
        assert_eq!(
            toks[0],
            Tok::PragmaLine("pragma xpl replace  cudaMalloc".into())
        );
        // The continuation consumed a newline: x is still lexed.
        assert!(toks.contains(&Tok::Ident("x".into())));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\nstill */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb""#), vec![Tok::Str("a\nb".into()), Tok::Eof]);
    }

    #[test]
    fn char_literals_become_ints() {
        assert_eq!(
            kinds("'A' '\\n'"),
            vec![Tok::Int(65), Tok::Int(10), Tok::Eof]
        );
    }

    #[test]
    fn arrows_and_ops() {
        assert_eq!(
            kinds("p->f ++x x-- a+=b"),
            vec![
                Tok::Ident("p".into()),
                Tok::Arrow,
                Tok::Ident("f".into()),
                Tok::PlusPlus,
                Tok::Ident("x".into()),
                Tok::Ident("x".into()),
                Tok::MinusMinus,
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn columns_tracked() {
        let toks = lex("ab + cd\n  x").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1)); // ab
        assert_eq!((toks[1].line, toks[1].col), (1, 4)); // +
        assert_eq!((toks[2].line, toks[2].col), (1, 6)); // cd
        assert_eq!((toks[3].line, toks[3].col), (2, 3)); // x
    }

    #[test]
    fn errors_carry_line_and_column() {
        let e = lex("int x;\n  @").unwrap_err();
        assert_eq!((e.line, e.col), (2, 3));
        assert_eq!(e.to_string(), "line 2:3: unexpected character `@`");
        let e = lex("x = \"abc").unwrap_err();
        assert_eq!((e.line, e.col), (1, 5));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn error_on_stray_character() {
        assert!(lex("int @").is_err());
    }
}
