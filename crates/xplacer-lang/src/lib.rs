//! # xplacer-lang — the MiniCU front-end
//!
//! A C/CUDA subset ("MiniCU") with lexer, parser, AST, semantic helpers,
//! and unparser — the stand-in for the ROSE source-to-source
//! infrastructure the paper's instrumentation tool plugs into (§III-B).
//!
//! MiniCU covers what the paper's transformations need: functions with
//! `__global__`/`__device__`/`__host__` qualifiers, structs, pointers,
//! `kernel<<<grid, block>>>(args)` launches, the CUDA allocation and copy
//! API as ordinary calls, and `#pragma xpl replace` / `#pragma xpl
//! diagnostic` directives.
//!
//! ```
//! use xplacer_lang::parser::parse;
//! let prog = parse("__global__ void k(double* p) { p[threadIdx.x] = 1.0; }").unwrap();
//! assert!(prog.func("k").unwrap().is_kernel());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod unparse;

pub use ast::{Expr, Func, Item, Program, Stmt, StructDef, Type, VarDecl, XplPragma};
pub use parser::{parse, parse_expr, ParseError};
pub use unparse::{unparse, unparse_expr, unparse_func};
