//! Recursive-descent parser for MiniCU.

use std::collections::HashSet;
use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};

/// Parse error with a 1-based line:column source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            col: e.col,
            message: e.message,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a complete MiniCU translation unit.
pub fn parse(src: &str) -> PResult<Program> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        structs: HashSet::new(),
    };
    p.program()
}

/// Parse a single expression (tests, tools).
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        structs: HashSet::new(),
    };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    structs: HashSet<String>,
}

const TYPE_KEYWORDS: [&str; 6] = ["void", "int", "float", "double", "char", "size_t"];
const QUALIFIERS: [&str; 3] = ["__global__", "__device__", "__host__"];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    /// (line, col) of the token at the cursor.
    fn pos(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    /// [`pos`](Self::pos) as a [`Span`].
    fn span(&self) -> Span {
        let (line, col) = self.pos();
        Span::new(line, col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        let (line, col) = self.pos();
        ParseError { line, col, message }
    }

    fn ident(&mut self) -> PResult<String> {
        let (line, col) = self.pos();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                line,
                col,
                message: format!("expected identifier, found `{other}`"),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn is_type_start(&self) -> bool {
        match self.peek() {
            Tok::Ident(s) => {
                s == "struct" || TYPE_KEYWORDS.contains(&s.as_str()) || self.structs.contains(s)
            }
            _ => false,
        }
    }

    fn base_type(&mut self) -> PResult<Type> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "void" => Type::Void,
            "int" => Type::Int,
            "float" => Type::Float,
            "double" => Type::Double,
            "char" => Type::Char,
            "size_t" => Type::SizeT,
            "struct" => Type::Struct(self.ident()?),
            other if self.structs.contains(other) => Type::Struct(other.to_string()),
            other => return Err(self.err(format!("unknown type `{other}`"))),
        })
    }

    fn ty(&mut self) -> PResult<Type> {
        let mut t = self.base_type()?;
        while self.eat(Tok::Star) {
            t = t.ptr();
        }
        Ok(t)
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        // Pre-scan struct names so they act as type names everywhere.
        for i in 0..self.toks.len().saturating_sub(1) {
            if let (Tok::Ident(k), Tok::Ident(n)) = (&self.toks[i].kind, &self.toks[i + 1].kind) {
                if k == "struct" {
                    self.structs.insert(n.clone());
                }
            }
        }
        let mut items = Vec::new();
        while *self.peek() != Tok::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> PResult<Item> {
        if let Tok::PragmaLine(text) = self.peek().clone() {
            self.bump();
            return Ok(Item::Pragma(parse_pragma(&text)));
        }
        // struct definition?
        if let Tok::Ident(s) = self.peek() {
            if s == "struct" {
                if let Tok::Ident(_) = self.peek2() {
                    // Could be a definition (`struct S { ... };`) or a
                    // type use (`struct S* f(...)`). Look one further.
                    let save = self.pos;
                    self.bump(); // struct
                    let name = self.ident()?;
                    if *self.peek() == Tok::LBrace {
                        return self.struct_def(name);
                    }
                    self.pos = save;
                }
            }
        }
        // Function or global: [qualifiers] type name ...
        let mut qualifiers = Vec::new();
        while let Tok::Ident(q) = self.peek() {
            if QUALIFIERS.contains(&q.as_str()) {
                let q = self.ident()?;
                qualifiers.push(match q.as_str() {
                    "__global__" => Qualifier::Global,
                    "__device__" => Qualifier::Device,
                    _ => Qualifier::Host,
                });
            } else {
                break;
            }
        }
        let ty = self.ty()?;
        let name = self.ident()?;
        if *self.peek() == Tok::LParen {
            self.bump();
            let mut params = Vec::new();
            if *self.peek() != Tok::RParen {
                loop {
                    let pt = self.ty()?;
                    let pn = self.ident()?;
                    params.push(Param { ty: pt, name: pn });
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen)?;
            let body = if self.eat(Tok::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            Ok(Item::Func(Func {
                qualifiers,
                ret: ty,
                name,
                params,
                body,
            }))
        } else {
            let init = if self.eat(Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::Semi)?;
            Ok(Item::Global(VarDecl {
                ty,
                name,
                init,
                span: Span::default(),
            }))
        }
    }

    fn struct_def(&mut self, name: String) -> PResult<Item> {
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while *self.peek() != Tok::RBrace {
            let ft = self.ty()?;
            let fname = self.ident()?;
            self.expect(Tok::Semi)?;
            fields.push((ft, fname));
        }
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Semi)?;
        self.structs.insert(name.clone());
        Ok(Item::Struct(StructDef { name, fields }))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if let Tok::PragmaLine(text) = self.peek().clone() {
            self.bump();
            return Ok(Stmt::Pragma(parse_pragma(&text)));
        }
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::Ident(kw) => match kw.as_str() {
                "if" => self.if_stmt(),
                "while" => self.while_stmt(),
                "for" => self.for_stmt(),
                "return" => {
                    self.bump();
                    let e = if *self.peek() == Tok::Semi {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return(e))
                }
                "break" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Break)
                }
                "continue" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Continue)
                }
                _ if self.is_type_start() && !self.next_is_expression_use() => {
                    let d = self.var_decl()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Decl(d))
                }
                _ => {
                    let sp = self.span();
                    let e = self.expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Expr(e, sp))
                }
            },
            _ => {
                let sp = self.span();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Expr(e, sp))
            }
        }
    }

    /// A struct type name used as an expression (e.g. a variable that
    /// shadows... not supported; struct names always start declarations).
    fn next_is_expression_use(&self) -> bool {
        false
    }

    fn var_decl(&mut self) -> PResult<VarDecl> {
        let span = self.span();
        let ty = self.ty()?;
        let name = self.ident()?;
        let init = if self.eat(Tok::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(VarDecl {
            ty,
            name,
            init,
            span,
        })
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // if
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_branch = self.stmt_as_block()?;
        let else_branch = if let Tok::Ident(s) = self.peek() {
            if s == "else" {
                self.bump();
                self.stmt_as_block()?
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn stmt_as_block(&mut self) -> PResult<Vec<Stmt>> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // while
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> PResult<Stmt> {
        self.bump(); // for
        self.expect(Tok::LParen)?;
        let init = if self.eat(Tok::Semi) {
            None
        } else if self.is_type_start() {
            let d = self.var_decl()?;
            self.expect(Tok::Semi)?;
            Some(Box::new(Stmt::Decl(d)))
        } else {
            let sp = self.span();
            let e = self.expr()?;
            self.expect(Tok::Semi)?;
            Some(Box::new(Stmt::Expr(e, sp)))
        };
        let cond = if *self.peek() == Tok::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::Semi)?;
        let step = if *self.peek() == Tok::RParen {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(Tok::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.assignment()
    }

    fn assignment(&mut self) -> PResult<Expr> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Tok::Assign => AssignOp::Set,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            Tok::SlashAssign => AssignOp::Div,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assignment()?;
        Ok(Expr::Assign(op, Box::new(lhs), Box::new(rhs)))
    }

    fn conditional(&mut self) -> PResult<Expr> {
        let c = self.binary(0)?;
        if self.eat(Tok::Question) {
            let t = self.expr()?;
            self.expect(Tok::Colon)?;
            let e = self.conditional()?;
            Ok(Expr::Cond(Box::new(c), Box::new(t), Box::new(e)))
        } else {
            Ok(c)
        }
    }

    fn bin_op(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek() {
            Tok::OrOr => (BinOp::Or, 1),
            Tok::AndAnd => (BinOp::And, 2),
            Tok::Pipe => (BinOp::BitOr, 3),
            Tok::Caret => (BinOp::BitXor, 4),
            Tok::Amp => (BinOp::BitAnd, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.bin_op() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Unary(UnOp::Deref, Box::new(self.unary()?)))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::Unary(UnOp::Addr, Box::new(self.unary()?)))
            }
            Tok::PlusPlus => {
                self.bump();
                Ok(Expr::Unary(UnOp::PreInc, Box::new(self.unary()?)))
            }
            Tok::MinusMinus => {
                self.bump();
                Ok(Expr::Unary(UnOp::PreDec, Box::new(self.unary()?)))
            }
            Tok::LParen if self.cast_ahead() => {
                self.bump();
                let t = self.ty()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::Cast(t, Box::new(self.unary()?)))
            }
            Tok::Ident(s) if s == "sizeof" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let e = if self.is_type_start() {
                    let t = self.ty()?;
                    Expr::SizeofType(t)
                } else {
                    Expr::SizeofExpr(Box::new(self.expr()?))
                };
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) if s == "new" => {
                // `new T` / `new T(init)` / `new T[count]` — lowered to a
                // builtin call the interpreter understands.
                self.bump();
                let t = self.ty()?;
                if self.eat(Tok::LBracket) {
                    let count = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Call(
                        "__new_array".into(),
                        vec![Expr::SizeofType(t), count],
                    ))
                } else if self.eat(Tok::LParen) {
                    let init = self.expr()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call("__new".into(), vec![Expr::SizeofType(t), init]))
                } else {
                    Ok(Expr::Call(
                        "__new".into(),
                        vec![Expr::SizeofType(t), Expr::IntLit(0)],
                    ))
                }
            }
            _ => self.postfix(),
        }
    }

    /// Whether `( type )` follows (cast), as opposed to a parenthesized
    /// expression.
    fn cast_ahead(&self) -> bool {
        debug_assert_eq!(*self.peek(), Tok::LParen);
        match self.peek2() {
            Tok::Ident(s) => {
                s == "struct" || TYPE_KEYWORDS.contains(&s.as_str()) || self.structs.contains(s)
            }
            _ => false,
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::LBracket => {
                    self.bump();
                    let i = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(i));
                }
                Tok::Dot => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member(Box::new(e), f, false);
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.ident()?;
                    e = Expr::Member(Box::new(e), f, true);
                }
                Tok::PlusPlus => {
                    self.bump();
                    e = Expr::Postfix(PostOp::Inc, Box::new(e));
                }
                Tok::MinusMinus => {
                    self.bump();
                    e = Expr::Postfix(PostOp::Dec, Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let (line, col) = self.pos();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Str(s) => Ok(Expr::StrLit(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LaunchOpen {
                    self.bump();
                    let grid = self.expr()?;
                    self.expect(Tok::Comma)?;
                    let block = self.expr()?;
                    // Optional CUDA launch-config tail: `, shmem[, stream]`.
                    let shmem = if self.eat(Tok::Comma) {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    let stream = if shmem.is_some() && self.eat(Tok::Comma) {
                        Some(Box::new(self.expr()?))
                    } else {
                        None
                    };
                    self.expect(Tok::LaunchClose)?;
                    self.expect(Tok::LParen)?;
                    let args = self.args()?;
                    Ok(Expr::KernelLaunch {
                        name,
                        grid: Box::new(grid),
                        block: Box::new(block),
                        shmem,
                        stream,
                        args,
                    })
                } else if *self.peek() == Tok::LParen {
                    self.bump();
                    let args = self.args()?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(ParseError {
                line,
                col,
                message: format!("unexpected token `{other}` in expression"),
            }),
        }
    }

    fn args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }
}

/// Parse the text of a `#pragma` line into an [`XplPragma`].
pub fn parse_pragma(text: &str) -> XplPragma {
    let t = text.trim();
    let Some(rest) = t.strip_prefix("pragma") else {
        return XplPragma::Other(t.to_string());
    };
    let rest = rest.trim();
    let Some(rest) = rest.strip_prefix("xpl") else {
        return XplPragma::Other(t.to_string());
    };
    let rest = rest.trim();
    if let Some(target) = rest.strip_prefix("replace") {
        return XplPragma::Replace {
            target: target.trim().to_string(),
        };
    }
    if let Some(d) = rest.strip_prefix("diagnostic") {
        let d = d.trim();
        // fn(verbatim...; expanded...)
        if let Some(open) = d.find('(') {
            let func = d[..open].trim().to_string();
            let inner = d[open + 1..].trim_end_matches(')').trim();
            let (verb, exp) = match inner.split_once(';') {
                Some((v, e)) => (v, e),
                None => (inner, ""),
            };
            let split = |s: &str| -> Vec<String> {
                s.split(',')
                    .map(|x| x.trim().to_string())
                    .filter(|x| !x.is_empty())
                    .collect()
            };
            return XplPragma::Diagnostic {
                func,
                verbatim: split(verb),
                expanded: split(exp),
            };
        }
    }
    XplPragma::Other(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_function() {
        let p = parse("int add(int a, int b) { return a + b; }").unwrap();
        let f = p.func("add").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
        assert_eq!(
            f.body.as_ref().unwrap()[0],
            Stmt::Return(Some(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::ident("a")),
                Box::new(Expr::ident("b"))
            )))
        );
    }

    #[test]
    fn parses_kernel_and_launch() {
        let src = r#"
            __global__ void init(double* p, int n) {
                int i = threadIdx.x;
                if (i < n) { p[i] = 0.0; }
            }
            int main() {
                double* p;
                cudaMallocManaged((void**)&p, 100 * sizeof(double));
                init<<<1, 100>>>(p, 100);
                return 0;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(p.func("init").unwrap().is_kernel());
        let main = p.func("main").unwrap();
        let body = main.body.as_ref().unwrap();
        assert!(matches!(&body[0], Stmt::Decl(d) if d.ty == Type::Double.ptr()));
        assert!(matches!(
            &body[2],
            Stmt::Expr(Expr::KernelLaunch { name, args, .. }, _) if name == "init" && args.len() == 2
        ));
    }

    #[test]
    fn parses_struct_and_member_access() {
        let src = r#"
            struct Pair { int* first; int* second; };
            int main() {
                Pair* a;
                a->first[0] = 1;
                return a->first[0];
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.struct_def("Pair").unwrap().fields.len(), 2);
        let main = p.func("main").unwrap();
        let body = main.body.as_ref().unwrap();
        assert!(matches!(
            &body[1],
            Stmt::Expr(Expr::Assign(AssignOp::Set, lhs, _), _)
                if matches!(&**lhs, Expr::Index(b, _) if matches!(&**b, Expr::Member(_, f, true) if f == "first"))
        ));
    }

    #[test]
    fn precedence_and_conditional() {
        let e = parse_expr("a + b * c < d ? x : y").unwrap();
        match e {
            Expr::Cond(c, _, _) => match *c {
                Expr::Binary(BinOp::Lt, lhs, _) => match *lhs {
                    Expr::Binary(BinOp::Add, _, mul) => {
                        assert!(matches!(*mul, Expr::Binary(BinOp::Mul, _, _)));
                    }
                    other => panic!("bad lhs {other:?}"),
                },
                other => panic!("bad cond {other:?}"),
            },
            other => panic!("not a conditional: {other:?}"),
        }
    }

    #[test]
    fn casts_and_sizeof() {
        assert_eq!(
            parse_expr("(double)x").unwrap(),
            Expr::Cast(Type::Double, Box::new(Expr::ident("x")))
        );
        assert_eq!(
            parse_expr("sizeof(double)").unwrap(),
            Expr::SizeofType(Type::Double)
        );
        assert!(matches!(
            parse_expr("sizeof(x + 1)").unwrap(),
            Expr::SizeofExpr(_)
        ));
        assert_eq!(
            parse_expr("(void**)&p").unwrap(),
            Expr::Cast(
                Type::Void.ptr().ptr(),
                Box::new(Expr::Unary(UnOp::Addr, Box::new(Expr::ident("p"))))
            )
        );
    }

    #[test]
    fn increments_and_compound_assign() {
        assert!(matches!(
            parse_expr("++(*p)").unwrap(),
            Expr::Unary(UnOp::PreInc, _)
        ));
        assert!(matches!(
            parse_expr("p[i]++").unwrap(),
            Expr::Postfix(PostOp::Inc, _)
        ));
        assert!(matches!(
            parse_expr("a += b").unwrap(),
            Expr::Assign(AssignOp::Add, _, _)
        ));
    }

    #[test]
    fn for_while_if_statements() {
        let src = r#"
            int main() {
                int s = 0;
                for (int i = 0; i < 10; i++) { s += i; }
                while (s > 0) { s = s - 2; break; }
                if (s == 0) { s = 1; } else { s = 2; }
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        let body = p.func("main").unwrap().body.as_ref().unwrap();
        assert!(matches!(&body[1], Stmt::For { .. }));
        assert!(matches!(&body[2], Stmt::While { .. }));
        assert!(matches!(&body[3], Stmt::If { .. }));
    }

    #[test]
    fn pragma_parsing() {
        assert_eq!(
            parse_pragma("pragma xpl replace cudaMallocManaged"),
            XplPragma::Replace {
                target: "cudaMallocManaged".into()
            }
        );
        assert_eq!(
            parse_pragma("pragma xpl diagnostic tracePrint(out; a, z)"),
            XplPragma::Diagnostic {
                func: "tracePrint".into(),
                verbatim: vec!["out".into()],
                expanded: vec!["a".into(), "z".into()],
            }
        );
        assert_eq!(
            parse_pragma("include <xplacer.h>"),
            XplPragma::Other("include <xplacer.h>".into())
        );
    }

    #[test]
    fn pragmas_inside_functions() {
        let src = "int main() {\n#pragma xpl diagnostic trc(o; p)\nreturn 0; }";
        let p = parse(src).unwrap();
        let body = p.func("main").unwrap().body.as_ref().unwrap();
        assert!(matches!(
            &body[0],
            Stmt::Pragma(XplPragma::Diagnostic { .. })
        ));
    }

    #[test]
    fn new_expressions_lower_to_builtins() {
        assert_eq!(
            parse_expr("new int(2)").unwrap(),
            Expr::Call(
                "__new".into(),
                vec![Expr::SizeofType(Type::Int), Expr::IntLit(2)]
            )
        );
        assert!(matches!(
            parse_expr("new double[n]").unwrap(),
            Expr::Call(name, _) if name == "__new_array"
        ));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_reports_line_and_column() {
        // The offending `;` sits at line 2, column 11.
        let err = parse("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!((err.line, err.col), (2, 11));
        assert!(err.to_string().starts_with("parse error at line 2:11: "));
        // Lex errors keep their position through the From conversion.
        let err = parse("int main() {\n  int x = `;\n}").unwrap_err();
        assert_eq!((err.line, err.col), (2, 11));
    }

    #[test]
    fn shift_vs_launch_disambiguation() {
        // `a << b` parses as a shift, not a launch.
        assert!(matches!(
            parse_expr("a << 2").unwrap(),
            Expr::Binary(BinOp::Shl, _, _)
        ));
    }
}
