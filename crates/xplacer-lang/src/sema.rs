//! Semantic analysis helpers: scoped type environment, struct layout,
//! expression type inference, and l-value classification — everything the
//! instrumentation pass needs to decide *what* to wrap (paper §III-B) and
//! the interpreter needs to execute memory accesses.

use std::collections::HashMap;

use crate::ast::*;

/// Byte size of a type (pointers are 8 bytes; structs use natural
/// alignment layout).
pub fn size_of(prog: &Program, ty: &Type) -> u64 {
    match ty {
        Type::Void => 1,
        Type::Char => 1,
        Type::Int | Type::Float => 4,
        Type::Double | Type::SizeT | Type::Ptr(_) => 8,
        Type::Struct(name) => match prog.struct_def(name) {
            Some(def) => {
                let mut off = 0u64;
                let mut max_align = 1u64;
                for (ft, _) in &def.fields {
                    let a = align_of(prog, ft);
                    max_align = max_align.max(a);
                    off = off.div_ceil(a) * a + size_of(prog, ft);
                }
                off.div_ceil(max_align) * max_align
            }
            None => 0,
        },
    }
}

/// Natural alignment of a type.
pub fn align_of(prog: &Program, ty: &Type) -> u64 {
    match ty {
        Type::Void | Type::Char => 1,
        Type::Int | Type::Float => 4,
        Type::Double | Type::SizeT | Type::Ptr(_) => 8,
        Type::Struct(name) => prog
            .struct_def(name)
            .map(|d| {
                d.fields
                    .iter()
                    .map(|(t, _)| align_of(prog, t))
                    .max()
                    .unwrap_or(1)
            })
            .unwrap_or(1),
    }
}

/// Byte offset of `field` inside `struct name`.
pub fn field_offset(prog: &Program, name: &str, field: &str) -> Option<u64> {
    let def = prog.struct_def(name)?;
    let mut off = 0u64;
    for (ft, fname) in &def.fields {
        let a = align_of(prog, ft);
        off = off.div_ceil(a) * a;
        if fname == field {
            return Some(off);
        }
        off += size_of(prog, ft);
    }
    None
}

/// Type of `field` inside `struct name`.
pub fn field_type<'p>(prog: &'p Program, name: &str, field: &str) -> Option<&'p Type> {
    prog.struct_def(name)?
        .fields
        .iter()
        .find(|(_, f)| f == field)
        .map(|(t, _)| t)
}

/// A scoped variable-type environment.
pub struct TypeEnv<'p> {
    pub prog: &'p Program,
    scopes: Vec<HashMap<String, Type>>,
}

impl<'p> TypeEnv<'p> {
    /// Fresh environment with one (global) scope, pre-populated with the
    /// program's globals.
    pub fn new(prog: &'p Program) -> Self {
        let mut globals = HashMap::new();
        for item in &prog.items {
            if let Item::Global(g) = item {
                globals.insert(g.name.clone(), g.ty.clone());
            }
        }
        TypeEnv {
            prog,
            scopes: vec![globals],
        }
    }

    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    pub fn pop(&mut self) {
        self.scopes.pop();
    }

    pub fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), ty);
    }

    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    /// Best-effort type inference.
    pub fn infer(&self, e: &Expr) -> Option<Type> {
        match e {
            Expr::IntLit(_) => Some(Type::Int),
            Expr::FloatLit(_) => Some(Type::Double),
            Expr::StrLit(_) => Some(Type::Char.ptr()),
            Expr::Ident(n) => self.lookup(n).cloned(),
            Expr::Unary(UnOp::Deref, b) => self.infer(b)?.pointee().cloned(),
            Expr::Unary(UnOp::Addr, b) => Some(self.infer(b)?.ptr()),
            Expr::Unary(_, b) | Expr::Postfix(_, b) => self.infer(b),
            Expr::Binary(op, a, b) => {
                use BinOp::*;
                match op {
                    Eq | Ne | Lt | Gt | Le | Ge | And | Or => Some(Type::Int),
                    _ => {
                        let ta = self.infer(a);
                        let tb = self.infer(b);
                        match (&ta, &tb) {
                            (Some(t), _) if t.is_ptr() => ta,
                            (_, Some(t)) if t.is_ptr() => tb,
                            (Some(Type::Double), _) | (_, Some(Type::Double)) => Some(Type::Double),
                            (Some(Type::Float), _) | (_, Some(Type::Float)) => Some(Type::Float),
                            _ => ta.or(tb),
                        }
                    }
                }
            }
            Expr::Assign(_, lhs, _) => self.infer(lhs),
            Expr::Cond(_, t, _) => self.infer(t),
            Expr::Index(b, _) => self.infer(b)?.pointee().cloned(),
            Expr::Member(b, f, arrow) => {
                let bt = self.infer(b)?;
                let sname = if *arrow {
                    match bt.pointee()? {
                        Type::Struct(s) => s.clone(),
                        _ => return None,
                    }
                } else {
                    match bt {
                        Type::Struct(s) => s,
                        _ => return None,
                    }
                };
                field_type(self.prog, &sname, f).cloned()
            }
            Expr::Cast(t, _) => Some(t.clone()),
            Expr::SizeofType(_) | Expr::SizeofExpr(_) => Some(Type::SizeT),
            Expr::KernelLaunch { .. } => Some(Type::Void),
            Expr::Call(name, args) => match name.as_str() {
                // The trace wrappers are type-transparent (template
                // identity functions in the paper's header).
                "traceR" | "traceW" | "traceRW" => args.first().and_then(|a| self.infer(a)),
                "__new" | "__new_array" => match args.first() {
                    Some(Expr::SizeofType(t)) => Some(t.clone().ptr()),
                    _ => Some(Type::Void.ptr()),
                },
                _ => self
                    .prog
                    .func(name)
                    .map(|f| f.ret.clone())
                    .or(Some(Type::Int)),
            },
        }
    }
}

/// Classification of an expression as an assignable location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LvalueClass {
    /// Not an l-value at all.
    NotLvalue,
    /// A named local/global variable — lives in a register or static
    /// storage; the instrumentation elides these (paper §III-B: "when
    /// variables that have non-reference type are accessed").
    Local,
    /// A dereference, index, or pointer-member access — possibly heap
    /// memory; the instrumentation wraps these.
    Heap,
}

/// Classify `e` as an l-value.
pub fn classify_lvalue(e: &Expr) -> LvalueClass {
    match e {
        Expr::Ident(_) => LvalueClass::Local,
        Expr::Unary(UnOp::Deref, _) => LvalueClass::Heap,
        Expr::Index(_, _) => LvalueClass::Heap,
        Expr::Member(_, _, true) => LvalueClass::Heap,
        Expr::Member(b, _, false) => classify_lvalue(b),
        // An already-wrapped trace call stays an l-value of its inner
        // expression's class (the wrappers return references).
        Expr::Call(name, args) if name == "traceR" || name == "traceW" || name == "traceRW" => args
            .first()
            .map(classify_lvalue)
            .unwrap_or(LvalueClass::NotLvalue),
        Expr::Cast(_, b) => classify_lvalue(b),
        _ => LvalueClass::NotLvalue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn pair_prog() -> Program {
        parse(
            r#"
            struct Pair { int* first; int* second; };
            struct Mixed { char c; double d; int i; };
            double* g;
            int getN() { return 4; }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn sizes_and_alignment() {
        let p = pair_prog();
        assert_eq!(size_of(&p, &Type::Int), 4);
        assert_eq!(size_of(&p, &Type::Double.ptr()), 8);
        assert_eq!(size_of(&p, &Type::Struct("Pair".into())), 16);
        // Mixed: char @0, double @8 (padded), int @16 → padded to 24.
        assert_eq!(size_of(&p, &Type::Struct("Mixed".into())), 24);
        assert_eq!(align_of(&p, &Type::Struct("Mixed".into())), 8);
    }

    #[test]
    fn field_offsets() {
        let p = pair_prog();
        assert_eq!(field_offset(&p, "Pair", "first"), Some(0));
        assert_eq!(field_offset(&p, "Pair", "second"), Some(8));
        assert_eq!(field_offset(&p, "Mixed", "d"), Some(8));
        assert_eq!(field_offset(&p, "Mixed", "i"), Some(16));
        assert_eq!(field_offset(&p, "Mixed", "nope"), None);
    }

    #[test]
    fn type_inference_through_pointers() {
        let p = pair_prog();
        let mut env = TypeEnv::new(&p);
        env.push();
        env.declare("a", Type::Struct("Pair".into()).ptr());
        env.declare("i", Type::Int);

        let e = parse_expr("a->first[i]").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Int));
        let e = parse_expr("*g").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Double));
        let e = parse_expr("&i").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Int.ptr()));
        let e = parse_expr("g + i").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Double.ptr()));
        let e = parse_expr("i < 3").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Int));
        let e = parse_expr("getN()").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Int));
        let e = parse_expr("sizeof(double)").unwrap();
        assert_eq!(env.infer(&e), Some(Type::SizeT));
    }

    #[test]
    fn trace_wrappers_are_type_transparent() {
        let p = pair_prog();
        let mut env = TypeEnv::new(&p);
        env.push();
        env.declare("p", Type::Double.ptr());
        let e = parse_expr("traceR(*p)").unwrap();
        assert_eq!(env.infer(&e), Some(Type::Double));
    }

    #[test]
    fn lvalue_classification_matches_paper_rules() {
        // Heap: dereference, index, arrow member.
        assert_eq!(
            classify_lvalue(&parse_expr("*p").unwrap()),
            LvalueClass::Heap
        );
        assert_eq!(
            classify_lvalue(&parse_expr("p[3]").unwrap()),
            LvalueClass::Heap
        );
        assert_eq!(
            classify_lvalue(&parse_expr("a->first").unwrap()),
            LvalueClass::Heap
        );
        assert_eq!(
            classify_lvalue(&parse_expr("a->first[0]").unwrap()),
            LvalueClass::Heap
        );
        // Local: plain variables and members of local structs.
        assert_eq!(
            classify_lvalue(&parse_expr("x").unwrap()),
            LvalueClass::Local
        );
        assert_eq!(
            classify_lvalue(&parse_expr("s.field").unwrap()),
            LvalueClass::Local
        );
        // Heap through a local struct holding... a heap base:
        assert_eq!(
            classify_lvalue(&parse_expr("p[i].field").unwrap()),
            LvalueClass::Heap
        );
        // Not l-values.
        assert_eq!(
            classify_lvalue(&parse_expr("x + 1").unwrap()),
            LvalueClass::NotLvalue
        );
        assert_eq!(
            classify_lvalue(&parse_expr("f(x)").unwrap()),
            LvalueClass::NotLvalue
        );
    }

    #[test]
    fn scopes_shadow() {
        let p = pair_prog();
        let mut env = TypeEnv::new(&p);
        assert_eq!(env.lookup("g"), Some(&Type::Double.ptr()));
        env.push();
        env.declare("g", Type::Int);
        assert_eq!(env.lookup("g"), Some(&Type::Int));
        env.pop();
        assert_eq!(env.lookup("g"), Some(&Type::Double.ptr()));
    }
}
