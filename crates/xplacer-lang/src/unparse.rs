//! Unparser: AST → MiniCU source text (the analogue of ROSE's unparser,
//! which turns the modified tree back into compilable source).

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole program.
pub fn unparse(prog: &Program) -> String {
    let mut out = String::new();
    for item in &prog.items {
        match item {
            Item::Pragma(p) => {
                out.push_str(&unparse_pragma(p));
                out.push('\n');
            }
            Item::Struct(s) => {
                let _ = writeln!(out, "struct {} {{", s.name);
                for (t, f) in &s.fields {
                    let _ = writeln!(out, "    {};", decl_str(t, f));
                }
                out.push_str("};\n");
            }
            Item::Global(g) => {
                out.push_str(&unparse_var(g));
                out.push('\n');
            }
            Item::Func(f) => {
                out.push_str(&unparse_func(f));
                out.push('\n');
            }
        }
    }
    out
}

/// `type name` with C pointer spelling.
fn decl_str(t: &Type, name: &str) -> String {
    format!("{t} {name}")
}

fn unparse_var(v: &VarDecl) -> String {
    match &v.init {
        Some(e) => format!("{} = {};", decl_str(&v.ty, &v.name), unparse_expr(e)),
        None => format!("{};", decl_str(&v.ty, &v.name)),
    }
}

fn unparse_pragma(p: &XplPragma) -> String {
    match p {
        XplPragma::Replace { target } => format!("#pragma xpl replace {target}"),
        XplPragma::Diagnostic {
            func,
            verbatim,
            expanded,
        } => format!(
            "#pragma xpl diagnostic {func}({}; {})",
            verbatim.join(", "),
            expanded.join(", ")
        ),
        XplPragma::Other(text) => format!("#{text}"),
    }
}

/// Render one function.
pub fn unparse_func(f: &Func) -> String {
    let mut out = String::new();
    for q in &f.qualifiers {
        out.push_str(match q {
            Qualifier::Global => "__global__ ",
            Qualifier::Device => "__device__ ",
            Qualifier::Host => "__host__ ",
        });
    }
    let params: Vec<String> = f.params.iter().map(|p| decl_str(&p.ty, &p.name)).collect();
    let _ = write!(out, "{} {}({})", f.ret, f.name, params.join(", "));
    match &f.body {
        None => out.push_str(";\n"),
        Some(body) => {
            out.push_str(" {\n");
            for s in body {
                unparse_stmt(&mut out, s, 1);
            }
            out.push_str("}\n");
        }
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn unparse_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::Pragma(p) => {
            // Pragmas start in column 0, like the preprocessor demands.
            out.push_str(&unparse_pragma(p));
            out.push('\n');
        }
        Stmt::Decl(v) => {
            indent(out, level);
            out.push_str(&unparse_var(v));
            out.push('\n');
        }
        Stmt::Expr(e, _) => {
            indent(out, level);
            let _ = writeln!(out, "{};", unparse_expr(e));
        }
        Stmt::Return(e) => {
            indent(out, level);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", unparse_expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        Stmt::Block(body) => {
            indent(out, level);
            out.push_str("{\n");
            for s in body {
                unparse_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", unparse_expr(cond));
            for s in then_branch {
                unparse_stmt(out, s, level + 1);
            }
            indent(out, level);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_branch {
                    unparse_stmt(out, s, level + 1);
                }
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "while ({}) {{", unparse_expr(cond));
            for s in body {
                unparse_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            let init_s = match init.as_deref() {
                Some(Stmt::Decl(v)) => unparse_var(v).trim_end_matches(';').to_string(),
                Some(Stmt::Expr(e, _)) => unparse_expr(e),
                _ => String::new(),
            };
            let cond_s = cond.as_ref().map(unparse_expr).unwrap_or_default();
            let step_s = step.as_ref().map(unparse_expr).unwrap_or_default();
            let _ = writeln!(out, "for ({init_s}; {cond_s}; {step_s}) {{");
            for s in body {
                unparse_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Render one expression (fully parenthesized where precedence could
/// bite, conservative but correct).
pub fn unparse_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::StrLit(s) => format!("{:?}", s),
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, b) => {
            let inner = unparse_expr(b);
            match op {
                UnOp::Neg => format!("-({inner})"),
                UnOp::Not => format!("!({inner})"),
                UnOp::Deref => format!("*{}", paren_if_needed(b)),
                UnOp::Addr => format!("&{}", paren_if_needed(b)),
                UnOp::PreInc => format!("++{}", paren_if_needed(b)),
                UnOp::PreDec => format!("--{}", paren_if_needed(b)),
            }
        }
        Expr::Postfix(op, b) => {
            let sym = match op {
                PostOp::Inc => "++",
                PostOp::Dec => "--",
            };
            format!("{}{sym}", paren_if_needed(b))
        }
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", unparse_expr(a), op.symbol(), unparse_expr(b))
        }
        Expr::Assign(op, l, r) => {
            format!("{} {} {}", unparse_expr(l), op.symbol(), unparse_expr(r))
        }
        Expr::Cond(c, t, f) => format!(
            "({} ? {} : {})",
            unparse_expr(c),
            unparse_expr(t),
            unparse_expr(f)
        ),
        Expr::Call(name, args) => {
            let a: Vec<String> = args.iter().map(unparse_expr).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::KernelLaunch {
            name,
            grid,
            block,
            shmem,
            stream,
            args,
        } => {
            let a: Vec<String> = args.iter().map(unparse_expr).collect();
            // The launch config prints exactly the arity it was parsed
            // with, so unparsing stays a textual fixpoint.
            let mut cfg = format!("{}, {}", unparse_expr(grid), unparse_expr(block));
            if let Some(sh) = shmem {
                let _ = write!(cfg, ", {}", unparse_expr(sh));
            }
            if let Some(st) = stream {
                let _ = write!(cfg, ", {}", unparse_expr(st));
            }
            format!("{name}<<<{cfg}>>>({})", a.join(", "))
        }
        Expr::Index(b, i) => format!("{}[{}]", paren_if_needed(b), unparse_expr(i)),
        Expr::Member(b, f, arrow) => {
            format!(
                "{}{}{}",
                paren_if_needed(b),
                if *arrow { "->" } else { "." },
                f
            )
        }
        Expr::Cast(t, b) => format!("({t}){}", paren_if_needed(b)),
        Expr::SizeofType(t) => format!("sizeof({t})"),
        Expr::SizeofExpr(b) => format!("sizeof({})", unparse_expr(b)),
    }
}

/// Wrap compound sub-expressions in parentheses where postfix/prefix
/// operators would otherwise rebind.
fn paren_if_needed(e: &Expr) -> String {
    match e {
        Expr::Ident(_)
        | Expr::IntLit(_)
        | Expr::Call(_, _)
        | Expr::Index(_, _)
        | Expr::Member(_, _, _) => unparse_expr(e),
        _ => format!("({})", unparse_expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    /// The key property: unparsed output re-parses to the same AST.
    fn roundtrip_program(src: &str) {
        let p1 = parse(src).unwrap();
        let text = unparse(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"));
        assert_eq!(p1, p2, "roundtrip changed the AST:\n{text}");
    }

    #[test]
    fn roundtrip_expressions() {
        for src in [
            "a + b * c",
            "*p",
            "p[i + 1]",
            "a->first[0]",
            "s.x",
            "(double)n",
            "sizeof(double)",
            "f(a, b, g(c))",
            "x = y = 3",
            "a += p[2]",
            "++(*p)",
            "p[i]++",
            "a ? b : c",
            "(void**)&p",
            "k<<<n / 256, 256>>>(p, n)",
        ] {
            let e1 = parse_expr(src).unwrap();
            let text = unparse_expr(&e1);
            let e2 = parse_expr(&text)
                .unwrap_or_else(|err| panic!("re-parse of `{text}` failed: {err}"));
            assert_eq!(e1, e2, "roundtrip of `{src}` via `{text}`");
        }
    }

    #[test]
    fn roundtrip_full_program() {
        roundtrip_program(
            r#"
            struct Pair { int* first; int* second; };
            double* g;
            __global__ void init(double* p, int n) {
                int i = threadIdx.x;
                if (i < n) { p[i] = 1.5; } else { p[i] = 0.0; }
            }
            int main() {
                double* p;
                cudaMallocManaged((void**)&p, 100 * sizeof(double));
                for (int i = 0; i < 100; i++) { p[i] = 0.0; }
                init<<<1, 100>>>(p, 100);
                while (p[0] < 10.0) { p[0] += 1.0; }
                return 0;
            }
        "#,
        );
    }

    #[test]
    fn roundtrip_pragmas() {
        roundtrip_program(
            "#pragma xpl replace cudaMalloc\nint trcMalloc(int n);\nint main() {\n#pragma xpl diagnostic trcPrn(out; a, z)\nreturn 0; }",
        );
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        // `1.0` must not unparse as `1` (which would re-lex as an int).
        assert_eq!(unparse_expr(&Expr::FloatLit(1.0)), "1.0");
        assert_eq!(unparse_expr(&Expr::FloatLit(2.5)), "2.5");
    }

    #[test]
    fn kernel_launch_spelling() {
        let e = parse_expr("k<<<1, 128>>>(p)").unwrap();
        assert_eq!(unparse_expr(&e), "k<<<1, 128>>>(p)");
    }

    #[test]
    fn struct_definitions_render() {
        let p = parse("struct S { int a; double* b; };").unwrap();
        let text = unparse(&p);
        assert!(text.contains("struct S {"));
        assert!(text.contains("int a;"));
        assert!(text.contains("double* b;"));
    }
}
