//! Chrome Trace Event Format exporter: turns an [`EventLog`] into a
//! `trace.json` document loadable in `chrome://tracing` or Perfetto.
//!
//! Layout: one process ("hetsim") with one thread track per stream (kernel,
//! memcpy, and prefetch spans land on the stream they executed on), a
//! "um driver" track of instant events (faults, migrations, duplications,
//! invalidations, evictions, allocation lifecycle), and counter tracks for
//! GPU-resident bytes and cumulative faults/migrations.
//!
//! Timestamps: the simulator clock is in nanoseconds; the trace format
//! wants microseconds, so every `ts`/`dur` is `ns / 1000`.

use hetsim::{Device, Event, EventLog, TimedEvent};

use crate::json::Json;
use crate::timeseries::Telemetry;

/// Process id used for all tracks.
const PID: u64 = 1;
/// Thread id of the instant-event track; stream `s` maps to tid `s + 1`.
const DRIVER_TID: u64 = 0;

fn us(ns: f64) -> Json {
    Json::Num(ns / 1000.0)
}

fn meta(name: &str, tid: u64, value: &str) -> Json {
    let mut args = Json::obj();
    args.set("name", value.into());
    let mut j = Json::obj();
    j.set("ph", "M".into())
        .set("pid", PID.into())
        .set("tid", tid.into())
        .set("name", name.into())
        .set("args", args);
    j
}

fn span(name: &str, cat: &str, tid: u64, start_ns: f64, end_ns: f64, args: Json) -> Json {
    let mut j = Json::obj();
    j.set("ph", "X".into())
        .set("pid", PID.into())
        .set("tid", tid.into())
        .set("name", name.into())
        .set("cat", cat.into())
        .set("ts", us(start_ns))
        .set("dur", us(end_ns - start_ns))
        .set("args", args);
    j
}

fn instant(name: &str, cat: &str, t_ns: f64, args: Json) -> Json {
    let mut j = Json::obj();
    j.set("ph", "i".into())
        .set("pid", PID.into())
        .set("tid", DRIVER_TID.into())
        .set("name", name.into())
        .set("cat", cat.into())
        .set("ts", us(t_ns))
        .set("s", "t".into())
        .set("args", args);
    j
}

fn counter(name: &str, t_ns: f64, value: f64) -> Json {
    let mut args = Json::obj();
    args.set("value", Json::Num(value));
    let mut j = Json::obj();
    j.set("ph", "C".into())
        .set("pid", PID.into())
        .set("tid", DRIVER_TID.into())
        .set("name", name.into())
        .set("ts", us(t_ns))
        .set("args", args);
    j
}

fn dev_name(d: Device) -> String {
    match d {
        Device::Cpu => "cpu".to_string(),
        Device::Gpu(g) => format!("gpu{g}"),
    }
}

/// Running state for the counter tracks.
#[derive(Default)]
struct Counters {
    gpu_resident: f64,
    faults: u64,
    migrations: u64,
}

impl Counters {
    /// Apply one event; returns which counters changed.
    fn apply(&mut self, ev: &Event) -> (bool, bool, bool) {
        let mut resident = false;
        let mut faults = false;
        let mut migrations = false;
        match ev {
            Event::PageFault { .. } => {
                self.faults += 1;
                faults = true;
            }
            Event::Migration { to, bytes, .. } => {
                self.migrations += 1;
                migrations = true;
                match to {
                    Device::Gpu(_) => self.gpu_resident += *bytes as f64,
                    Device::Cpu => self.gpu_resident -= *bytes as f64,
                }
                resident = true;
            }
            Event::ReadDup {
                to: Device::Gpu(_),
                bytes,
                ..
            } => {
                self.gpu_resident += *bytes as f64;
                resident = true;
            }
            Event::Evict { bytes, .. } => {
                self.gpu_resident -= *bytes as f64;
                resident = true;
            }
            Event::Prefetch {
                to, bytes_moved, ..
            } => {
                // `bytes_moved` is the traffic the prefetch actually
                // caused (pages already at the destination don't move).
                match to {
                    Device::Gpu(_) => self.gpu_resident += *bytes_moved as f64,
                    Device::Cpu => self.gpu_resident -= *bytes_moved as f64,
                }
                resident = true;
            }
            _ => {}
        }
        self.gpu_resident = self.gpu_resident.max(0.0);
        (resident, faults, migrations)
    }
}

/// Render the full trace document. Event order (and therefore output) is
/// deterministic: it follows the log's recording order.
pub fn chrome_trace(log: &EventLog) -> Json {
    chrome_trace_with_series(log, None)
}

/// [`chrome_trace`] plus per-epoch counter lanes from the telemetry
/// series: interconnect bandwidth (GB/s) and fault rate (faults/epoch),
/// one `"ph":"C"` sample per epoch, so Perfetto shows the time-resolved
/// lanes alongside the kernel spans.
pub fn chrome_trace_with_series(log: &EventLog, series: Option<&Telemetry>) -> Json {
    let mut events = Vec::new();
    events.push(meta("process_name", DRIVER_TID, "hetsim"));
    events.push(meta("thread_name", DRIVER_TID, "um driver"));
    // Name a stream track the first time a span lands on it.
    let mut named_streams: Vec<u64> = Vec::new();
    let mut name_stream = |events: &mut Vec<Json>, s: u64| {
        if !named_streams.contains(&s) {
            named_streams.push(s);
            events.push(meta("thread_name", s + 1, &format!("stream {s}")));
        }
    };

    let mut counters = Counters::default();
    for TimedEvent { t_ns, event, .. } in log.events() {
        let t = *t_ns;
        match event {
            Event::KernelEnd {
                name,
                stream,
                start_ns,
                end_ns,
            } => {
                let tid = stream.0 as u64;
                name_stream(&mut events, tid);
                events.push(span(
                    name,
                    "kernel",
                    tid + 1,
                    *start_ns,
                    *end_ns,
                    Json::obj(),
                ));
            }
            Event::Memcpy {
                bytes,
                kind,
                stream,
                start_ns,
                end_ns,
                ..
            } => {
                let tid = stream.0 as u64;
                name_stream(&mut events, tid);
                let mut args = Json::obj();
                args.set("bytes", (*bytes).into());
                events.push(span(
                    &format!("memcpy {kind:?}"),
                    "memcpy",
                    tid + 1,
                    *start_ns,
                    *end_ns,
                    args,
                ));
            }
            Event::Prefetch {
                addr,
                bytes,
                to,
                stream,
                start_ns,
                end_ns,
                ..
            } => {
                let tid = stream.0 as u64;
                name_stream(&mut events, tid);
                let mut args = Json::obj();
                args.set("addr", format!("0x{addr:x}").into())
                    .set("bytes", (*bytes).into())
                    .set("to", dev_name(*to).into());
                events.push(span(
                    &format!("prefetch→{}", dev_name(*to)),
                    "um",
                    tid + 1,
                    *start_ns,
                    *end_ns,
                    args,
                ));
            }
            Event::PageFault { dev, page, write } => {
                let mut args = Json::obj();
                args.set("page", (*page).into())
                    .set("write", (*write).into());
                events.push(instant(&format!("fault {}", dev_name(*dev)), "um", t, args));
            }
            Event::Migration { page, to, bytes } => {
                let mut args = Json::obj();
                args.set("page", (*page).into())
                    .set("bytes", (*bytes).into());
                events.push(instant(
                    &format!("migrate→{}", dev_name(*to)),
                    "um",
                    t,
                    args,
                ));
            }
            Event::ReadDup { page, to, bytes } => {
                let mut args = Json::obj();
                args.set("page", (*page).into())
                    .set("bytes", (*bytes).into());
                events.push(instant(&format!("dup→{}", dev_name(*to)), "um", t, args));
            }
            Event::Invalidate { page, copies } => {
                let mut args = Json::obj();
                args.set("page", (*page).into())
                    .set("copies", (*copies as u64).into());
                events.push(instant("invalidate", "um", t, args));
            }
            Event::Evict { pages, bytes, .. } => {
                let mut args = Json::obj();
                args.set("pages", (*pages as u64).into())
                    .set("bytes", (*bytes).into());
                events.push(instant("evict", "um", t, args));
            }
            Event::Alloc { base, bytes, kind } => {
                let mut args = Json::obj();
                args.set("base", format!("0x{base:x}").into())
                    .set("bytes", (*bytes).into())
                    .set("kind", kind.api_name().into());
                events.push(instant("alloc", "mem", t, args));
            }
            Event::Free { base } => {
                let mut args = Json::obj();
                args.set("base", format!("0x{base:x}").into());
                events.push(instant("free", "mem", t, args));
            }
            Event::Advise {
                addr,
                bytes,
                advice,
            } => {
                let mut args = Json::obj();
                args.set("addr", format!("0x{addr:x}").into())
                    .set("bytes", (*bytes).into())
                    .set("advice", format!("{advice:?}").into());
                events.push(instant("memAdvise", "um", t, args));
            }
            Event::KernelBegin { name } => {
                events.push(instant(&format!("launch {name}"), "kernel", t, Json::obj()));
            }
        }
        let (resident, faults, migrations) = counters.apply(event);
        if resident {
            events.push(counter("gpu_resident_bytes", t, counters.gpu_resident));
        }
        if faults {
            events.push(counter("cum_faults", t, counters.faults as f64));
        }
        if migrations {
            events.push(counter("cum_migrations", t, counters.migrations as f64));
        }
    }

    if let Some(t) = series {
        for (i, s) in t.global().iter().enumerate() {
            let at = i as f64 * t.epoch_ns();
            events.push(counter(
                "epoch_bandwidth_gbps",
                at,
                s.bytes_moved as f64 / t.epoch_ns(),
            ));
            events.push(counter("epoch_faults", at, s.faults as f64));
        }
    }

    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ns".into());
    if log.dropped() > 0 {
        doc.set("droppedEvents", log.dropped().into());
    }
    doc
}

/// Serialize [`chrome_trace`] to the compact string form tools ingest.
pub fn chrome_trace_string(log: &EventLog) -> String {
    chrome_trace(log).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsim::{platform, Machine, MemAdvise};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn demo_log() -> EventLog {
        let mut m = Machine::new(platform::intel_pascal());
        let log = Rc::new(RefCell::new(EventLog::new()));
        m.attach_hook(log.clone());
        let p = m.alloc_managed::<f64>(4096);
        m.mem_advise(p, MemAdvise::SetReadMostly);
        for i in 0..p.len {
            m.st(p, i, 1.0);
        }
        m.launch("sum", p.len, |t, m| {
            let _ = m.ld(p, t);
        });
        m.free(p);
        let log = log.borrow().clone();
        log
    }

    #[test]
    fn trace_is_valid_json_with_expected_tracks() {
        let log = demo_log();
        let text = chrome_trace_string(&log);
        let doc = Json::parse(&text).expect("trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"), "metadata events present");
        assert!(phases.contains(&"X"), "kernel span present");
        assert!(phases.contains(&"i"), "instant events present");
        assert!(phases.contains(&"C"), "counter tracks present");
        // Exactly one kernel span for the one launch.
        let spans = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .count();
        assert_eq!(spans, 1);
    }

    #[test]
    fn output_is_deterministic() {
        let a = chrome_trace_string(&demo_log());
        let b = chrome_trace_string(&demo_log());
        assert_eq!(a, b);
    }

    #[test]
    fn counter_tracks_move() {
        let log = demo_log();
        let doc = chrome_trace(&log);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let resident: Vec<f64> = events
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("C")
                    && e.get("name").unwrap().as_str() == Some("gpu_resident_bytes")
            })
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("value")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert!(!resident.is_empty());
        assert!(resident.iter().any(|&v| v > 0.0), "GPU gained residency");
    }

    #[test]
    fn telemetry_series_adds_epoch_counter_lanes() {
        use crate::timeseries::TelemetryConfig;
        use hetsim::MemHook;
        let log = demo_log();
        let mut t = Telemetry::new(TelemetryConfig::default(), 12.0);
        for ev in log.events() {
            MemHook::on_event(&mut t, ev);
        }
        let doc = chrome_trace_with_series(&log, Some(&t));
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let lane = |name: &str| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").unwrap().as_str() == Some("C")
                        && e.get("name").unwrap().as_str() == Some(name)
                })
                .count()
        };
        assert_eq!(lane("epoch_bandwidth_gbps"), t.global().len());
        assert_eq!(lane("epoch_faults"), t.global().len());
        // Without a series the lanes are absent (back-compat).
        let plain = chrome_trace(&log);
        let plain_events = plain.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!plain_events
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("epoch_bandwidth_gbps")));
    }

    #[test]
    fn span_durations_are_positive_microseconds() {
        let log = demo_log();
        let doc = chrome_trace(&log);
        for e in doc.get("traceEvents").unwrap().as_arr().unwrap() {
            if e.get("ph").unwrap().as_str() == Some("X") {
                assert!(e.get("dur").unwrap().as_f64().unwrap() > 0.0);
                assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
    }
}
